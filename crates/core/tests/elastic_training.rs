//! Elastic-resize integration tests: kill ranks mid-run and prove the
//! shrunken world resumes from the durable checkpoint store.
//!
//! The contract, for every collective backend:
//!
//! 1. **Survival** — a permanent replica loss at an arbitrary step leaves
//!    a world of N−k that finishes the run with a finite loss.
//! 2. **Determinism** — the whole faulted trajectory is bitwise
//!    reproducible from `(seed, fault plan)`.
//! 3. **Accounting** — resizes, lost replicas, durable checkpoints, and
//!    the resize virtual cost all surface in `RecoveryCounters` and the
//!    step timeline, identically on every replica (asserted inside the
//!    trainer itself).
//! 4. **No silent corruption** — the surviving checkpoint directory
//!    rejects every injected corruption instead of loading it.

use ets_collective::{Backend, FaultEvent, FaultKind, FaultPlan};
use ets_train::{train, CkptStore, CorruptionInjector, Experiment, OptimizerChoice, TrainReport};

/// Small-but-real elastic experiment: 4 replicas, 2 epochs, 4 nominal
/// steps per epoch (global batch 32 over 128 samples).
fn elastic_exp(backend: Backend) -> Experiment {
    let mut e = Experiment::proxy_default();
    e.replicas = 4;
    e.per_replica_batch = 8;
    e.epochs = 2;
    e.train_samples = 128;
    e.eval_samples = 32;
    e.collective_backend = backend;
    e
}

fn lose_rank(rank: usize, at_step: u64) -> FaultEvent {
    FaultEvent {
        at_s: at_step as f64, // advisory; PermanentLoss triggers by step
        duration_s: 0.0,
        kind: FaultKind::PermanentLoss { rank, at_step },
    }
}

#[test]
fn permanent_loss_resumes_on_smaller_world_for_each_backend() {
    for backend in Backend::ALL {
        let mut e = elastic_exp(backend);
        e.faults.events.push(lose_rank(2, 3));
        let r = train(&e);
        let rec = &r.fault_recovery;
        assert_eq!(r.final_world, 3, "{backend:?}: world must shrink to 3");
        assert_eq!(rec.resizes, 1, "{backend:?}");
        assert_eq!(rec.lost_replicas, 1, "{backend:?}");
        assert!(
            rec.durable_checkpoints >= 1,
            "{backend:?}: resize must persist durable state"
        );
        assert!(rec.resize_virtual_s > 0.0, "{backend:?}");
        assert_eq!(
            rec.corrupt_checkpoints_skipped, 0,
            "{backend:?}: clean store must never skip"
        );
        // The timeline records the resize event with the world sizes.
        assert_eq!(r.step_timeline.resizes.len(), 1, "{backend:?}");
        let rz = r.step_timeline.resizes[0];
        assert_eq!((rz.step, rz.world_before, rz.world_after), (3, 4, 3));
        assert!(rz.virtual_s > 0.0);
        // The shrunken world re-shards the epoch: more (smaller) steps
        // than the nominal 8, every epoch still recorded.
        assert!(r.steps >= 8, "steps {}", r.steps);
        assert_eq!(r.history.len() as u64, e.epochs, "{backend:?}");
        assert!(
            r.final_loss().is_finite(),
            "{backend:?}: loss {}",
            r.final_loss()
        );
    }
}

#[test]
fn torus_survivors_regrid_deterministically_after_killing_ranks() {
    // ISSUE 9's elastic-torus contract on a 4×4 grid: kill 4 of 16 ranks
    // mid-run and the surviving sub-torus must re-select its (rows, cols)
    // deterministically from the new world size — canonical_grid(12) =
    // (3, 4) — regroup BN partitions, and finish with a finite loss,
    // bitwise reproducibly.
    use ets_collective::canonical_grid;
    let run = || {
        let mut e = elastic_exp(Backend::Torus2d);
        e.replicas = 16;
        e.train_samples = 256;
        for rank in [2, 7, 9, 14] {
            e.faults.events.push(lose_rank(rank, 2));
        }
        train(&e)
    };
    assert_eq!(canonical_grid(16), (4, 4), "starting grid is the 4×4 torus");
    assert_eq!(canonical_grid(12), (3, 4), "survivor grid re-selects 3×4");
    let r = run();
    assert_eq!(r.final_world, 12, "world must shrink 16 → 12");
    assert_eq!(r.fault_recovery.resizes, 1, "coalesced losses, one resize");
    assert_eq!(r.fault_recovery.lost_replicas, 4);
    assert_eq!(r.step_timeline.resizes.len(), 1);
    let rz = r.step_timeline.resizes[0];
    assert_eq!((rz.world_before, rz.world_after), (16, 12));
    assert_eq!(r.history.len() as u64, 2, "both epochs complete");
    assert!(r.final_loss().is_finite(), "loss {}", r.final_loss());

    let again = run();
    assert_eq!(
        r.weight_checksum, again.weight_checksum,
        "regridded trajectory must be bitwise reproducible"
    );
    assert_eq!(r.steps, again.steps);
}

#[test]
fn elastic_trajectory_is_bitwise_reproducible() {
    let run = || {
        let mut e = elastic_exp(Backend::Tree);
        e.faults.events.push(lose_rank(0, 5));
        train(&e)
    };
    let (a, b): (TrainReport, TrainReport) = (run(), run());
    assert_eq!(a.weight_checksum, b.weight_checksum, "weights");
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.final_world, b.final_world);
    assert_eq!(a.fault_recovery, b.fault_recovery);
    assert_eq!(a.history.len(), b.history.len());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.train_loss.to_bits(), y.train_loss.to_bits());
        assert_eq!(x.lr.to_bits(), y.lr.to_bits());
        assert_eq!(x.eval_top1, y.eval_top1);
    }
    assert_eq!(a.step_timeline, b.step_timeline, "virtual timeline");
}

#[test]
fn cascading_losses_shrink_the_world_twice() {
    let mut e = elastic_exp(Backend::Tree);
    e.faults.events.push(lose_rank(3, 2));
    e.faults.events.push(lose_rank(1, 5));
    let r = train(&e);
    assert_eq!(r.final_world, 2);
    assert_eq!(r.fault_recovery.resizes, 2);
    assert_eq!(r.fault_recovery.lost_replicas, 2);
    let worlds: Vec<(usize, usize)> = r
        .step_timeline
        .resizes
        .iter()
        .map(|z| (z.world_before, z.world_after))
        .collect();
    assert_eq!(worlds, vec![(4, 3), (3, 2)], "resize chain 4→3→2");
    assert!(r.final_loss().is_finite());
}

#[test]
fn coalesced_losses_drain_in_one_protocol() {
    // Two ranks lost at the same step: one drain, one durable
    // checkpoint, one rebuild — not two protocols.
    let mut e = elastic_exp(Backend::Ring);
    e.faults.events.push(lose_rank(1, 4));
    e.faults.events.push(lose_rank(2, 4));
    let r = train(&e);
    assert_eq!(r.final_world, 2);
    assert_eq!(r.fault_recovery.resizes, 1);
    assert_eq!(r.fault_recovery.lost_replicas, 2);
    assert_eq!(r.step_timeline.resizes.len(), 1);
    assert_eq!(r.step_timeline.resizes[0].world_after, 2);
    assert!(r.final_loss().is_finite());
}

#[test]
fn elastic_final_loss_stays_near_the_unfaulted_run() {
    let clean = train(&elastic_exp(Backend::Tree));
    let mut e = elastic_exp(Backend::Tree);
    e.faults.events.push(lose_rank(2, 3));
    let faulted = train(&e);
    assert!(clean.final_loss().is_finite() && faulted.final_loss().is_finite());
    // The resized run trains on a smaller global batch with a
    // linearly-rescaled LR: same recipe, so the final loss must land in
    // the same neighbourhood as the unfaulted run.
    let diff = (clean.final_loss() - faulted.final_loss()).abs();
    assert!(
        diff < 0.75,
        "clean {} vs faulted {} (diff {diff})",
        clean.final_loss(),
        faulted.final_loss()
    );
}

#[test]
fn nan_guard_rolls_back_divergence_and_recovers() {
    let mut e = elastic_exp(Backend::Tree);
    // An absurd LR guarantees non-finite loss/gradients once warmup
    // ramps; the guard must roll back to the durable checkpoint with the
    // LR halved (repeatedly) instead of poisoning the weights.
    e.optimizer = OptimizerChoice::Sgd {
        momentum: 0.9,
        weight_decay: 0.0,
    };
    e.lr_per_256 = 1.0e14;
    e.warmup_epochs = 1;
    e.nan_guard = true;
    let r = train(&e);
    assert!(
        r.fault_recovery.divergence_rollbacks >= 1,
        "guard never tripped"
    );
    assert!(
        r.final_loss().is_finite(),
        "rollback must leave a finite run, got {}",
        r.final_loss()
    );
    assert!(r.fault_recovery.durable_checkpoints >= 1);
    assert_eq!(r.final_world, 4, "divergence is not a resize");
    assert_eq!(r.fault_recovery.resizes, 0);
}

#[test]
fn surviving_checkpoints_reject_injected_corruption() {
    let dir = std::env::temp_dir().join(format!("ets-elastic-ckpts-{}", std::process::id()));
    let mut e = elastic_exp(Backend::Tree);
    e.ckpt_dir = Some(dir.to_string_lossy().into_owned());
    e.faults.events.push(lose_rank(1, 3));
    let r = train(&e);
    assert_eq!(r.final_world, 3);

    // The run left its durable checkpoints in place for inspection.
    let store = CkptStore::open(&dir, 3).unwrap();
    let steps = store.list_steps().unwrap();
    assert!(!steps.is_empty(), "resize must leave durable checkpoints");
    assert!(steps.len() <= 3, "retention must bound the store");
    let (snap, report) = store
        .load_latest_valid()
        .unwrap()
        .expect("valid checkpoint");
    assert_eq!(report.corrupt_skipped, 0);
    assert!(snap.step >= 3, "checkpoint must be at/after the resize");

    // Inject corruption into every surviving file: zero silent loads.
    let mut injector = CorruptionInjector::new(7);
    for &step in &steps {
        let path = dir.join(format!("ckpt-{step:020}.ets"));
        injector.flip_one_bit(&path).unwrap();
        assert!(
            store.load_step(step).is_err(),
            "corrupted step {step} loaded silently"
        );
    }
    assert!(
        store.load_latest_valid().unwrap().is_none(),
        "fully-corrupt store must refuse, not guess"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Chaos soak for CI's elastic matrix: backend and world size come from
/// the environment, the seeded elastic plan mixes permanent losses with
/// the classic fault mix, and the pod-scale damage report is written as
/// a JSON artifact. `#[ignore]`d so regular test runs stay fast.
#[test]
#[ignore = "CI chaos soak: run with ETS_SOAK_BACKEND/ETS_SOAK_WORLD set"]
fn elastic_chaos_soak() {
    use ets_tpu_sim::{simulate_chaos, StepConfig};

    let backend = match std::env::var("ETS_SOAK_BACKEND").as_deref() {
        Ok("ring") => Backend::Ring,
        Ok("torus2d") => Backend::Torus2d,
        Ok("auto") => Backend::Auto,
        _ => Backend::Tree,
    };
    let world: usize = std::env::var("ETS_SOAK_WORLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let seed: u64 = std::env::var("ETS_SOAK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    // Thread-level trainer soak: seeded elastic plan, real gradients.
    let mut e = elastic_exp(backend);
    e.replicas = world;
    e.train_samples = 64 * world;
    let nominal_steps = e.epochs * e.steps_per_epoch() as u64;
    let horizon_s = nominal_steps as f64 * e.faults.virtual_step_seconds;
    e.faults = FaultPlan::generate_elastic(seed, world, horizon_s, 2, 2);
    let r = train(&e);
    assert!(r.final_loss().is_finite());
    assert_eq!(
        r.final_world,
        world - r.fault_recovery.lost_replicas as usize
    );
    assert!(r.fault_recovery.resizes >= 1);

    // Pod-scale pricing of the same plan shape: write the damage report
    // as the CI artifact.
    let cfg = StepConfig::new(ets_efficientnet::Variant::B2, 128, 4096);
    let pod_plan = FaultPlan::generate_elastic(seed, 128, 60.0, 4, 2);
    let pod = simulate_chaos(&cfg, &pod_plan, 60);
    assert_eq!(pod.steps_completed, 60);
    assert!(pod.permanent_losses >= 1);
    if let Ok(out) = std::env::var("ETS_SOAK_OUT") {
        let json = serde_json::to_string_pretty(&pod).expect("report serializes");
        std::fs::create_dir_all(&out).unwrap();
        let path = std::path::Path::new(&out).join(format!(
            "pod-chaos-{}-w{world}-s{seed}.json",
            backend.name()
        ));
        std::fs::write(&path, json).unwrap();
    }
}
