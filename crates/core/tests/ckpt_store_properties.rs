//! Property tests for the durable checkpoint store: *no corruption is
//! ever loaded silently*.
//!
//! The deterministic tests below are exhaustive where it matters — every
//! single bit of a serialized checkpoint is flipped, every prefix
//! truncation is tried, every byte of the manifest is perturbed — so the
//! guarantee does not depend on sampling. The `proptest!` block then
//! widens the same properties over randomized snapshot contents.

use ets_nn::EmaState;
use ets_optim::OptimizerState;
use ets_train::checkpoint::TensorRecord;
use ets_train::ckpt_store::{parse_manifest, render_manifest};
use ets_train::{
    crc32, CkptStore, CorruptionInjector, DurableSnapshot, EpochRecord, ManifestEntry,
};
// The offline proptest stub swallows `proptest!` bodies, which would
// orphan imports used only there; the deterministic tests above keep the
// real coverage either way.
#[allow(unused_imports)]
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded snapshot with non-trivial content in every record section.
fn snapshot(step: u64, seed: u64) -> DurableSnapshot {
    let mut s = seed ^ 0xD1F7_AB1E;
    let mut bits = |n: usize| -> Vec<u32> { (0..n).map(|_| splitmix(&mut s) as u32).collect() };
    let param_n = 3 + (seed % 5) as usize;
    DurableSnapshot {
        step,
        epoch: 1 + step / 4,
        sample_off: (step % 4) * 32,
        steps_this_epoch: step % 4,
        consumed_samples: step * 32,
        world: 4,
        lr_scale_bits: 0.5f32.to_bits(),
        loss_sum_bits: (step as f64 * 1.25).to_bits(),
        last_lr_bits: 0.025f32.to_bits(),
        params: vec![
            TensorRecord {
                name: "stem/w".to_string(),
                shape: vec![param_n, 2],
                bits: bits(param_n * 2),
            },
            TensorRecord {
                name: "head/b".to_string(),
                shape: vec![3],
                bits: bits(3),
            },
        ],
        bn_running: vec![(bits(4), bits(4)), (bits(2), bits(2))],
        opt_state: OptimizerState {
            scalars: vec![step, step.rotate_left(17) ^ seed],
            banks: vec![bits(6), Vec::new()],
        },
        ema: Some(EmaState {
            decay_bits: 0.999f32.to_bits(),
            updates: step,
            shadow: vec![("stem/w".to_string(), vec![param_n, 2], bits(param_n * 2))],
        }),
        history: vec![EpochRecord {
            epoch: 1,
            train_loss: 2.25,
            lr: 0.01,
            eval_top1: Some(0.5),
            eval_top5: None,
        }],
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ets-ckpt-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn round_trip_is_canonical() {
    for seed in 0..8 {
        let bytes = snapshot(7 + seed, seed).to_bytes();
        let reparsed = DurableSnapshot::from_bytes(&bytes).expect("pristine bytes parse");
        assert_eq!(
            reparsed.to_bytes(),
            bytes,
            "serialization must be canonical (seed {seed})"
        );
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    // Exhaustive: flip each bit of the file in turn; every mutant must be
    // rejected. The whole-file CRC-32 trailer guarantees this for any
    // 1-bit (indeed any ≤ 2-bit) error, and the test proves the code
    // actually checks it before trusting any field.
    let bytes = snapshot(12, 3).to_bytes();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutant = bytes.clone();
            mutant[byte] ^= 1 << bit;
            assert!(
                DurableSnapshot::from_bytes(&mutant).is_err(),
                "flip at byte {byte} bit {bit} loaded silently"
            );
        }
    }
}

#[test]
fn every_single_byte_corruption_is_detected() {
    // Replace each byte with several unrelated values (not just 1-bit
    // neighbours).
    let bytes = snapshot(5, 9).to_bytes();
    for byte in 0..bytes.len() {
        for delta in [0x01u8, 0x55, 0xAA, 0xFF] {
            let mut mutant = bytes.clone();
            mutant[byte] ^= delta;
            assert!(
                DurableSnapshot::from_bytes(&mutant).is_err(),
                "byte {byte} xor {delta:#x} loaded silently"
            );
        }
    }
}

#[test]
fn every_truncation_is_detected() {
    let bytes = snapshot(9, 1).to_bytes();
    for len in 0..bytes.len() {
        assert!(
            DurableSnapshot::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes loaded silently"
        );
    }
}

#[test]
fn injector_corruption_never_loads_silently() {
    let dir = scratch_dir("injector");
    let store = CkptStore::open(&dir, 3).unwrap();
    for step in [2u64, 4, 6] {
        store.save(&snapshot(step, step)).unwrap();
    }
    // Corrupt the newest checkpoint: the load must fall back to step 4
    // and account the skip — never return corrupted step-6 data.
    let mut injector = CorruptionInjector::new(40);
    injector
        .flip_one_bit(&dir.join("ckpt-00000000000000000006.ets"))
        .unwrap();
    let (snap, report) = store.load_latest_valid().unwrap().expect("fallback exists");
    assert_eq!(snap.step, 4);
    assert_eq!(report.loaded_step, 4);
    assert_eq!(report.corrupt_skipped, 1);
    // Corrupt everything: the store must refuse entirely, not guess.
    injector
        .flip_one_bit(&dir.join("ckpt-00000000000000000004.ets"))
        .unwrap();
    injector
        .flip_one_bit(&dir.join("ckpt-00000000000000000002.ets"))
        .unwrap();
    assert!(store.load_latest_valid().unwrap().is_none());
    // And per-step loads of each corrupted file are typed errors.
    for step in [2u64, 4, 6] {
        assert!(store.load_step(step).is_err(), "step {step} load must fail");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_round_trips_and_rejects_perturbations() {
    let entries = vec![
        ManifestEntry {
            step: 8,
            file: "ckpt-00000000000000000008.ets".to_string(),
            len: 321,
            crc: 0xDEAD_BEEF,
        },
        ManifestEntry {
            step: 12,
            file: "ckpt-00000000000000000012.ets".to_string(),
            len: 123,
            crc: 0x0000_0001,
        },
    ];
    let text = render_manifest(&entries);
    assert_eq!(parse_manifest(&text).unwrap(), entries, "round trip");

    // Perturb every byte of the manifest: the parse must either fail or
    // (for semantically inert bytes, e.g. trailing whitespace) return
    // exactly the original entries — never silently different data.
    let bytes = text.as_bytes();
    for i in 0..bytes.len() {
        let mut mutant = bytes.to_vec();
        mutant[i] ^= 0x01;
        match std::str::from_utf8(&mutant) {
            Err(_) => {} // detected before parsing
            Ok(s) => match parse_manifest(s) {
                Err(_) => {}
                Ok(parsed) => assert_eq!(
                    parsed, entries,
                    "byte {i} perturbation parsed to different entries"
                ),
            },
        }
    }
}

#[test]
fn retention_keeps_exactly_the_newest_k() {
    for retain in 1..=4usize {
        let dir = scratch_dir(&format!("retain{retain}"));
        let store = CkptStore::open(&dir, retain).unwrap();
        let steps: Vec<u64> = (1..=7).map(|i| i * 10).collect();
        for (i, &step) in steps.iter().enumerate() {
            store.save(&snapshot(step, step)).unwrap();
            let expect: Vec<u64> = steps[..=i]
                .iter()
                .copied()
                .rev()
                .take(retain)
                .rev()
                .collect();
            assert_eq!(store.list_steps().unwrap(), expect, "retain {retain}");
            // Manifest agrees with the directory and checks out against
            // the actual file bytes.
            let manifest = store.read_manifest().unwrap().expect("manifest present");
            let manifest_steps: Vec<u64> = manifest.iter().map(|e| e.step).collect();
            assert_eq!(manifest_steps, expect);
            for e in &manifest {
                let bytes = std::fs::read(dir.join(&e.file)).unwrap();
                assert_eq!(bytes.len() as u64, e.len);
                assert_eq!(crc32(&bytes), e.crc);
            }
        }
        // Every retained checkpoint is still fully loadable.
        for step in store.list_steps().unwrap() {
            assert_eq!(store.load_step(step).unwrap().step, step);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_bit_flip_is_detected(step in 0u64..1000, seed in 0u64..1000, pick in 0u64..u64::MAX) {
        let bytes = snapshot(step, seed).to_bytes();
        let mut mutant = bytes.clone();
        let byte = (pick % bytes.len() as u64) as usize;
        let bit = (pick / bytes.len() as u64 % 8) as u8;
        mutant[byte] ^= 1 << bit;
        prop_assert!(DurableSnapshot::from_bytes(&mutant).is_err());
    }

    #[test]
    fn random_snapshot_round_trips(step in 0u64..10_000, seed in 0u64..10_000) {
        let bytes = snapshot(step, seed).to_bytes();
        let reparsed = DurableSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(reparsed.to_bytes(), bytes);
    }

    #[test]
    fn random_manifests_round_trip(n in 0usize..6, seed in 0u64..1000) {
        let mut s = seed;
        let entries: Vec<ManifestEntry> = (0..n).map(|i| ManifestEntry {
            step: i as u64 * 3,
            file: format!("ckpt-{i:020}.ets"),
            len: splitmix(&mut s) % 100_000,
            crc: splitmix(&mut s) as u32,
        }).collect();
        prop_assert_eq!(parse_manifest(&render_manifest(&entries)).unwrap(), entries);
    }
}
