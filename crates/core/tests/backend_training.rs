//! End-to-end check of the collective-backend contract through the full
//! trainer: the same proxy experiment trained under the tree and ring
//! backends must follow numerically indistinguishable trajectories.
//! Both backends reduce with the canonical ascending-rank fold, so the
//! trajectories are in fact bitwise identical; the 1e-4 loss band is the
//! acceptance ceiling, not the expectation. (Training dynamics are
//! chaotic — anything looser than a canonical reduction order would blow
//! past any fixed tolerance within an epoch.) Each backend individually
//! must also be bitwise run-to-run reproducible.

use ets_collective::Backend;
use ets_train::{train, Experiment, TrainReport};

fn base() -> Experiment {
    let mut e = Experiment::proxy_default();
    e.replicas = 4;
    e.per_replica_batch = 4;
    e.epochs = 3;
    e.train_samples = 128;
    e.eval_samples = 32;
    e
}

fn run(backend: Backend) -> TrainReport {
    let mut e = base();
    e.collective_backend = backend;
    train(&e)
}

#[test]
fn tree_and_ring_train_to_the_same_losses() {
    let tree = run(Backend::Tree);
    let ring = run(Backend::Ring);
    assert_eq!(tree.history.len(), ring.history.len());
    for (t, r) in tree.history.iter().zip(&ring.history) {
        assert!(
            (t.train_loss - r.train_loss).abs() < 1e-4,
            "epoch {}: tree loss {} vs ring loss {}",
            t.epoch,
            t.train_loss,
            r.train_loss
        );
        assert_eq!(t.lr, r.lr, "schedules must not depend on the backend");
    }
    assert!(
        (tree.final_loss() - ring.final_loss()).abs() < 1e-4,
        "final losses diverged: {} vs {}",
        tree.final_loss(),
        ring.final_loss()
    );
}

#[test]
fn all_four_backends_train_to_bitwise_identical_trajectories() {
    // Tree, ring, torus2d, and auto all commit to the canonical
    // grid-blocked fold, so the trainer-level trajectories are bitwise
    // identical — not merely close.
    let tree = run(Backend::Tree);
    for backend in [Backend::Ring, Backend::Torus2d, Backend::Auto] {
        let other = run(backend);
        assert_eq!(
            tree.weight_checksum, other.weight_checksum,
            "{backend}: final weights diverged from tree"
        );
        assert_eq!(tree.history.len(), other.history.len());
        for (t, o) in tree.history.iter().zip(&other.history) {
            assert_eq!(
                t.train_loss, o.train_loss,
                "epoch {}: {backend} loss diverged from tree",
                t.epoch
            );
            assert_eq!(t.lr, o.lr, "schedules must not depend on the backend");
        }
    }
}

#[test]
fn each_backend_is_run_to_run_bitwise_reproducible() {
    for backend in Backend::ALL {
        let a = run(backend);
        let b = run(backend);
        assert_eq!(
            a.weight_checksum, b.weight_checksum,
            "{backend}: weight checksum drifted across runs"
        );
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.train_loss, y.train_loss, "{backend}: loss drift");
        }
    }
}

#[test]
fn auto_backend_tracks_the_fixed_backends() {
    // The proxy's gradient payload sits on one side of the α–β crossover;
    // whichever side that is, auto must land within the same 1e-4 band.
    let tree = run(Backend::Tree);
    let auto = run(Backend::Auto);
    assert!(
        (tree.final_loss() - auto.final_loss()).abs() < 1e-4,
        "auto diverged from tree: {} vs {}",
        tree.final_loss(),
        auto.final_loss()
    );
}

#[test]
fn bucket_profile_is_populated_under_every_backend() {
    for backend in Backend::ALL {
        let r = run(backend);
        let prof = &r.all_reduce_buckets;
        assert!(prof.num_buckets() > 0, "{backend}: no buckets recorded");
        assert!(prof.rounds > 0, "{backend}: no rounds recorded");
        assert!(
            prof.total_seconds() >= 0.0 && prof.total_seconds().is_finite(),
            "{backend}: nonsensical bucket timing"
        );
        // Bucket layout covers the whole flat gradient + loss scalar.
        let elems: usize = prof.bucket_elems.iter().sum();
        assert!(elems > 0, "{backend}: empty bucket layout");
    }
}
