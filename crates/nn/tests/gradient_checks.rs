//! Property-based finite-difference gradient checks: every layer's
//! analytic backward must match the numeric derivative for randomized
//! shapes and inputs. These are the tests that keep the manual-backprop
//! design honest.
//!
//! The offline proptest stub swallows `proptest!` bodies (and its
//! `prop_assert!` expands to nothing), so imports, helpers, and locals
//! used only there look unused to clippy under the stub; with the real
//! proptest they are all exercised.
#![allow(unused_imports, dead_code, unused_variables)]

use ets_nn::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, GlobalAvgPool, Layer, Linear, Mode, Precision, Relu,
    Sigmoid, SqueezeExcite, Swish,
};
use ets_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Numeric ∂<f(x), g>/∂x_i via central differences, compared to backward.
fn check_input_gradient(
    make: &mut dyn FnMut() -> Box<dyn Layer>,
    x: &Tensor,
    indices: &[usize],
    eps: f32,
    tol: f32,
) -> Result<(), TestCaseError> {
    let mut layer = make();
    let mut rng = Rng::new(0);
    let y = layer.forward(x, Mode::Train, &mut rng);
    let mut g = Tensor::zeros(y.shape().dims());
    Rng::new(1).fill_uniform(g.data_mut(), -1.0, 1.0);
    let dx = layer.backward(&g);

    let mut loss = |x: &Tensor| -> f64 {
        let mut l = make();
        let mut r = Rng::new(0);
        let y = l.forward(x, Mode::Train, &mut r);
        y.data()
            .iter()
            .zip(g.data())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    };
    for &i in indices {
        let i = i % x.numel();
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let num = ((loss(&xp) - loss(&xm)) / (2.0 * eps as f64)) as f32;
        let ana = dx.data()[i];
        prop_assert!(
            (num - ana).abs() < tol * (1.0 + num.abs()),
            "index {i}: numeric {num} vs analytic {ana}"
        );
    }
    Ok(())
}

fn rand_x(seed: u64, dims: &[usize]) -> Tensor {
    let mut t = Tensor::zeros(dims);
    Rng::new(seed).fill_uniform(t.data_mut(), -1.0, 1.0);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conv2d_input_gradient(
        seed in 0u64..200,
        c_in in 1usize..3,
        c_out in 1usize..3,
        stride in 1usize..3,
    ) {
        let x = rand_x(seed, &[1, c_in, 6, 6]);
        let mut make = || -> Box<dyn Layer> {
            Box::new(Conv2d::new("c", c_in, c_out, 3, stride, 1, Precision::F32, &mut Rng::new(7)))
        };
        check_input_gradient(&mut make, &x, &[0, 13, 31, 59], 1e-3, 2e-2)?;
    }

    #[test]
    fn depthwise_input_gradient(seed in 0u64..200, c in 1usize..4, stride in 1usize..3) {
        let x = rand_x(seed, &[1, c, 6, 6]);
        let mut make = || -> Box<dyn Layer> {
            Box::new(DepthwiseConv2d::new("d", c, 3, stride, 1, Precision::F32, &mut Rng::new(8)))
        };
        check_input_gradient(&mut make, &x, &[0, 17, 35], 1e-3, 2e-2)?;
    }

    #[test]
    fn linear_input_gradient(seed in 0u64..200, din in 1usize..6, dout in 1usize..6) {
        let x = rand_x(seed, &[3, din]);
        let mut make = || -> Box<dyn Layer> {
            Box::new(Linear::new("l", din, dout, true, &mut Rng::new(9)))
        };
        check_input_gradient(&mut make, &x, &[0, 1, 2], 1e-3, 1e-2)?;
    }

    #[test]
    fn batchnorm_input_gradient(seed in 0u64..200, c in 1usize..3) {
        // Enough samples per channel for stable statistics.
        let x = rand_x(seed, &[4, c, 3, 3]);
        let mut make = move || -> Box<dyn Layer> { Box::new(BatchNorm2d::new("bn", c)) };
        check_input_gradient(&mut make, &x, &[0, 7, 19, 31], 1e-2, 5e-2)?;
    }

    #[test]
    fn squeeze_excite_input_gradient(seed in 0u64..200, c in 2usize..5) {
        let x = rand_x(seed, &[1, c, 3, 3]);
        let mut make = move || -> Box<dyn Layer> {
            Box::new(SqueezeExcite::new(
                "se",
                c,
                (c / 2).max(1),
                ets_nn::GemmPolicy::F32_ONLY,
                &mut Rng::new(10),
            ))
        };
        check_input_gradient(&mut make, &x, &[0, 5, 11], 1e-3, 3e-2)?;
    }

    #[test]
    fn activation_gradients(seed in 0u64..200, n in 2usize..16) {
        let x = rand_x(seed, &[n]);
        let mut mk_swish = || -> Box<dyn Layer> { Box::new(Swish::new()) };
        check_input_gradient(&mut mk_swish, &x, &[0, 1, 2, 3], 1e-3, 1e-2)?;
        let mut mk_sig = || -> Box<dyn Layer> { Box::new(Sigmoid::new()) };
        check_input_gradient(&mut mk_sig, &x, &[0, 1, 2, 3], 1e-3, 1e-2)?;
        // ReLU: avoid kinks at 0 by nudging values away from it.
        let xr = x.map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        let mut mk_relu = || -> Box<dyn Layer> { Box::new(Relu::new()) };
        check_input_gradient(&mut mk_relu, &xr, &[0, 1, 2, 3], 1e-3, 1e-2)?;
    }

    #[test]
    fn gap_gradient(seed in 0u64..200, c in 1usize..4, hw in 1usize..5) {
        let x = rand_x(seed, &[2, c, hw, hw]);
        let mut make = || -> Box<dyn Layer> { Box::new(GlobalAvgPool::new()) };
        check_input_gradient(&mut make, &x, &[0, 3, 9], 1e-3, 1e-2)?;
    }
}
