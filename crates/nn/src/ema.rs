//! Exponential moving average of model weights.
//!
//! The EfficientNet reference evaluates an EMA of the training weights
//! (decay 0.9999); peak top-1 numbers in the paper are EMA accuracies. The
//! averager is keyed positionally to the model's `visit_params` order, with
//! name checks to catch wiring mistakes.

use crate::layer::Layer;
use ets_tensor::Tensor;

/// Weight averager with TF-style decay warmup.
///
/// `Clone` gives a deep, bit-exact copy (shadow tensors included) — the
/// trainer's preemption snapshots rely on it.
#[derive(Clone)]
pub struct Ema {
    decay: f32,
    shadow: Vec<(String, Tensor)>,
    updates: u64,
}

impl Ema {
    /// Captures the initial shadow copy from `model`.
    pub fn new(model: &mut dyn Layer, decay: f32) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0,1)");
        let mut shadow = Vec::new();
        model.visit_params(&mut |p| shadow.push((p.name.clone(), p.value.clone())));
        Ema {
            decay,
            shadow,
            updates: 0,
        }
    }

    /// Effective decay after `updates` steps: `min(decay, (1+t)/(10+t))`,
    /// TF's warmup that keeps early averages from being dominated by the
    /// random init.
    pub fn effective_decay(&self) -> f32 {
        let t = self.updates as f32;
        self.decay.min((1.0 + t) / (10.0 + t))
    }

    /// Folds the current weights into the shadow copy.
    pub fn update(&mut self, model: &mut dyn Layer) {
        let d = self.effective_decay();
        let mut i = 0;
        model.visit_params(&mut |p| {
            let (name, shadow) = &mut self.shadow[i];
            debug_assert_eq!(name, &p.name, "EMA param order changed");
            // shadow = d·shadow + (1−d)·value
            shadow.scale(d);
            shadow.axpy(1.0 - d, &p.value);
            i += 1;
        });
        assert_eq!(i, self.shadow.len(), "model params changed under EMA");
        self.updates += 1;
    }

    /// Swaps the shadow weights into the model, returning the originals so
    /// the caller can restore them after evaluation.
    pub fn swap_in(&self, model: &mut dyn Layer) -> Vec<Tensor> {
        let mut saved = Vec::with_capacity(self.shadow.len());
        let mut i = 0;
        model.visit_params(&mut |p| {
            saved.push(p.value.clone());
            p.value = self.shadow[i].1.clone();
            i += 1;
        });
        saved
    }

    /// Restores weights captured by [`Ema::swap_in`].
    pub fn restore(&self, model: &mut dyn Layer, saved: Vec<Tensor>) {
        let mut it = saved.into_iter();
        model.visit_params(&mut |p| {
            p.value = it.next().expect("saved weights exhausted");
        });
    }

    /// Number of updates applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Exports the averager's full state, bit-exactly — the durable
    /// checkpoint store persists this alongside weights and optimizer
    /// state so an elastic restart resumes the same average.
    pub fn export_state(&self) -> EmaState {
        EmaState {
            decay_bits: self.decay.to_bits(),
            updates: self.updates,
            shadow: self
                .shadow
                .iter()
                .map(|(name, t)| {
                    (
                        name.clone(),
                        t.shape().dims().to_vec(),
                        t.data().iter().map(|v| v.to_bits()).collect(),
                    )
                })
                .collect(),
        }
    }

    /// Imports state exported by [`Ema::export_state`] into an averager
    /// freshly constructed over a structurally-identical model. Panics
    /// with a descriptive message on any name/shape mismatch — a silent
    /// partial import is exactly the failure mode the durable store is
    /// built to prevent.
    pub fn import_state(&mut self, state: &EmaState) {
        assert_eq!(
            state.shadow.len(),
            self.shadow.len(),
            "EMA state has {} shadow tensors, model has {}",
            state.shadow.len(),
            self.shadow.len()
        );
        self.decay = f32::from_bits(state.decay_bits);
        self.updates = state.updates;
        for ((name, t), (sname, sshape, sbits)) in self.shadow.iter_mut().zip(&state.shadow) {
            assert_eq!(name, sname, "EMA shadow name mismatch");
            assert_eq!(t.shape().dims(), &sshape[..], "EMA shadow shape mismatch");
            for (dst, &bits) in t.data_mut().iter_mut().zip(sbits) {
                *dst = f32::from_bits(bits);
            }
        }
    }
}

/// Bit-exact serialized form of an [`Ema`]: decay (f32 bit pattern),
/// update counter, and the named, shaped shadow tensors as `u32` bit
/// patterns.
#[derive(Clone, Debug, PartialEq)]
pub struct EmaState {
    pub decay_bits: u32,
    pub updates: u64,
    pub shadow: Vec<(String, Vec<usize>, Vec<u32>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Mode, Sequential};
    use crate::linear::Linear;
    use ets_tensor::Rng;

    fn tiny_model() -> Sequential {
        let mut rng = Rng::new(1);
        Sequential::new("m").push(Linear::new("fc", 2, 2, true, &mut rng))
    }

    #[test]
    fn warmup_decay_grows() {
        let mut m = tiny_model();
        let ema = Ema::new(&mut m, 0.9999);
        assert!((ema.effective_decay() - 0.1).abs() < 1e-6); // (1+0)/(10+0)
    }

    #[test]
    fn converges_to_constant_weights() {
        let mut m = tiny_model();
        let mut ema = Ema::new(&mut m, 0.5);
        // Hold weights constant; shadow must converge to them.
        for _ in 0..50 {
            ema.update(&mut m);
        }
        let mut max_diff = 0.0f32;
        let mut i = 0;
        m.visit_params(&mut |p| {
            max_diff = max_diff.max(p.value.max_abs_diff(&ema.shadow[i].1));
            i += 1;
        });
        assert!(max_diff < 1e-5, "shadow should converge, diff {max_diff}");
    }

    #[test]
    fn export_import_round_trips_bit_exactly() {
        let mut m = tiny_model();
        let mut ema = Ema::new(&mut m, 0.75);
        m.visit_params(&mut |p| {
            p.value.map_inplace(|v| v * 1.5 + 0.25);
        });
        ema.update(&mut m);
        ema.update(&mut m);
        let state = ema.export_state();

        let mut m2 = tiny_model();
        let mut ema2 = Ema::new(&mut m2, 0.75);
        ema2.import_state(&state);
        assert_eq!(ema2.updates(), ema.updates());
        assert_eq!(ema2.export_state(), state, "round trip must be bit-exact");
    }

    #[test]
    fn swap_and_restore_round_trip() {
        let mut m = tiny_model();
        let mut ema = Ema::new(&mut m, 0.5);
        // Perturb weights so shadow differs.
        m.visit_params(&mut |p| {
            p.value.map_inplace(|v| v + 1.0);
        });
        ema.update(&mut m);
        let before = crate::layer::snapshot_params(&mut m);
        let saved = ema.swap_in(&mut m);
        let during = crate::layer::snapshot_params(&mut m);
        // Shadow differs from live weights.
        assert!(before
            .iter()
            .zip(&during)
            .any(|(a, b)| a.max_abs_diff(b) > 1e-6));
        ema.restore(&mut m, saved);
        let after = crate::layer::snapshot_params(&mut m);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        let _ = Mode::Train;
    }
}
