//! Classification metrics: top-k accuracy and streaming accumulators.

use ets_tensor::Tensor;

/// Counts predictions where the true label is among the `k` highest scores.
pub fn top_k_correct(scores: &Tensor, labels: &[usize], k: usize) -> usize {
    assert_eq!(scores.shape().rank(), 2, "scores must be N×C");
    let c = scores.shape().dim(1);
    assert!(k >= 1 && k <= c, "k out of range");
    scores
        .data()
        .chunks(c)
        .zip(labels)
        .filter(|(row, &label)| {
            let target = row[label];
            // Count entries strictly greater than the target score; the
            // label is in the top-k iff fewer than k are strictly greater
            // (ties resolve in the label's favour, matching TF's in_top_k).
            row.iter().filter(|&&v| v > target).count() < k
        })
        .count()
}

/// Top-1 accuracy in `[0,1]`.
pub fn top1_accuracy(scores: &Tensor, labels: &[usize]) -> f32 {
    top_k_correct(scores, labels, 1) as f32 / labels.len() as f32
}

/// Streaming accuracy accumulator for distributed evaluation: each replica
/// accumulates local counts, which are then summed across replicas (counts
/// are exactly mergeable, unlike averaged accuracies).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalCounts {
    pub correct_top1: u64,
    pub correct_top5: u64,
    pub total: u64,
}

impl EvalCounts {
    /// Accumulates one batch of scores.
    pub fn observe(&mut self, scores: &Tensor, labels: &[usize]) {
        self.correct_top1 += top_k_correct(scores, labels, 1) as u64;
        let c = scores.shape().dim(1);
        self.correct_top5 += top_k_correct(scores, labels, 5.min(c)) as u64;
        self.total += labels.len() as u64;
    }

    /// Merges another replica's counts.
    pub fn merge(&mut self, other: &EvalCounts) {
        self.correct_top1 += other.correct_top1;
        self.correct_top5 += other.correct_top5;
        self.total += other.total;
    }

    /// Top-1 accuracy, 0 when empty.
    pub fn top1(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct_top1 as f64 / self.total as f64
        }
    }

    /// Top-5 accuracy, 0 when empty.
    pub fn top5(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct_top5 as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_counts() {
        let s = Tensor::from_vec([2, 3], vec![0.1, 0.7, 0.2, 0.9, 0.05, 0.05]);
        assert_eq!(top_k_correct(&s, &[1, 0], 1), 2);
        assert_eq!(top_k_correct(&s, &[0, 0], 1), 1);
        assert!((top1_accuracy(&s, &[1, 1]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn top_k_widens() {
        let s = Tensor::from_vec([1, 4], vec![0.4, 0.3, 0.2, 0.1]);
        assert_eq!(top_k_correct(&s, &[2], 1), 0);
        assert_eq!(top_k_correct(&s, &[2], 2), 0);
        assert_eq!(top_k_correct(&s, &[2], 3), 1);
    }

    #[test]
    fn ties_favour_label() {
        let s = Tensor::from_vec([1, 3], vec![0.5, 0.5, 0.0]);
        assert_eq!(top_k_correct(&s, &[1], 1), 1);
    }

    #[test]
    fn counts_merge_exactly() {
        let s1 = Tensor::from_vec([1, 6], vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let s2 = Tensor::from_vec([1, 6], vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let mut a = EvalCounts::default();
        a.observe(&s1, &[0]);
        let mut b = EvalCounts::default();
        b.observe(&s2, &[0]);
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.correct_top1, 1);
        assert_eq!(a.correct_top5, 2); // label 0 is within top-5 of s2
        assert!((a.top1() - 0.5).abs() < 1e-9);
    }
}
