//! Convolution layers (dense and depthwise) with optional bfloat16
//! mixed-precision execution (§3.5).
//!
//! EfficientNet's convolutions carry no bias — batch norm supplies the
//! shift — so neither layer has one. With [`Precision::MixedBf16`], the
//! operands of every conv product (activations and kernels, forward and
//! backward) are rounded through bf16 while accumulation stays in f32,
//! matching the TPU execution the paper describes.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use ets_tensor::bf16::quantize_tensor;
use ets_tensor::ops::conv::{
    conv2d_backward_p, conv2d_forward_p, depthwise_backward, depthwise_forward,
};
use ets_tensor::ops::dispatch::{GemmPolicy, GemmPrecision};
use ets_tensor::{init, Rng, Tensor};

/// Numeric policy for conv products.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// Pure f32 (the paper's baseline comparison point).
    F32,
    /// bf16 multiplies with f32 accumulation (the paper's policy).
    MixedBf16,
}

impl Precision {
    /// The shape-pure dispatch policy this config knob maps to — used by
    /// the *non-conv* GEMMs (head [`crate::Linear`], squeeze-excite),
    /// whose MAC gate keeps paper-§3.5's "everything but convolutions
    /// stays f32" at proxy scale while still being a pure function of
    /// shape + config.
    pub fn policy(&self) -> GemmPolicy {
        match self {
            Precision::F32 => GemmPolicy::F32_ONLY,
            Precision::MixedBf16 => GemmPolicy::MIXED_BF16,
        }
    }

    /// Pack-time element type for *convolution* GEMMs: the paper runs
    /// every convolution in bf16 when mixed precision is on, with no
    /// size exception, so this maps the knob directly.
    pub fn gemm(&self) -> GemmPrecision {
        match self {
            Precision::F32 => GemmPrecision::F32,
            Precision::MixedBf16 => GemmPrecision::Bf16,
        }
    }

    /// Rounds a tensor through bf16 when mixed (used by the depthwise
    /// direct-loop kernels, which have no GEMM to pack into).
    fn prep(&self, t: &Tensor) -> Tensor {
        match self {
            Precision::F32 => t.clone(),
            Precision::MixedBf16 => quantize_tensor(t),
        }
    }
}

/// Dense 2-D convolution, no bias.
pub struct Conv2d {
    weight: Param,
    stride: usize,
    pad: usize,
    precision: Precision,
    /// Cached raw input + the pack-time precision chosen in forward
    /// (reused verbatim in backward so both passes agree).
    cache: Option<(Tensor, GemmPrecision)>,
    label: String,
}

impl Conv2d {
    /// Builds a conv layer with EfficientNet's fan-out truncated-normal
    /// initialization.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        precision: Precision,
        rng: &mut Rng,
    ) -> Self {
        let label = label.into();
        let w = init::conv_kernel(rng, c_out, c_in, kernel, kernel);
        Conv2d {
            weight: Param::new(format!("{label}.w"), w, ParamKind::Weight),
            stride,
            pad,
            precision,
            cache: None,
            label,
        }
    }

    /// Direct access to the kernel parameter (tests, FLOPs accounting).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        // The kernels narrow operands at pack time, so no quantized
        // tensor copies are materialized here anymore.
        let prec = self.precision.gemm();
        let y = conv2d_forward_p(x, &self.weight.value, self.stride, self.pad, prec);
        self.cache = Some((x.clone(), prec));
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (x, prec) = self.cache.take().expect("Conv2d: forward before backward");
        let (dx, dw) = conv2d_backward_p(&x, &self.weight.value, grad, self.stride, self.pad, prec);
        self.weight.grad.add_assign(&dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Depthwise 2-D convolution (channel multiplier 1), no bias.
pub struct DepthwiseConv2d {
    weight: Param,
    stride: usize,
    pad: usize,
    precision: Precision,
    cache_x: Option<Tensor>,
    label: String,
}

impl DepthwiseConv2d {
    /// Builds a depthwise conv with TF's depthwise initializer.
    pub fn new(
        label: impl Into<String>,
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        precision: Precision,
        rng: &mut Rng,
    ) -> Self {
        let label = label.into();
        let w = init::depthwise_kernel(rng, channels, kernel, kernel);
        DepthwiseConv2d {
            weight: Param::new(format!("{label}.dw"), w, ParamKind::Weight),
            stride,
            pad,
            precision,
            cache_x: None,
            label,
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode, _rng: &mut Rng) -> Tensor {
        let xq = self.precision.prep(x);
        let wq = self.precision.prep(&self.weight.value);
        let y = depthwise_forward(&xq, &wq, self.stride, self.pad);
        self.cache_x = Some(xq);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let xq = self
            .cache_x
            .take()
            .expect("DepthwiseConv2d: forward before backward");
        let wq = self.precision.prep(&self.weight.value);
        let (dx, dw) = depthwise_backward(&xq, &wq, grad, self.stride, self.pad);
        self.weight.grad.add_assign(&dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_tensor::same_pad;

    fn rand_input(rng: &mut Rng, shape: &[usize]) -> Tensor {
        let mut t = Tensor::zeros(shape);
        rng.fill_uniform(t.data_mut(), -1.0, 1.0);
        t
    }

    #[test]
    fn conv_shapes() {
        let mut rng = Rng::new(1);
        let mut conv = Conv2d::new("c", 3, 8, 3, 2, same_pad(3), Precision::F32, &mut rng);
        let x = rand_input(&mut rng, &[2, 3, 16, 16]);
        let y = conv.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
        let dx = conv.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(dx.shape().dims(), x.shape().dims());
        assert!(conv.weight().grad.l2_norm() > 0.0);
    }

    #[test]
    fn depthwise_shapes() {
        let mut rng = Rng::new(2);
        let mut dw = DepthwiseConv2d::new("d", 6, 5, 1, same_pad(5), Precision::F32, &mut rng);
        let x = rand_input(&mut rng, &[1, 6, 9, 9]);
        let y = dw.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape().dims(), &[1, 6, 9, 9]);
        let dx = dw.backward(&y);
        assert_eq!(dx.shape().dims(), x.shape().dims());
    }

    #[test]
    fn bf16_path_close_but_not_identical() {
        let mut rng = Rng::new(3);
        let mut c32 = Conv2d::new("a", 4, 4, 3, 1, 1, Precision::F32, &mut rng);
        // Same weights for both precisions.
        let mut c16 = Conv2d::new("b", 4, 4, 3, 1, 1, Precision::MixedBf16, &mut rng);
        c16.weight.value = c32.weight.value.clone();
        let x = rand_input(&mut rng, &[1, 4, 8, 8]);
        let y32 = c32.forward(&x, Mode::Train, &mut rng);
        let y16 = c16.forward(&x, Mode::Train, &mut rng);
        let diff = y32.max_abs_diff(&y16);
        assert!(diff > 0.0, "bf16 must differ");
        assert!(diff < 0.05, "bf16 error too large: {diff}");
    }

    #[test]
    fn gradient_accumulates_across_steps() {
        let mut rng = Rng::new(4);
        let mut conv = Conv2d::new("c", 2, 2, 1, 1, 0, Precision::F32, &mut rng);
        let x = rand_input(&mut rng, &[1, 2, 4, 4]);
        let y = conv.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::ones(y.shape().dims());
        conv.backward(&g);
        let g1 = conv.weight().grad.clone();
        let _ = conv.forward(&x, Mode::Train, &mut rng);
        conv.backward(&g);
        let g2 = conv.weight().grad.clone();
        assert!(g2.max_abs_diff(&g1.map(|v| v * 2.0)) < 1e-5);
    }
}
