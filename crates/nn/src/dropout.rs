//! Stochastic regularizers: inverted dropout and per-sample stochastic
//! depth ("drop connect" in the EfficientNet code).

use crate::layer::{Layer, Mode};
use crate::param::Param;
use ets_tensor::{Rng, Tensor};

/// Inverted dropout: in training, zeroes each element with probability
/// `rate` and scales survivors by `1/(1-rate)`; identity in eval.
pub struct Dropout {
    rate: f32,
    cache_mask: Option<Tensor>,
}

impl Dropout {
    pub fn new(rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0,1)");
        Dropout {
            rate,
            cache_mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape().dims());
        for m in mask.data_mut() {
            *m = if rng.coin(keep) { scale } else { 0.0 };
        }
        let y = x.zip(&mask, |v, m| v * m);
        self.cache_mask = Some(mask);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self.cache_mask.take() {
            Some(mask) => grad.zip(&mask, |g, m| g * m),
            None => grad.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("dropout({})", self.rate)
    }
}

/// Stochastic depth: drops the *entire* residual branch per sample with
/// probability `rate`, scaling survivors by `1/(1-rate)`.
///
/// EfficientNet applies this to each MBConv block's output before the
/// identity add, with the rate growing linearly with block depth.
pub struct DropPath {
    rate: f32,
    cache_mask: Option<Vec<f32>>,
}

impl DropPath {
    pub fn new(rate: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&rate),
            "drop path rate must be in [0,1)"
        );
        DropPath {
            rate,
            cache_mask: None,
        }
    }

    /// The drop rate.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for DropPath {
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        let n = x.shape().dim(0);
        let per_img = x.numel() / n;
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..n)
            .map(|_| if rng.coin(keep) { scale } else { 0.0 })
            .collect();
        let mut y = x.clone();
        for (i, chunk) in y.data_mut().chunks_mut(per_img).enumerate() {
            let m = mask[i];
            chunk.iter_mut().for_each(|v| *v *= m);
        }
        self.cache_mask = Some(mask);
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        match self.cache_mask.take() {
            Some(mask) => {
                let n = grad.shape().dim(0);
                let per_img = grad.numel() / n;
                let mut dx = grad.clone();
                for (i, chunk) in dx.data_mut().chunks_mut(per_img).enumerate() {
                    let m = mask[i];
                    chunk.iter_mut().for_each(|v| *v *= m);
                }
                dx
            }
            None => grad.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("drop_path({})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_eval_is_identity() {
        let mut d = Dropout::new(0.5);
        let mut rng = Rng::new(0);
        let x = Tensor::ones([100]);
        let y = d.forward(&x, Mode::Eval, &mut rng);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3);
        let mut rng = Rng::new(1);
        let x = Tensor::ones([20_000]);
        let y = d.forward(&x, Mode::Train, &mut rng);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
        // Survivors are scaled by 1/keep.
        let keep = 1.0 / 0.7;
        assert!(y
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - keep).abs() < 1e-6));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5);
        let mut rng = Rng::new(2);
        let x = Tensor::ones([64]);
        let y = d.forward(&x, Mode::Train, &mut rng);
        let dx = d.backward(&Tensor::ones([64]));
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(yv, dv, "mask must match between passes");
        }
    }

    #[test]
    fn drop_path_is_per_sample() {
        let mut d = DropPath::new(0.5);
        let mut rng = Rng::new(3);
        let x = Tensor::ones([8, 2, 2, 2]);
        let y = d.forward(&x, Mode::Train, &mut rng);
        for img in y.data().chunks(8) {
            let first = img[0];
            assert!(img.iter().all(|&v| v == first), "whole image same fate");
            assert!(first == 0.0 || (first - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_rate_is_identity_even_in_train() {
        let mut d = DropPath::new(0.0);
        let mut rng = Rng::new(4);
        let x = Tensor::ones([4, 1, 2, 2]);
        let y = d.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.data(), x.data());
        let g = d.backward(&x);
        assert_eq!(g.data(), x.data());
    }
}
