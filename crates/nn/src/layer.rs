//! The layer abstraction: stateful modules with explicit forward/backward.
//!
//! Instead of a tape autograd, every layer caches whatever activations its
//! backward pass needs during `forward` and consumes them in `backward`.
//! This keeps memory explicit (one cached activation set per layer) and the
//! call graph obvious — the idiom large training systems use when they hand
//! -tune memory.
//!
//! Contract: `backward` must be called at most once per `forward`, with the
//! upstream gradient matching the forward output's shape; parameter
//! gradients *accumulate* into `Param::grad` (callers zero them between
//! steps).

use crate::param::Param;
use ets_tensor::{Rng, Tensor};

/// Whether the network is training (batch stats, dropout active) or
/// evaluating (running stats, no dropout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    Train,
    Eval,
}

/// A differentiable module.
pub trait Layer: Send {
    /// Computes the output, caching anything backward will need.
    /// `rng` drives stochastic layers (dropout, stochastic depth); it is
    /// ignored by deterministic layers.
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor;

    /// Propagates `grad` (d loss / d output) to d loss / d input, adding
    /// parameter gradients into `Param::grad`.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits every trainable parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> String {
        "layer".into()
    }
}

/// Backward with gradient-readiness hooks, enabling communication to
/// overlap with the rest of the backward pass.
///
/// Contract: `backward_hooked(grad, ready)` performs **bitwise the same
/// computation** as [`Layer::backward`] (same gradients, same return
/// value), additionally calling `ready` as gradients finalize. Because a
/// model's backward pass visits layers in reverse network order while
/// `visit_params` walks forward order, gradients finalize from the *tail*
/// of the parameter list: each `ready(seg)` call hands a sub-layer whose
/// parameters form the next contiguous suffix segment of the
/// `visit_params` order (strictly descending, no gaps), with all of that
/// segment's gradients fully accumulated — the layer must not touch them
/// again before returning. Every parameter is covered by exactly one
/// `ready` call by the time `backward_hooked` returns.
///
/// Consumers (the bucketized gradient exchange) use the hook to ship
/// finished gradient buckets while earlier layers are still
/// differentiating.
pub trait HookedBackward: Layer {
    /// Runs backward, announcing finalized trailing parameter segments
    /// through `ready`.
    fn backward_hooked(&mut self, grad: &Tensor, ready: &mut dyn FnMut(&mut dyn Layer)) -> Tensor;
}

/// A sequential container: layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    label: String,
}

impl Sequential {
    /// Creates an empty container with a diagnostic label.
    pub fn new(label: impl Into<String>) -> Self {
        Sequential {
            layers: Vec::new(),
            label: label.into(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, mode, rng);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

impl HookedBackward for Sequential {
    fn backward_hooked(&mut self, grad: &Tensor, ready: &mut dyn FnMut(&mut dyn Layer)) -> Tensor {
        let mut cur = grad.clone();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
            // Reverse traversal of forward visit order: each finished
            // layer is the next suffix segment of the parameter list.
            ready(l.as_mut());
        }
        cur
    }
}

/// Collects snapshots of all parameter values (for EMA / checkpoint tests).
pub fn snapshot_params(layer: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

/// Zeroes every parameter gradient under `layer`.
pub fn zero_grads(layer: &mut dyn Layer) {
    layer.visit_params(&mut |p| p.zero_grad());
}

/// Counts trainable scalars under `layer`.
pub fn param_count(layer: &mut dyn Layer) -> usize {
    let mut n = 0;
    layer.visit_params(&mut |p| n += p.numel());
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    /// y = x * k, dk accumulates sum(x ⊙ g).
    struct ScaleLayer {
        k: Param,
        cache: Option<Tensor>,
    }

    impl ScaleLayer {
        fn new(k: f32) -> Self {
            ScaleLayer {
                k: Param::new("k", Tensor::scalar(k), ParamKind::Weight),
                cache: None,
            }
        }
    }

    impl Layer for ScaleLayer {
        fn forward(&mut self, x: &Tensor, _m: Mode, _r: &mut Rng) -> Tensor {
            self.cache = Some(x.clone());
            let k = self.k.value.data()[0];
            x.map(|v| v * k)
        }
        fn backward(&mut self, grad: &Tensor) -> Tensor {
            let x = self.cache.take().expect("forward before backward");
            let dk: f32 = x.data().iter().zip(grad.data()).map(|(&a, &b)| a * b).sum();
            self.k.grad.data_mut()[0] += dk;
            let k = self.k.value.data()[0];
            grad.map(|v| v * k)
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.k);
        }
    }

    #[test]
    fn sequential_composes_forward_and_backward() {
        let mut seq = Sequential::new("test")
            .push(ScaleLayer::new(2.0))
            .push(ScaleLayer::new(3.0));
        let mut rng = Rng::new(0);
        let x = Tensor::from_vec([2], vec![1.0, -1.0]);
        let y = seq.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.data(), &[6.0, -6.0]);
        let dx = seq.backward(&Tensor::ones([2]));
        assert_eq!(dx.data(), &[6.0, 6.0]);
        assert_eq!(param_count(&mut seq), 2);
        // Gradients accumulated: d/dk2 = sum(2x) = 0, d/dk1 = sum(3x) = 0 here;
        // use a nonsymmetric upstream to check nonzero accumulation.
        zero_grads(&mut seq);
        let _ = seq.forward(&x, Mode::Train, &mut rng);
        let _ = seq.backward(&Tensor::from_vec([2], vec![1.0, 0.0]));
        let mut grads = Vec::new();
        seq.visit_params(&mut |p| grads.push(p.grad.data()[0]));
        assert_eq!(grads, vec![3.0, 2.0]); // k1 sees 3·x₀·g₀, k2 sees 2·x₀·g₀
    }

    #[test]
    fn hooked_backward_matches_backward_and_reports_suffix_segments() {
        let mut rng = Rng::new(0);
        let x = Tensor::from_vec([2], vec![1.5, -0.5]);
        let g = Tensor::from_vec([2], vec![1.0, 2.0]);

        let mut plain = Sequential::new("plain")
            .push(ScaleLayer::new(2.0))
            .push(ScaleLayer::new(3.0));
        let _ = plain.forward(&x, Mode::Train, &mut rng);
        let dx_plain = plain.backward(&g);
        let mut grads_plain = Vec::new();
        plain.visit_params(&mut |p| grads_plain.push(p.grad.data()[0].to_bits()));

        let mut hooked = Sequential::new("hooked")
            .push(ScaleLayer::new(2.0))
            .push(ScaleLayer::new(3.0));
        let _ = hooked.forward(&x, Mode::Train, &mut rng);
        let mut seen = Vec::new();
        let dx_hooked = hooked.backward_hooked(&g, &mut |seg| {
            let mut vals = Vec::new();
            seg.visit_params(&mut |p| vals.push(p.value.data()[0]));
            seen.push(vals);
        });
        let mut grads_hooked = Vec::new();
        hooked.visit_params(&mut |p| grads_hooked.push(p.grad.data()[0].to_bits()));

        // Bitwise-identical computation...
        assert_eq!(
            dx_plain
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            dx_hooked
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(grads_plain, grads_hooked);
        // ...with suffix segments announced in strictly descending order.
        assert_eq!(seen, vec![vec![3.0], vec![2.0]]);
    }

    #[test]
    fn snapshot_orders_stable() {
        let mut seq = Sequential::new("t")
            .push(ScaleLayer::new(1.0))
            .push(ScaleLayer::new(5.0));
        let snap = snapshot_params(&mut seq);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].data()[0], 5.0);
    }
}
