//! # ets-nn
//!
//! Neural-network layers with explicit manual backpropagation, built on
//! `ets-tensor`. Provides everything EfficientNet needs: dense/depthwise
//! convolutions with optional bfloat16 mixed precision (§3.5 of the paper),
//! batch normalization with pluggable cross-replica statistics (§3.4),
//! squeeze-and-excite, swish, stochastic depth, label-smoothed softmax
//! cross-entropy, top-k metrics, and weight EMA.
//!
//! The layer contract is documented on [`layer::Layer`]: `forward` caches,
//! `backward` consumes the cache and *accumulates* parameter gradients.

pub mod activations;
pub mod batchnorm;
pub mod confusion;
pub mod conv;
pub mod dropout;
pub mod ema;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod param;
pub mod pool;
pub mod se;

pub use activations::{Relu, Sigmoid, Swish};
pub use batchnorm::{BatchNorm2d, LocalStats, StatSync};
pub use confusion::ConfusionMatrix;
pub use conv::{Conv2d, DepthwiseConv2d, Precision};
// Re-exported so model/trainer code can name the dispatch policy without
// depending on ets-tensor's module layout.
pub use dropout::{DropPath, Dropout};
pub use ema::{Ema, EmaState};
pub use ets_tensor::ops::dispatch::{GemmPolicy, GemmPrecision};
pub use layer::{
    param_count, snapshot_params, zero_grads, HookedBackward, Layer, Mode, Sequential,
};
pub use linear::Linear;
pub use loss::{cross_entropy, softmax, LossOutput};
pub use metrics::{top1_accuracy, top_k_correct, EvalCounts};
pub use param::{Param, ParamKind};
pub use pool::GlobalAvgPool;
pub use se::SqueezeExcite;
