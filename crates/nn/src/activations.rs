//! Activation layers: swish/SiLU (EfficientNet's default), ReLU, sigmoid.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use ets_tensor::{Rng, Tensor};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Swish / SiLU: `y = x · σ(x)`.
pub struct Swish {
    cache_x: Option<Tensor>,
}

impl Swish {
    pub fn new() -> Self {
        Swish { cache_x: None }
    }
}

impl Default for Swish {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Swish {
    fn forward(&mut self, x: &Tensor, _m: Mode, _r: &mut Rng) -> Tensor {
        self.cache_x = Some(x.clone());
        x.map(|v| v * sigmoid(v))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Swish: forward before backward");
        // d/dx [x·σ(x)] = σ(x)·(1 + x·(1 − σ(x)))
        x.zip(grad, |v, g| {
            let s = sigmoid(v);
            g * s * (1.0 + v * (1.0 - s))
        })
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "swish".into()
    }
}

/// ReLU: `y = max(x, 0)`.
pub struct Relu {
    cache_mask: Option<Tensor>,
}

impl Relu {
    pub fn new() -> Self {
        Relu { cache_mask: None }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, _m: Mode, _r: &mut Rng) -> Tensor {
        self.cache_mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let m = self
            .cache_mask
            .take()
            .expect("Relu: forward before backward");
        grad.zip(&m, |g, mask| g * mask)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "relu".into()
    }
}

/// Sigmoid: `y = σ(x)`.
pub struct Sigmoid {
    cache_y: Option<Tensor>,
}

impl Sigmoid {
    pub fn new() -> Self {
        Sigmoid { cache_y: None }
    }
}

impl Default for Sigmoid {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _m: Mode, _r: &mut Rng) -> Tensor {
        let y = x.map(sigmoid);
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let y = self
            .cache_y
            .take()
            .expect("Sigmoid: forward before backward");
        grad.zip(&y, |g, yv| g * yv * (1.0 - yv))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "sigmoid".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;

    fn fd_check(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let mut rng = Rng::new(0);
        let y = layer.forward(x, Mode::Train, &mut rng);
        let mut g = Tensor::zeros(y.shape().dims());
        let mut grng = Rng::new(1);
        grng.fill_uniform(g.data_mut(), -1.0, 1.0);
        let dx = layer.backward(&g);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = layer.forward(&xp, Mode::Train, &mut rng);
            let _ = layer.backward(&g); // clear cache
            let ym = layer.forward(&xm, Mode::Train, &mut rng);
            let _ = layer.backward(&g);
            let num: f32 = yp
                .data()
                .iter()
                .zip(ym.data())
                .zip(g.data())
                .map(|((&a, &b), &gv)| (a - b) / (2.0 * eps) * gv)
                .sum();
            assert!(
                (num - dx.data()[i]).abs() < tol * (1.0 + num.abs()),
                "idx {i}: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn swish_values() {
        let mut s = Swish::new();
        let mut rng = Rng::new(0);
        let x = Tensor::from_vec([3], vec![0.0, 10.0, -10.0]);
        let y = s.forward(&x, Mode::Train, &mut rng);
        assert!(y.data()[0].abs() < 1e-6);
        assert!((y.data()[1] - 10.0).abs() < 1e-3); // ≈ identity for large x
        assert!(y.data()[2].abs() < 1e-3); // ≈ 0 for very negative x
    }

    #[test]
    fn swish_gradient() {
        let x = Tensor::from_vec([5], vec![-2.0, -0.5, 0.0, 0.7, 2.0]);
        fd_check(&mut Swish::new(), &x, 1e-2);
    }

    #[test]
    fn relu_gradient_and_mask() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, 2.0, -0.1]);
        let mut r = Relu::new();
        let mut rng = Rng::new(0);
        let y = r.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0, 0.0]);
        let dx = r.backward(&Tensor::ones([4]));
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_gradient() {
        let x = Tensor::from_vec([4], vec![-3.0, -0.2, 0.9, 3.0]);
        fd_check(&mut Sigmoid::new(), &x, 1e-2);
    }

    #[test]
    fn sigmoid_range() {
        let mut s = Sigmoid::new();
        let mut rng = Rng::new(0);
        let x = Tensor::from_vec([2], vec![-100.0, 100.0]);
        let y = s.forward(&x, Mode::Train, &mut rng);
        assert!(y.data()[0] >= 0.0 && y.data()[0] < 1e-6);
        assert!(y.data()[1] <= 1.0 && y.data()[1] > 1.0 - 1e-6);
    }
}
