//! Squeeze-and-excite block: channel attention used in every MBConv.
//!
//! `s = σ(W₂ · swish(W₁ · GAP(x)))`, `y = x ⊙ s` (per-channel gate).
//! The two 1×1 "convs" of the reference implementation operate on a 1×1
//! spatial map, so they are implemented as dense layers (with bias, as in
//! the TF code). Their GEMMs route through `gemm_auto` via [`Linear`]:
//! SE bottlenecks are usually below the blocked-dispatch threshold and
//! keep the naive streaming kernels, by design — the dispatcher decides
//! per shape, not per layer type. The same shape-plus-config rule
//! governs the pack-time precision: the block takes a [`GemmPolicy`],
//! and under the mixed policy the MAC gate keeps these bottleneck-sized
//! products in f32 (the paper's "everything but convolutions stays
//! f32") without a special case.

use crate::activations::{Sigmoid, Swish};
use crate::layer::{Layer, Mode};
use crate::linear::Linear;
use crate::param::Param;
use ets_tensor::ops::dispatch::GemmPolicy;
use ets_tensor::ops::pool::{
    channel_dot, global_avg_pool, global_avg_pool_backward, scale_channels,
};
use ets_tensor::{Rng, Tensor};

/// Squeeze-and-excite with reduction to `se_dim` hidden units.
pub struct SqueezeExcite {
    reduce: Linear,
    expand: Linear,
    act: Swish,
    gate: Sigmoid,
    cache: Option<SeCache>,
    label: String,
}

struct SeCache {
    x: Tensor,
    s: Tensor,
    hw: (usize, usize),
}

impl SqueezeExcite {
    /// `channels` is the gated channel count; `se_dim` the bottleneck width
    /// (EfficientNet uses `max(1, input_filters/4)` computed by the caller).
    /// `policy` governs the pack-time precision of the two FC GEMMs.
    pub fn new(
        label: impl Into<String>,
        channels: usize,
        se_dim: usize,
        policy: GemmPolicy,
        rng: &mut Rng,
    ) -> Self {
        let label = label.into();
        SqueezeExcite {
            reduce: Linear::with_precision(
                format!("{label}.se_reduce"),
                channels,
                se_dim,
                true,
                policy,
                rng,
            ),
            expand: Linear::with_precision(
                format!("{label}.se_expand"),
                se_dim,
                channels,
                true,
                policy,
                rng,
            ),
            act: Swish::new(),
            gate: Sigmoid::new(),
            cache: None,
            label,
        }
    }
}

impl Layer for SqueezeExcite {
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        let pooled = global_avg_pool(x); // N×C
        let hidden = self
            .act
            .forward(&self.reduce.forward(&pooled, mode, rng), mode, rng);
        let s = self
            .gate
            .forward(&self.expand.forward(&hidden, mode, rng), mode, rng); // N×C
        let y = scale_channels(x, &s);
        self.cache = Some(SeCache {
            x: x.clone(),
            s,
            hw: (x.shape().h(), x.shape().w()),
        });
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let SeCache { x, s, hw } = self.cache.take().expect("SE: forward before backward");
        // y = x ⊙ broadcast(s):
        //   ds (N×C) = <grad, x> over spatial; dx₁ = grad ⊙ broadcast(s).
        let ds = channel_dot(grad, &x);
        let mut dx = scale_channels(grad, &s);
        // Backprop ds through gate → expand → act → reduce → GAP.
        let d_expand = self.gate.backward(&ds);
        let d_hidden = self.expand.backward(&d_expand);
        let d_reduce = self.act.backward(&d_hidden);
        let d_pool = self.reduce.backward(&d_reduce);
        let dx2 = global_avg_pool_backward(&d_pool, hw.0, hw.1);
        dx.add_assign(&dx2);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.reduce.visit_params(f);
        self.expand.visit_params(f);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounded_and_shapes_preserved() {
        let mut rng = Rng::new(1);
        let mut se = SqueezeExcite::new("se", 8, 2, GemmPolicy::F32_ONLY, &mut rng);
        let mut x = Tensor::zeros([2, 8, 4, 4]);
        rng.fill_normal(x.data_mut(), 0.0, 1.0);
        let y = se.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape().dims(), x.shape().dims());
        // With zero-init expand bias, the gate starts near σ(0)=0.5 but
        // weights perturb it; output magnitude can't exceed input magnitude
        // by more than the gate bound of 1.
        for (yv, xv) in y.data().iter().zip(x.data()) {
            assert!(yv.abs() <= xv.abs() + 1e-6);
        }
    }

    #[test]
    fn backward_finite_difference() {
        let mut rng = Rng::new(2);
        let mut se = SqueezeExcite::new("se", 4, 2, GemmPolicy::F32_ONLY, &mut rng);
        let mut x = Tensor::zeros([1, 4, 3, 3]);
        rng.fill_uniform(x.data_mut(), -1.0, 1.0);
        let mut g = Tensor::zeros(x.shape().dims());
        rng.fill_uniform(g.data_mut(), -1.0, 1.0);

        let _y = se.forward(&x, Mode::Train, &mut rng);
        let dx = se.backward(&g);

        let loss = |se: &mut SqueezeExcite, x: &Tensor| -> f64 {
            let mut r = Rng::new(0);
            let y = se.forward(x, Mode::Train, &mut r);
            se.cache = None;
            y.data()
                .iter()
                .zip(g.data())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        let eps = 1e-3f32;
        for &i in &[0usize, 9, 17, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&mut se, &xp) - loss(&mut se, &xm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{i}] numeric {num} analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn param_inventory() {
        let mut rng = Rng::new(3);
        let mut se = SqueezeExcite::new("se", 16, 4, GemmPolicy::F32_ONLY, &mut rng);
        let mut names = Vec::new();
        se.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(
            names,
            vec![
                "se.se_reduce.w",
                "se.se_reduce.b",
                "se.se_expand.w",
                "se.se_expand.b"
            ]
        );
    }
}
