//! Confusion matrix and per-class metrics for evaluation reporting.
//!
//! Like [`crate::metrics::EvalCounts`], the matrix is built from exact
//! counts so distributed shards merge losslessly.

use ets_tensor::Tensor;

/// A `C×C` confusion matrix: `m[true][predicted]` counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Empty matrix over `classes` classes.
    pub fn new(classes: usize) -> Self {
        assert!(classes >= 2);
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Class count.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count at `(true, predicted)`.
    pub fn at(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.classes + predicted]
    }

    /// Records a batch of score rows against labels (argmax prediction).
    pub fn observe(&mut self, scores: &Tensor, labels: &[usize]) {
        let c = scores.shape().dim(1);
        assert_eq!(c, self.classes, "score width mismatch");
        for (row, &label) in scores.data().chunks(c).zip(labels) {
            let mut best = 0usize;
            let mut bv = f32::NEG_INFINITY;
            for (j, &v) in row.iter().enumerate() {
                if v > bv {
                    bv = v;
                    best = j;
                }
            }
            self.counts[label * c + best] += 1;
        }
    }

    /// Merges another replica's matrix (exact).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.classes, other.classes);
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|i| self.at(i, i)).sum();
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            correct as f64 / t as f64
        }
    }

    /// Per-class recall (diagonal over row sums); NaN-free (0 when empty).
    pub fn recall(&self, class: usize) -> f64 {
        let row: u64 = (0..self.classes).map(|j| self.at(class, j)).sum();
        if row == 0 {
            0.0
        } else {
            self.at(class, class) as f64 / row as f64
        }
    }

    /// Per-class precision (diagonal over column sums).
    pub fn precision(&self, class: usize) -> f64 {
        let col: u64 = (0..self.classes).map(|i| self.at(i, class)).sum();
        if col == 0 {
            0.0
        } else {
            self.at(class, class) as f64 / col as f64
        }
    }

    /// The most-confused off-diagonal pair `(true, predicted, count)`.
    pub fn worst_confusion(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for t in 0..self.classes {
            for p in 0..self.classes {
                if t != p {
                    let n = self.at(t, p);
                    if n > 0 && best.map(|(_, _, b)| n > b).unwrap_or(true) {
                        best = Some((t, p, n));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(rows: &[&[f32]]) -> Tensor {
        let c = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec([rows.len(), c], data)
    }

    #[test]
    fn counts_and_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.observe(
            &scores(&[&[0.9, 0.1, 0.0], &[0.1, 0.8, 0.1], &[0.7, 0.2, 0.1]]),
            &[0, 1, 2],
        );
        assert_eq!(m.at(0, 0), 1);
        assert_eq!(m.at(1, 1), 1);
        assert_eq!(m.at(2, 0), 1, "third sample mispredicted as class 0");
        assert!((m.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.worst_confusion(), Some((2, 0, 1)));
    }

    #[test]
    fn precision_recall() {
        let mut m = ConfusionMatrix::new(2);
        // 3 true class-0 (2 right), 1 true class-1 (predicted 0).
        m.observe(
            &scores(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]),
            &[0, 0, 0, 1],
        );
        assert!((m.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.recall(1), 0.0);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = ConfusionMatrix::new(2);
        a.observe(&scores(&[&[1.0, 0.0]]), &[0]);
        let mut b = ConfusionMatrix::new(2);
        b.observe(&scores(&[&[0.0, 1.0]]), &[0]);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.at(0, 1), 1);
        assert!((a.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall(1), 0.0);
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.worst_confusion(), None);
    }
}
