//! Trainable parameters.
//!
//! Each parameter carries its gradient buffer and a [`ParamKind`] tag. The
//! kind matters for large-batch training: LARS (§3.1) skips trust-ratio
//! adaptation and weight decay for batch-norm scales/shifts and biases,
//! exactly as in You et al. — the tag is how optimizers implement that rule
//! without string-matching names.

use ets_tensor::Tensor;

/// What role a parameter plays, which controls weight decay and LARS
/// adaptation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Conv/dense kernels: decayed, LARS-adapted.
    Weight,
    /// Dense bias: no decay, no LARS adaptation.
    Bias,
    /// Batch-norm scale (γ): no decay, no LARS adaptation.
    BnGamma,
    /// Batch-norm shift (β): no decay, no LARS adaptation.
    BnBeta,
}

impl ParamKind {
    /// Whether LARS should apply its layer-wise trust ratio (and weight
    /// decay) to this parameter.
    #[inline]
    pub fn lars_adapted(self) -> bool {
        matches!(self, ParamKind::Weight)
    }

    /// Whether L2 weight decay applies.
    #[inline]
    pub fn decayed(self) -> bool {
        matches!(self, ParamKind::Weight)
    }
}

/// A named, trainable tensor with an accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Stable identifier, e.g. `"stem.conv.w"`. Used for EMA bookkeeping
    /// and debugging; optimizer state is keyed positionally.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the backward pass; zeroed by
    /// [`Param::zero_grad`] at the start of each step.
    pub grad: Tensor,
    /// Role tag.
    pub kind: ParamKind,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(name: impl Into<String>, value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Param {
            name: name.into(),
            value,
            grad,
            kind,
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Convenience: total parameter count over a set.
pub fn total_params<'a>(params: impl IntoIterator<Item = &'a Param>) -> usize {
    params.into_iter().map(|p| p.numel()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_control_adaptation() {
        assert!(ParamKind::Weight.lars_adapted());
        assert!(ParamKind::Weight.decayed());
        for k in [ParamKind::Bias, ParamKind::BnGamma, ParamKind::BnBeta] {
            assert!(!k.lars_adapted());
            assert!(!k.decayed());
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new("w", Tensor::ones([3]), ParamKind::Weight);
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.numel(), 3);
    }

    #[test]
    fn total_counts() {
        let a = Param::new("a", Tensor::zeros([2, 3]), ParamKind::Weight);
        let b = Param::new("b", Tensor::zeros([4]), ParamKind::Bias);
        assert_eq!(total_params([&a, &b]), 10);
    }
}
