//! Pooling layers.

use crate::layer::{Layer, Mode};
use crate::param::Param;
use ets_tensor::ops::pool::{global_avg_pool, global_avg_pool_backward};
use ets_tensor::{Rng, Tensor};

/// Global average pooling: `NCHW -> NC`.
pub struct GlobalAvgPool {
    cache_hw: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    pub fn new() -> Self {
        GlobalAvgPool { cache_hw: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _m: Mode, _r: &mut Rng) -> Tensor {
        self.cache_hw = Some((x.shape().h(), x.shape().w()));
        global_avg_pool(x)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (h, w) = self
            .cache_hw
            .take()
            .expect("GlobalAvgPool: forward before backward");
        global_avg_pool_backward(grad, h, w)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "global_avg_pool".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_shapes() {
        let mut gap = GlobalAvgPool::new();
        let mut rng = Rng::new(0);
        let x = Tensor::ones([2, 3, 4, 4]);
        let y = gap.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert!((y.data()[0] - 1.0).abs() < 1e-6);
        let dx = gap.backward(&Tensor::ones([2, 3]));
        assert_eq!(dx.shape().dims(), &[2, 3, 4, 4]);
        assert!((dx.data()[0] - 1.0 / 16.0).abs() < 1e-6);
    }
}
