//! Batch normalization with pluggable cross-replica statistics (§3.4).
//!
//! At pod scale the per-core batch is tiny (e.g. 32), so normalizing with
//! purely local statistics hurts accuracy, while normalizing over the full
//! global batch costs an all-reduce per BN layer and over-normalizes.
//! Ying et al.'s scheme — adopted by the paper — computes moments over a
//! *subset* of replicas (the "BN group"). This layer abstracts where the
//! moments come from behind [`StatSync`]: the default [`LocalStats`] is a
//! no-op (single-replica semantics); the distributed trainer injects a
//! group all-reduce implementation from `ets-collective`.
//!
//! The backward pass reduces its two per-channel sums over the same group,
//! so gradients are exact for the synced forward.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use ets_tensor::ops::reduce::{bn_backward_sums, channel_affine, channel_sum, channel_sum_sq};
use ets_tensor::{Rng, Tensor};
use std::sync::Arc;

/// Source of batch-norm statistics: combines per-replica partial sums over
/// the replica group this layer normalizes across.
pub trait StatSync: Send + Sync {
    /// Reduces two per-channel partial-sum vectors (in place) across the BN
    /// group, and returns the *total* element count per channel given the
    /// local count. Called once in forward (sum, sum_sq) and once in
    /// backward (sum_g, sum_g_xhat).
    fn reduce_pair(&self, a: &mut [f32], b: &mut [f32], local_count: f32) -> f32;

    /// Number of replicas participating (1 for local).
    fn group_size(&self) -> usize;
}

/// Single-replica statistics: the identity reduction.
pub struct LocalStats;

impl StatSync for LocalStats {
    fn reduce_pair(&self, _a: &mut [f32], _b: &mut [f32], local_count: f32) -> f32 {
        local_count
    }
    fn group_size(&self) -> usize {
        1
    }
}

/// 2-D batch normalization over `(N, H, W)` per channel.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    /// Running mean/variance used in [`Mode::Eval`]; updated with the
    /// (group-synced) batch moments using TF momentum semantics.
    pub running_mean: Vec<f32>,
    pub running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    sync: Arc<dyn StatSync>,
    // Backward cache.
    cache: Option<BnCache>,
    label: String,
    channels: usize,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    count: f32,
}

/// TF EfficientNet defaults: momentum 0.99, epsilon 1e-3.
pub const BN_MOMENTUM: f32 = 0.99;
pub const BN_EPS: f32 = 1e-3;

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0 and local statistics.
    pub fn new(label: impl Into<String>, channels: usize) -> Self {
        Self::with_sync(label, channels, Arc::new(LocalStats))
    }

    /// Creates a batch-norm layer with an injected statistics reducer.
    pub fn with_sync(label: impl Into<String>, channels: usize, sync: Arc<dyn StatSync>) -> Self {
        let label = label.into();
        BatchNorm2d {
            gamma: Param::new(
                format!("{label}.gamma"),
                Tensor::ones([channels]),
                ParamKind::BnGamma,
            ),
            beta: Param::new(
                format!("{label}.beta"),
                Tensor::zeros([channels]),
                ParamKind::BnBeta,
            ),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: BN_MOMENTUM,
            eps: BN_EPS,
            sync,
            cache: None,
            label,
            channels,
        }
    }

    /// Replaces the statistics reducer (used when wiring distributed BN).
    pub fn set_sync(&mut self, sync: Arc<dyn StatSync>) {
        self.sync = sync;
    }

    /// Overrides momentum (tests use lower values to converge faster).
    pub fn set_momentum(&mut self, m: f32) {
        self.momentum = m;
    }

    /// The number of replicas whose samples this layer normalizes over.
    pub fn bn_group_size(&self) -> usize {
        self.sync.group_size()
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode, _rng: &mut Rng) -> Tensor {
        let c = self.channels;
        assert_eq!(x.shape().c(), c, "BatchNorm2d channel mismatch");
        match mode {
            Mode::Train => {
                let local_count = (x.shape().n() * x.shape().h() * x.shape().w()) as f32;
                let mut sums = channel_sum(x);
                let mut sum_sqs = channel_sum_sq(x);
                let count = self.sync.reduce_pair(&mut sums, &mut sum_sqs, local_count);
                let mut mean = vec![0.0f32; c];
                let mut inv_std = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for ch in 0..c {
                    mean[ch] = sums[ch] / count;
                    var[ch] = (sum_sqs[ch] / count - mean[ch] * mean[ch]).max(0.0);
                    inv_std[ch] = 1.0 / (var[ch] + self.eps).sqrt();
                }
                // Normalize, then affine.
                let zeros = vec![0.0f32; c];
                let xhat = channel_affine(x, &mean, &inv_std, &zeros);
                let scale: Vec<f32> = self.gamma.value.data().to_vec();
                let shift: Vec<f32> = self.beta.value.data().to_vec();
                let y = channel_affine(&xhat, &zeros, &scale, &shift);
                // Running stats (TF semantics: new = m·old + (1−m)·batch).
                for ch in 0..c {
                    self.running_mean[ch] =
                        self.momentum * self.running_mean[ch] + (1.0 - self.momentum) * mean[ch];
                    self.running_var[ch] =
                        self.momentum * self.running_var[ch] + (1.0 - self.momentum) * var[ch];
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std,
                    count,
                });
                y
            }
            Mode::Eval => {
                let scale: Vec<f32> = (0..c)
                    .map(|ch| {
                        self.gamma.value.data()[ch] / (self.running_var[ch] + self.eps).sqrt()
                    })
                    .collect();
                channel_affine(x, &self.running_mean, &scale, self.beta.value.data())
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let BnCache {
            xhat,
            inv_std,
            count,
        } = self
            .cache
            .take()
            .expect("BatchNorm2d: forward before backward");
        let c = self.channels;
        let (mut sum_g, mut sum_g_xhat) = bn_backward_sums(grad, &xhat);
        // dγ/dβ use the *local* contributions only — the gradient all-reduce
        // later sums them across replicas, exactly once.
        for ch in 0..c {
            self.gamma.grad.data_mut()[ch] += sum_g_xhat[ch];
            self.beta.grad.data_mut()[ch] += sum_g[ch];
        }
        // dx needs the group-wide means of g and g·x̂ (the BN group's
        // normalization set), so reduce the same pair across the group.
        let local_count = count / self.sync.group_size() as f32;
        let total = self
            .sync
            .reduce_pair(&mut sum_g, &mut sum_g_xhat, local_count);
        debug_assert!((total - count).abs() < 1.0, "count drift");
        let gamma = self.gamma.value.data();
        let mut dx = grad.clone();
        let plane = grad.shape().h() * grad.shape().w();
        let xh = xhat.data();
        let inv_count = 1.0 / count;
        for (i, chunk) in dx.data_mut().chunks_mut(plane).enumerate() {
            let ch = i % c;
            let a = gamma[ch] * inv_std[ch];
            let mg = sum_g[ch] * inv_count;
            let mgx = sum_g_xhat[ch] * inv_count;
            let base = i * plane;
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = a * (*v - mg - xh[base + k] * mgx);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_tensor::ops::reduce::channel_mean;

    fn rand_x(seed: u64, shape: &[usize]) -> Tensor {
        let mut rng = Rng::new(seed);
        let mut t = Tensor::zeros(shape);
        rng.fill_normal(t.data_mut(), 3.0, 2.0);
        t
    }

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new("bn", 4);
        let mut rng = Rng::new(0);
        let x = rand_x(1, &[8, 4, 6, 6]);
        let y = bn.forward(&x, Mode::Train, &mut rng);
        let m = channel_mean(&y);
        for (ch, mean) in m.iter().enumerate() {
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
        }
        // Variance ≈ 1 (eps slightly shrinks it).
        let ss = ets_tensor::ops::reduce::channel_sum_sq(&y);
        let count = (8 * 6 * 6) as f32;
        for (ch, sum_sq) in ss.iter().enumerate() {
            let v = sum_sq / count;
            assert!((v - 1.0).abs() < 0.05, "channel {ch} var {v}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 2);
        bn.set_momentum(0.0); // running = last batch stats
        let mut rng = Rng::new(0);
        let x = rand_x(2, &[16, 2, 4, 4]);
        let y_train = bn.forward(&x, Mode::Train, &mut rng);
        let _ = bn.backward(&Tensor::zeros(y_train.shape().dims()));
        let y_eval = bn.forward(&x, Mode::Eval, &mut rng);
        // With momentum 0 the running stats equal the batch stats, so eval
        // output matches train output closely (biased-vs-biased variance).
        assert!(y_train.max_abs_diff(&y_eval) < 1e-3);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Rng::new(0);
        let x = rand_x(3, &[3, 2, 3, 3]);
        let mut g = Tensor::zeros(x.shape().dims());
        let mut grng = Rng::new(4);
        grng.fill_uniform(g.data_mut(), -1.0, 1.0);

        let mut bn = BatchNorm2d::new("bn", 2);
        // Nontrivial affine params.
        bn.gamma.value.data_mut().copy_from_slice(&[1.3, 0.7]);
        bn.beta.value.data_mut().copy_from_slice(&[0.2, -0.1]);

        let _y = bn.forward(&x, Mode::Train, &mut rng);
        let dx = bn.backward(&g);

        let loss = |x: &Tensor| -> f64 {
            let mut bn2 = BatchNorm2d::new("bn", 2);
            bn2.gamma.value.data_mut().copy_from_slice(&[1.3, 0.7]);
            bn2.beta.value.data_mut().copy_from_slice(&[0.2, -0.1]);
            let mut r = Rng::new(0);
            let y = bn2.forward(x, Mode::Train, &mut r);
            y.data()
                .iter()
                .zip(g.data())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 7, 19, 35, x.numel() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&xp) - loss(&xm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{i}] numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gamma_beta_grads() {
        let mut rng = Rng::new(0);
        let x = rand_x(5, &[4, 3, 2, 2]);
        let mut bn = BatchNorm2d::new("bn", 3);
        let y = bn.forward(&x, Mode::Train, &mut rng);
        let g = Tensor::ones(y.shape().dims());
        let _ = bn.backward(&g);
        // dβ = Σg = count per channel.
        let count = (4 * 2 * 2) as f32;
        for ch in 0..3 {
            assert!((bn.beta.grad.data()[ch] - count).abs() < 1e-3);
        }
        // dγ = Σ g·x̂ ≈ Σ x̂ ≈ 0 for uniform upstream.
        for ch in 0..3 {
            assert!(bn.gamma.grad.data()[ch].abs() < 1e-2);
        }
    }

    /// A fake 2-replica sync that doubles sums (both replicas see identical
    /// data), verifying the sync plumbing changes moments & counts.
    struct FakePairSync;
    impl StatSync for FakePairSync {
        fn reduce_pair(&self, a: &mut [f32], b: &mut [f32], local_count: f32) -> f32 {
            a.iter_mut().for_each(|v| *v *= 2.0);
            b.iter_mut().for_each(|v| *v *= 2.0);
            local_count * 2.0
        }
        fn group_size(&self) -> usize {
            2
        }
    }

    #[test]
    fn synced_stats_equal_local_for_identical_replicas() {
        let x = rand_x(6, &[4, 2, 3, 3]);
        let mut rng = Rng::new(0);
        let mut local = BatchNorm2d::new("l", 2);
        let mut synced = BatchNorm2d::with_sync("s", 2, Arc::new(FakePairSync));
        let yl = local.forward(&x, Mode::Train, &mut rng);
        let ys = synced.forward(&x, Mode::Train, &mut rng);
        // Two identical replicas have the same moments as one.
        assert!(yl.max_abs_diff(&ys) < 1e-5);
        // And the backward pass agrees too.
        let g = rand_x(7, &[4, 2, 3, 3]);
        let dl = local.backward(&g);
        let ds = synced.backward(&g);
        assert!(dl.max_abs_diff(&ds) < 1e-5);
    }
}
