//! Softmax cross-entropy with label smoothing.
//!
//! EfficientNet trains with label smoothing 0.1; the loss returns both the
//! scalar (mean over the batch) and the gradient w.r.t. the logits, since
//! softmax+CE fuse into the famously simple `softmax(z) − target`.

use ets_tensor::Tensor;

/// Numerically-stable row softmax of an `N×C` logits tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().rank(), 2, "softmax expects N×C");
    let c = logits.shape().dim(1);
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(c) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        row.iter_mut().for_each(|v| *v *= inv);
    }
    out
}

/// Result of a cross-entropy evaluation.
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits (already divided by batch size).
    pub dlogits: Tensor,
    /// Softmax probabilities (reused by metrics).
    pub probs: Tensor,
}

/// Mean softmax cross-entropy with label smoothing `eps`.
///
/// Targets: `t = (1−eps)·onehot(label) + eps/C`. Gradient per row:
/// `(softmax(z) − t) / N`.
pub fn cross_entropy(logits: &Tensor, labels: &[usize], eps: f32) -> LossOutput {
    let n = logits.shape().dim(0);
    let c = logits.shape().dim(1);
    assert_eq!(labels.len(), n, "label count mismatch");
    assert!((0.0..1.0).contains(&eps), "smoothing must be in [0,1)");
    let probs = softmax(logits);
    let mut dlogits = probs.clone();
    let off = eps / c as f32;
    let on = 1.0 - eps + off;
    let mut total = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for (i, row) in dlogits.data_mut().chunks_mut(c).enumerate() {
        let label = labels[i];
        assert!(label < c, "label {label} out of range for {c} classes");
        // loss = −Σ t_j · log p_j ; accumulate then form gradient in place.
        let mut row_loss = 0.0f64;
        for (j, v) in row.iter_mut().enumerate() {
            let p = *v;
            let t = if j == label { on } else { off };
            row_loss -= t as f64 * (p.max(1e-12) as f64).ln();
            *v = (p - t) * inv_n;
        }
        total += row_loss;
    }
    LossOutput {
        loss: (total / n as f64) as f32,
        dlogits,
        probs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_tensor::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(1);
        let mut logits = Tensor::zeros([4, 10]);
        rng.fill_uniform(logits.data_mut(), -5.0, 5.0);
        let p = softmax(&logits);
        for row in p.data().chunks(10) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([1, 3], vec![1001.0, 1002.0, 1003.0]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        assert!(pa.max_abs_diff(&pb) < 1e-6);
        assert!(!pb.has_non_finite());
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec([1, 3], vec![20.0, 0.0, 0.0]);
        let out = cross_entropy(&logits, &[0], 0.0);
        assert!(out.loss < 1e-3, "loss {}", out.loss);
    }

    #[test]
    fn uniform_prediction_loss_is_log_c() {
        let logits = Tensor::zeros([2, 10]);
        let out = cross_entropy(&logits, &[3, 7], 0.0);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = Rng::new(2);
        let mut logits = Tensor::zeros([3, 5]);
        rng.fill_uniform(logits.data_mut(), -2.0, 2.0);
        let labels = [1usize, 4, 0];
        let eps = 0.1;
        let out = cross_entropy(&logits, &labels, eps);
        let h = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += h;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= h;
            let up = cross_entropy(&lp, &labels, eps).loss;
            let down = cross_entropy(&lm, &labels, eps).loss;
            let num = (up - down) / (2.0 * h);
            let ana = out.dlogits.data()[i];
            assert!(
                (num - ana).abs() < 1e-3 * (1.0 + num.abs()),
                "idx {i}: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn smoothing_raises_floor() {
        // With smoothing, even a perfect prediction keeps positive loss.
        let logits = Tensor::from_vec([1, 4], vec![30.0, 0.0, 0.0, 0.0]);
        let sharp = cross_entropy(&logits, &[0], 0.0).loss;
        let smooth = cross_entropy(&logits, &[0], 0.1).loss;
        assert!(smooth > sharp + 0.1);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Rng::new(3);
        let mut logits = Tensor::zeros([2, 6]);
        rng.fill_uniform(logits.data_mut(), -1.0, 1.0);
        let out = cross_entropy(&logits, &[2, 5], 0.1);
        for row in out.dlogits.data().chunks(6) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6, "softmax−target rows sum to 0, got {s}");
        }
    }
}
