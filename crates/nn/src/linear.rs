//! Fully-connected layer (`y = x·Wᵀ + b`).
//!
//! Used by EfficientNet's classification head and the squeeze-and-excite
//! bottleneck (whose 1×1 convs on a 1×1 spatial map are exactly dense
//! layers, which is how we implement them).
//!
//! All three GEMMs (forward `x·Wᵀ`, weight gradient `gradᵀ·x`, input
//! gradient `grad·W`) route through the shape-pure `gemm_auto`
//! dispatcher, so head-sized products take the blocked packed kernels
//! while SE-bottleneck-sized ones keep the naive streaming path. A
//! [`GemmPolicy`] (see [`Linear::with_precision`]) additionally selects
//! the pack-time element type per shape: under the mixed policy, GEMMs
//! past the MAC gate store their panels as bf16 and accumulate in f32,
//! while bottleneck-sized ones stay f32 — the same pure
//! shape-plus-config rule the kernel dispatch uses.

use crate::layer::{Layer, Mode};
use crate::param::{Param, ParamKind};
use ets_tensor::ops::dispatch::{gemm_auto_a_bt_p, gemm_auto_at_b_acc_p, gemm_auto_p, GemmPolicy};
use ets_tensor::{init, Rng, Tensor};

/// Dense layer with weight stored `[out, in]` and optional bias.
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    cache_x: Option<Tensor>,
    label: String,
    in_dim: usize,
    out_dim: usize,
    policy: GemmPolicy,
}

impl Linear {
    /// Creates a dense layer with uniform ±sqrt(1/fan_in) init and a zero
    /// bias (when `with_bias`). Pure-f32 GEMMs; see
    /// [`Linear::with_precision`] for the mixed-precision variant.
    pub fn new(
        label: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        with_bias: bool,
        rng: &mut Rng,
    ) -> Self {
        Self::with_precision(label, in_dim, out_dim, with_bias, GemmPolicy::F32_ONLY, rng)
    }

    /// Creates a dense layer whose GEMMs narrow their packed panels to
    /// bf16 when `policy` is mixed and the product clears the MAC gate
    /// (accumulation always stays f32).
    pub fn with_precision(
        label: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        with_bias: bool,
        policy: GemmPolicy,
        rng: &mut Rng,
    ) -> Self {
        let label = label.into();
        let w = init::dense_weight(rng, out_dim, in_dim);
        let bias = with_bias.then(|| {
            Param::new(
                format!("{label}.b"),
                Tensor::zeros([out_dim]),
                ParamKind::Bias,
            )
        });
        Linear {
            weight: Param::new(format!("{label}.w"), w, ParamKind::Weight),
            bias,
            cache_x: None,
            label,
            in_dim,
            out_dim,
            policy,
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _m: Mode, _r: &mut Rng) -> Tensor {
        assert_eq!(
            x.shape().rank(),
            2,
            "Linear expects N×in, got {}",
            x.shape()
        );
        let n = x.shape().dim(0);
        assert_eq!(x.shape().dim(1), self.in_dim, "Linear in_dim mismatch");
        let mut y = Tensor::zeros([n, self.out_dim]);
        // All three GEMMs of this layer share one MAC volume
        // (N·in·out), so one policy evaluation covers forward and both
        // backward products consistently.
        let prec = self.policy.precision(n, self.in_dim, self.out_dim);
        // y = x (N×in) · Wᵀ — W stored out×in, so this is gemm_a_bt.
        gemm_auto_a_bt_p(
            prec,
            n,
            self.in_dim,
            self.out_dim,
            x.data(),
            self.weight.value.data(),
            y.data_mut(),
        );
        if let Some(b) = &self.bias {
            let bs = b.value.data();
            for row in y.data_mut().chunks_mut(self.out_dim) {
                for (v, &bv) in row.iter_mut().zip(bs) {
                    *v += bv;
                }
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Linear: forward before backward");
        let n = x.shape().dim(0);
        assert_eq!(grad.shape().dims(), &[n, self.out_dim], "Linear grad shape");
        let prec = self.policy.precision(n, self.in_dim, self.out_dim);
        // dW (out×in) += gradᵀ (out×N) · x (N×in)
        gemm_auto_at_b_acc_p(
            prec,
            self.out_dim,
            n,
            self.in_dim,
            grad.data(),
            x.data(),
            self.weight.grad.data_mut(),
        );
        if let Some(b) = &mut self.bias {
            let db = b.grad.data_mut();
            for row in grad.data().chunks(self.out_dim) {
                for (d, &g) in db.iter_mut().zip(row) {
                    *d += g;
                }
            }
        }
        // dx (N×in) = grad (N×out) · W (out×in)
        let mut dx = Tensor::zeros([n, self.in_dim]);
        gemm_auto_p(
            prec,
            n,
            self.out_dim,
            self.in_dim,
            grad.data(),
            self.weight.value.data(),
            dx.data_mut(),
        );
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = Rng::new(1);
        let mut lin = Linear::new("fc", 3, 2, true, &mut rng);
        lin.weight.value = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        if let Some(b) = &mut lin.bias {
            b.value = Tensor::from_vec([2], vec![0.5, -0.5]);
        }
        let x = Tensor::from_vec([1, 3], vec![1.0, 0.0, -1.0]);
        let y = lin.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.data(), &[1.0 - 3.0 + 0.5, 4.0 - 6.0 - 0.5]);
    }

    #[test]
    fn backward_finite_difference() {
        let mut rng = Rng::new(2);
        let mut lin = Linear::new("fc", 4, 3, true, &mut rng);
        let mut x = Tensor::zeros([2, 4]);
        rng.fill_uniform(x.data_mut(), -1.0, 1.0);
        let mut g = Tensor::zeros([2, 3]);
        rng.fill_uniform(g.data_mut(), -1.0, 1.0);

        let _y = lin.forward(&x, Mode::Train, &mut rng);
        let dx = lin.backward(&g);

        let w0 = lin.weight.value.clone();
        let loss = |lin: &mut Linear, x: &Tensor| -> f64 {
            let mut r = Rng::new(0);
            let y = lin.forward(x, Mode::Train, &mut r);
            lin.cache_x = None;
            y.data()
                .iter()
                .zip(g.data())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        let eps = 1e-3f32;
        // Check dx.
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&mut lin, &xp) - loss(&mut lin, &xm)) / (2.0 * eps as f64)) as f32;
            assert!((num - dx.data()[i]).abs() < 1e-2 * (1.0 + num.abs()));
        }
        // Check dW on a sample.
        for &i in &[0usize, 5, 11] {
            let mut lp = Linear::new("fc", 4, 3, true, &mut Rng::new(2));
            lp.weight.value = w0.clone();
            lp.weight.value.data_mut()[i] += eps;
            let up = loss(&mut lp, &x);
            lp.weight.value.data_mut()[i] -= 2.0 * eps;
            let down = loss(&mut lp, &x);
            let num = ((up - down) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - lin.weight.grad.data()[i]).abs() < 1e-2 * (1.0 + num.abs()),
                "dW[{i}]"
            );
        }
        // dBias is column sums of g.
        let bias_grad: Vec<f32> = {
            let mut v = vec![0.0; 3];
            for row in g.data().chunks(3) {
                for (d, &x) in v.iter_mut().zip(row) {
                    *d += x;
                }
            }
            v
        };
        lin.visit_params(&mut |p| {
            if p.name.ends_with(".b") {
                for (a, b) in p.grad.data().iter().zip(&bias_grad) {
                    assert!((a - b).abs() < 1e-5);
                }
            }
        });
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = Rng::new(3);
        let mut lin = Linear::new("fc", 2, 2, false, &mut rng);
        let mut count = 0;
        lin.visit_params(&mut |_| count += 1);
        assert_eq!(count, 1);
    }
}
