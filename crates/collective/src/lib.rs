//! # ets-collective
//!
//! Communication substrate for the EfficientNet-at-scale reproduction:
//!
//! - [`topology`] — TPU-v3 pod slices as 2-D chip tori (§2).
//! - [`group`] — BN replica grouping: contiguous and 2-D tiled (§3.4).
//! - [`comm`] — real shared-memory collectives for in-process replica
//!   threads, with deterministic ascending-rank reduction order.
//! - [`ring`] — a real ring all-reduce over point-to-point channels,
//!   validating the algorithm the cost model prices.
//! - [`cost`] — α–β cost models for ring and 2-D torus all-reduce, used by
//!   the pod simulator for Table 1's all-reduce percentages.

pub mod comm;
pub mod cost;
pub mod group;
pub mod hierarchical;
pub mod ring;
pub mod topology;

pub use comm::CommHandle;
pub use cost::{
    bn_sync_time, gradient_bytes, ring_all_reduce_time, torus_all_reduce_time, LinkSpec,
    TPU_V3_LINK,
};
pub use group::{bn_batch_size, GroupSpec};
pub use hierarchical::{create_grid, GridMember};
pub use ring::{create_ring, RingMember};
pub use topology::{SliceShape, CORES_PER_CHIP};
