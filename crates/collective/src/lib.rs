//! # ets-collective
//!
//! Communication substrate for the EfficientNet-at-scale reproduction:
//!
//! - [`topology`] — TPU-v3 pod slices as 2-D chip tori (§2).
//! - [`group`] — BN replica grouping: contiguous and 2-D tiled (§3.4).
//! - [`backend`] — the [`Collective`] trait every consumer programs
//!   against, with tree / ring / torus2d / auto backends selected per
//!   experiment, all bitwise-identical via the canonical grid-blocked
//!   fold.
//! - [`comm`] — real shared-memory collectives for in-process replica
//!   threads, with deterministic reduction order (the tree and torus
//!   backends' engine).
//! - [`hierarchical`] — the 2-D row/column exchange the torus2d backend
//!   runs: row reduce-scatter, column all-reduce, row all-gather.
//! - [`ring`] — a real ring all-reduce over point-to-point channels,
//!   validating the algorithm the cost model prices.
//! - [`cost`] — α–β cost models for tree, ring, and 2-D torus/grid
//!   all-reduce; their comparison drives the auto backend.

pub mod backend;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod group;
pub mod hierarchical;
pub mod ring;
pub mod topology;

pub use backend::{
    create_collective, create_ring_collectives, create_torus_collectives, AutoCollective, Backend,
    Collective, CollectiveStats, RingCollective, Torus2dCollective, TreeCollective,
};
pub use comm::{shard_bounds, CommHandle};
pub use cost::{
    auto_backend_choice, bn_sync_time, gradient_bytes, grid_all_reduce_time, ring_all_reduce_time,
    torus_all_reduce_time, tree_all_reduce_time, tree_ring_crossover_bytes, LinkSpec, TPU_V3_LINK,
};
pub use fault::{
    retry_collective, CollectiveError, FaultEvent, FaultKind, FaultPlan, FaultSchedule,
    FaultyCollective, RetryOutcome, RetryPolicy,
};
pub use group::{bn_batch_size, bn_partition, GroupSpec};
pub use hierarchical::{create_grid, GridMember};
pub use ring::{create_ring, RingMember};
pub use topology::{canonical_grid, SliceShape, CORES_PER_CHIP};
