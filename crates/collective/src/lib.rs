//! # ets-collective
//!
//! Communication substrate for the EfficientNet-at-scale reproduction:
//!
//! - [`topology`] — TPU-v3 pod slices as 2-D chip tori (§2).
//! - [`group`] — BN replica grouping: contiguous and 2-D tiled (§3.4).
//! - [`backend`] — the [`Collective`] trait every consumer programs
//!   against, with tree / ring / auto backends selected per experiment.
//! - [`comm`] — real shared-memory collectives for in-process replica
//!   threads, with deterministic ascending-rank reduction order (the
//!   tree backend's engine).
//! - [`ring`] — a real ring all-reduce over point-to-point channels,
//!   validating the algorithm the cost model prices.
//! - [`cost`] — α–β cost models for tree, ring, and 2-D torus
//!   all-reduce; the tree/ring crossover drives the auto backend.

pub mod backend;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod group;
pub mod hierarchical;
pub mod ring;
pub mod topology;

pub use backend::{
    create_collective, create_ring_collectives, AutoCollective, Backend, Collective,
    CollectiveStats, RingCollective, TreeCollective,
};
pub use comm::CommHandle;
pub use cost::{
    bn_sync_time, gradient_bytes, ring_all_reduce_time, torus_all_reduce_time,
    tree_all_reduce_time, tree_ring_crossover_bytes, LinkSpec, TPU_V3_LINK,
};
pub use fault::{
    retry_collective, CollectiveError, FaultEvent, FaultKind, FaultPlan, FaultSchedule,
    FaultyCollective, RetryOutcome, RetryPolicy,
};
pub use group::{bn_batch_size, bn_partition, GroupSpec};
pub use hierarchical::{create_grid, GridMember};
pub use ring::{create_ring, RingMember};
pub use topology::{SliceShape, CORES_PER_CHIP};
