//! Analytic cost models for collectives on the TPU-v3 interconnect (ICI).
//!
//! These are the models the pod simulator uses to produce Table 1's
//! "percent of time spent on all-reduce" column. They follow the standard
//! α–β formulation: a per-step latency term α and a bandwidth term β =
//! bytes/link-bandwidth.
//!
//! - **Ring** over `p` members: `2·(p−1)·α + 2·(p−1)/p · n/B`.
//! - **2-D torus** (what the pod actually runs): ring reduce-scatter along
//!   rows, ring all-reduce along columns on `1/cols` of the data, then
//!   all-gather along rows. With bidirectional links both row phases
//!   stream concurrently in two directions, which the effective bandwidth
//!   term absorbs.

use crate::topology::SliceShape;
use serde::{Deserialize, Serialize};

/// Interconnect parameters for one link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Per-direction link bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Per-hop latency, seconds.
    pub latency: f64,
    /// Number of usable directions per link pair (2 for a bidirectional
    /// torus ring).
    pub duplex: f64,
}

/// TPU-v3 ICI: ~70 GB/s per link per direction, ~1 µs per hop.
pub const TPU_V3_LINK: LinkSpec = LinkSpec {
    bandwidth: 70.0e9,
    latency: 1.0e-6,
    duplex: 2.0,
};

/// Time for a ring all-reduce of `bytes` over `p` members.
pub fn ring_all_reduce_time(bytes: f64, p: usize, link: LinkSpec) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let pf = p as f64;
    let steps = 2.0 * (pf - 1.0);
    let transfer = 2.0 * (pf - 1.0) / pf * bytes / (link.bandwidth * link.duplex);
    steps * link.latency + transfer
}

/// Time for a binomial-tree all-reduce (reduce tree + broadcast tree) of
/// `bytes` over `p` members: `2·⌈log₂ p⌉` steps, each moving the full
/// payload. Latency-friendly (log p hops vs the ring's 2(p−1)) but
/// bandwidth-hungry (full payload per step vs the ring's `(p−1)/p · n/p`
/// chunks) — this is the model for the publish-all tree communicator in
/// [`crate::comm`].
pub fn tree_all_reduce_time(bytes: f64, p: usize, link: LinkSpec) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let steps = 2.0 * (p as f64).log2().ceil();
    steps * (link.latency + bytes / (link.bandwidth * link.duplex))
}

/// Payload size (bytes) at which the ring all-reduce becomes cheaper than
/// the tree for `p` members — the `Auto` backend's switch point.
///
/// Closed form from equating the two α–β models with `L = ⌈log₂ p⌉`:
/// `b* = α·B·(2(p−1) − 2L) / (2L − 2(p−1)/p)`. Below `b*` the tree's
/// `2L` latency hops win; above it the ring's `2(p−1)/p` bandwidth factor
/// wins. Depends only on `(p, link)`, so every rank computes the same
/// crossover and the group never splits across transports.
pub fn tree_ring_crossover_bytes(p: usize, link: LinkSpec) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let pf = p as f64;
    let l = pf.log2().ceil();
    let latency_gap = 2.0 * (pf - 1.0) - 2.0 * l;
    let bandwidth_gap = 2.0 * l - 2.0 * (pf - 1.0) / pf;
    link.latency * link.bandwidth * link.duplex * latency_gap / bandwidth_gap
}

/// Time for the 2-phase 2-D torus all-reduce of `bytes` on `slice`.
///
/// Phase A: reduce-scatter along each row ring (`cols` members, full
/// payload). Phase B: all-reduce along each column ring (`rows` members,
/// `1/cols` of the payload). Phase C: all-gather along rows (mirror of A).
pub fn torus_all_reduce_time(bytes: f64, slice: SliceShape, link: LinkSpec) -> f64 {
    let (r, c) = (slice.rows as f64, slice.cols as f64);
    if slice.chips() <= 1 {
        return 0.0;
    }
    let bw = link.bandwidth * link.duplex;
    // Row reduce-scatter + row all-gather: each moves (c−1)/c · bytes.
    let row_phases = 2.0 * ((c - 1.0) / c) * bytes / bw + 2.0 * (c - 1.0) * link.latency;
    // Column all-reduce on bytes/cols.
    let col_phase = if slice.rows > 1 {
        2.0 * ((r - 1.0) / r) * (bytes / c) / bw + 2.0 * (r - 1.0) * link.latency
    } else {
        0.0
    };
    row_phases + col_phase
}

/// Time for the 2-D grid all-reduce of `bytes` over a `rows × cols`
/// **member** grid — the model for the `Torus2d` backend, which routes
/// over [`crate::topology::canonical_grid`] of the world size rather
/// than the chip slice. Same three phases as
/// [`torus_all_reduce_time`]; both paths price one formula, so the
/// analytic tables and the executed backend agree.
pub fn grid_all_reduce_time(bytes: f64, rows: usize, cols: usize, link: LinkSpec) -> f64 {
    torus_all_reduce_time(bytes, SliceShape { rows, cols }, link)
}

/// The backend `Auto` settles on for a payload of `bytes` over `p`
/// members: the cheapest of tree, flat ring, and (when the canonical
/// grid has more than one row) the 2-D torus. Pure in `(bytes, p,
/// link)`, so every rank picks the same transport. Ties resolve
/// tree → torus2d → ring (prefer fewer latency hops).
pub fn auto_backend_choice(bytes: f64, p: usize, link: LinkSpec) -> crate::backend::Backend {
    use crate::backend::Backend;
    if p <= 1 {
        return Backend::Tree;
    }
    let (rows, cols) = crate::topology::canonical_grid(p);
    let t_tree = tree_all_reduce_time(bytes, p, link);
    let t_ring = ring_all_reduce_time(bytes, p, link);
    let t_grid = if rows > 1 {
        grid_all_reduce_time(bytes, rows, cols, link)
    } else {
        f64::INFINITY
    };
    if t_tree <= t_ring && t_tree <= t_grid {
        Backend::Tree
    } else if t_grid <= t_ring {
        Backend::Torus2d
    } else {
        Backend::Ring
    }
}

/// Bytes in an f32 gradient all-reduce for a model with `params` scalars.
pub fn gradient_bytes(params: u64) -> f64 {
    params as f64 * 4.0
}

/// Time to reduce batch-norm statistics for one BN layer across a group of
/// `group_size` replicas: two vectors of `channels` f32s (sum, sum-sq) in
/// the forward pass and two more in backward.
pub fn bn_sync_time(channels: usize, group_size: usize, link: LinkSpec) -> f64 {
    if group_size <= 1 {
        return 0.0;
    }
    // Two rounds (fwd + bwd), each all-reducing 2·channels f32.
    2.0 * ring_all_reduce_time((2 * channels * 4) as f64, group_size, link)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_time_scales_with_bytes() {
        // Large payloads are bandwidth-bound: time ∝ bytes.
        let t1 = ring_all_reduce_time(1e8, 8, TPU_V3_LINK);
        let t2 = ring_all_reduce_time(2e8, 8, TPU_V3_LINK);
        assert!(t2 > t1 * 1.9 && t2 < t1 * 2.1);
        // Tiny payloads are latency-bound: doubling bytes barely matters.
        let s1 = ring_all_reduce_time(1e3, 8, TPU_V3_LINK);
        let s2 = ring_all_reduce_time(2e3, 8, TPU_V3_LINK);
        assert!(s2 < s1 * 1.1);
    }

    #[test]
    fn ring_bandwidth_term_saturates_with_p() {
        // (p−1)/p → 1: doubling members at fixed bytes must not double time.
        let small = ring_all_reduce_time(1e8, 8, TPU_V3_LINK);
        let large = ring_all_reduce_time(1e8, 64, TPU_V3_LINK);
        assert!(large < small * 1.3, "bandwidth-optimal: {small} vs {large}");
        assert!(large > small, "latency term still grows");
    }

    #[test]
    fn singleton_is_free() {
        assert_eq!(ring_all_reduce_time(1e9, 1, TPU_V3_LINK), 0.0);
        assert_eq!(tree_all_reduce_time(1e9, 1, TPU_V3_LINK), 0.0);
        let s = SliceShape { rows: 1, cols: 1 };
        assert_eq!(torus_all_reduce_time(1e9, s, TPU_V3_LINK), 0.0);
    }

    #[test]
    fn crossover_separates_tree_and_ring_regimes() {
        for &p in &[4usize, 8, 16, 64] {
            let b = tree_ring_crossover_bytes(p, TPU_V3_LINK);
            assert!(b > 0.0, "p={p}: crossover {b}");
            let below = b * 0.5;
            let above = b * 2.0;
            assert!(
                tree_all_reduce_time(below, p, TPU_V3_LINK)
                    <= ring_all_reduce_time(below, p, TPU_V3_LINK),
                "p={p}: tree should win below the crossover"
            );
            assert!(
                ring_all_reduce_time(above, p, TPU_V3_LINK)
                    <= tree_all_reduce_time(above, p, TPU_V3_LINK),
                "p={p}: ring should win above the crossover"
            );
        }
    }

    #[test]
    fn crossover_grows_with_world_size() {
        // More members ⇒ more ring latency hops ⇒ the tree stays
        // competitive up to larger payloads.
        let small = tree_ring_crossover_bytes(8, TPU_V3_LINK);
        let large = tree_ring_crossover_bytes(64, TPU_V3_LINK);
        assert!(large > small, "{small} vs {large}");
    }

    #[test]
    fn torus_beats_flat_ring_at_scale() {
        // The 2-D algorithm's latency grows with rows+cols instead of
        // rows·cols — the reason pods don't run one global ring.
        let slice = SliceShape::for_cores(1024); // 16×32 chips
        let torus = torus_all_reduce_time(1e6, slice, TPU_V3_LINK);
        let ring = ring_all_reduce_time(1e6, slice.chips(), TPU_V3_LINK);
        assert!(torus < ring, "torus {torus} vs ring {ring}");
    }

    #[test]
    fn torus_time_roughly_constant_across_slices() {
        // Table 1 shows step time ~constant as cores scale (all-reduce
        // share stays 1–3%): for a fixed model, the bandwidth term is
        // already saturated at 128 cores, so time grows only via latency.
        let b2_bytes = gradient_bytes(9_110_000);
        let t128 = torus_all_reduce_time(b2_bytes, SliceShape::for_cores(128), TPU_V3_LINK);
        let t1024 = torus_all_reduce_time(b2_bytes, SliceShape::for_cores(1024), TPU_V3_LINK);
        assert!(t1024 / t128 < 1.6, "ratio {}", t1024 / t128);
    }

    #[test]
    fn grid_time_never_exceeds_flat_ring_on_composite_worlds() {
        // The 2-D grid moves the same 2(p−1)/p bytes but takes
        // 2(cols−1)+2(rows−1) latency hops instead of 2(p−1): whenever
        // the canonical grid has more than one row the torus wins or
        // ties, which is why `auto_backend_choice` prefers it at scale.
        use crate::topology::canonical_grid;
        for p in [4usize, 8, 16, 64, 1024, 2048, 4096] {
            let (rows, cols) = canonical_grid(p);
            assert!(rows > 1, "p={p} should be composite here");
            for bytes in [1e3, 1e6, 1e8] {
                let grid = grid_all_reduce_time(bytes, rows, cols, TPU_V3_LINK);
                let ring = ring_all_reduce_time(bytes, p, TPU_V3_LINK);
                assert!(
                    grid <= ring,
                    "p={p} bytes={bytes}: grid {grid} vs ring {ring}"
                );
            }
        }
    }

    #[test]
    fn auto_choice_is_tree_small_torus_large_ring_prime() {
        use crate::backend::Backend;
        // Tiny payload: latency-bound, the tree's 2·log₂p hops win.
        assert_eq!(auto_backend_choice(4.0, 1024, TPU_V3_LINK), Backend::Tree);
        // Large payload on a composite world: the grid's bandwidth factor
        // with few hops wins.
        assert_eq!(
            auto_backend_choice(1e8, 1024, TPU_V3_LINK),
            Backend::Torus2d
        );
        // Large payload on a prime world: no grid, the flat ring wins.
        assert_eq!(auto_backend_choice(1e8, 7, TPU_V3_LINK), Backend::Ring);
        assert_eq!(auto_backend_choice(1e9, 1, TPU_V3_LINK), Backend::Tree);
    }

    #[test]
    fn bn_sync_cheap_relative_to_gradients() {
        let grads = torus_all_reduce_time(
            gradient_bytes(30_000_000),
            SliceShape::for_cores(1024),
            TPU_V3_LINK,
        );
        let bn = bn_sync_time(512, 16, TPU_V3_LINK);
        assert!(bn < grads, "bn {bn} vs grads {grads}");
    }
}
