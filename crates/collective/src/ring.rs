//! Ring all-reduce: the bandwidth-optimal algorithm TPU pods (and NCCL)
//! use, implemented for real over point-to-point channels.
//!
//! Each of `p` members holds a buffer of `n` elements split into `p`
//! chunks. Phase 1 (reduce-scatter): in step `s`, member `r` sends chunk
//! `(r − s) mod p` to its right neighbor and accumulates the chunk arriving
//! from the left; after `p−1` steps each member owns one fully-reduced
//! chunk. Phase 2 (all-gather): the owned chunks circulate for another
//! `p−1` steps. Total bytes moved per member: `2·(p−1)/p · n` — the factor
//! the cost model in [`crate::cost`] uses.
//!
//! The deterministic-order caveat: ring reduction order differs per chunk,
//! so results can differ from the tree all-reduce in the last ulp. The
//! trainer uses the tree ([`crate::comm`]) for bitwise determinism; this
//! implementation exists to validate the algorithm and its cost model.

use crossbeam::channel::{bounded, Receiver, Sender};

/// One member's endpoints in the ring.
pub struct RingMember {
    rank: usize,
    size: usize,
    to_right: Sender<Vec<f32>>,
    from_left: Receiver<Vec<f32>>,
}

/// Creates a ring of `p` members.
pub fn create_ring(p: usize) -> Vec<RingMember> {
    assert!(p >= 1);
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = bounded::<Vec<f32>>(2);
        senders.push(tx);
        receivers.push(rx);
    }
    // Member r sends to (r+1) % p, so its sender is channel (r+1) % p and
    // its receiver is channel r (fed by member r−1).
    let mut members: Vec<RingMember> = Vec::with_capacity(p);
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = receivers.into_iter().map(Some).collect();
    for r in 0..p {
        members.push(RingMember {
            rank: r,
            size: p,
            to_right: senders[(r + 1) % p].clone(),
            from_left: receivers[r].take().unwrap(),
        });
    }
    members
}

impl RingMember {
    /// This member's ring position.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ring size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Chunk boundaries: chunk `c` covers `bounds(c).0 .. bounds(c).1`.
    fn bounds(&self, chunk: usize, n: usize) -> (usize, usize) {
        let p = self.size;
        let base = n / p;
        let rem = n % p;
        // First `rem` chunks get one extra element.
        let start = chunk * base + chunk.min(rem);
        let len = base + usize::from(chunk < rem);
        (start, start + len)
    }

    /// Bytes a member sends during a full all-reduce of `n` f32 elements
    /// (both phases) — used to validate the analytic model.
    pub fn bytes_sent(&self, n: usize) -> usize {
        if self.size == 1 {
            return 0;
        }
        // 2·(p−1) steps, each sending ~n/p elements of 4 bytes.
        let p = self.size;
        let mut total = 0;
        for s in 0..p - 1 {
            let chunk = (self.rank + p - s) % p;
            let (a, b) = self.bounds(chunk, n);
            total += (b - a) * 4;
        }
        for s in 0..p - 1 {
            let chunk = (self.rank + 1 + p - s) % p;
            let (a, b) = self.bounds(chunk, n);
            total += (b - a) * 4;
        }
        total
    }

    /// Runs the ring all-reduce (sum) in place. All `p` members must call
    /// this concurrently with equal-length buffers.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let n = buf.len();
        // Phase 1: reduce-scatter.
        for s in 0..p - 1 {
            let send_chunk = (self.rank + p - s) % p;
            let (sa, sb) = self.bounds(send_chunk, n);
            self.to_right
                .send(buf[sa..sb].to_vec())
                .expect("ring peer hung up");
            let incoming = self.from_left.recv().expect("ring peer hung up");
            let recv_chunk = (self.rank + p - s - 1) % p;
            let (ra, rb) = self.bounds(recv_chunk, n);
            debug_assert_eq!(incoming.len(), rb - ra);
            for (dst, &src) in buf[ra..rb].iter_mut().zip(&incoming) {
                *dst += src;
            }
        }
        // Phase 2: all-gather of the reduced chunks.
        for s in 0..p - 1 {
            let send_chunk = (self.rank + 1 + p - s) % p;
            let (sa, sb) = self.bounds(send_chunk, n);
            self.to_right
                .send(buf[sa..sb].to_vec())
                .expect("ring peer hung up");
            let incoming = self.from_left.recv().expect("ring peer hung up");
            let recv_chunk = (self.rank + p - s) % p;
            let (ra, rb) = self.bounds(recv_chunk, n);
            buf[ra..rb].copy_from_slice(&incoming);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_ring(
        p: usize,
        n: usize,
        seed_fn: impl Fn(usize) -> Vec<f32> + Send + Sync + Clone + 'static,
    ) -> Vec<Vec<f32>> {
        let members = create_ring(p);
        let joins: Vec<_> = members
            .into_iter()
            .map(|m| {
                let sf = seed_fn.clone();
                thread::spawn(move || {
                    let mut buf = sf(m.rank());
                    assert_eq!(buf.len(), n);
                    m.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn sums_match_expected() {
        for &p in &[2usize, 3, 4, 7, 8] {
            let n = 23;
            let results = run_ring(p, n, move |rank| {
                (0..n).map(|i| (rank * 100 + i) as f32).collect()
            });
            let expected: Vec<f32> = (0..n)
                .map(|i| (0..p).map(|r| (r * 100 + i) as f32).sum())
                .collect();
            for r in &results {
                for (a, b) in r.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-3, "p={p}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn buffer_smaller_than_ring_still_works() {
        // n < p exercises zero-length chunks.
        let results = run_ring(8, 3, |rank| vec![rank as f32; 3]);
        let expected = (0..8).sum::<usize>() as f32;
        for r in results {
            assert_eq!(r, vec![expected; 3]);
        }
    }

    #[test]
    fn bytes_sent_matches_two_p_minus_one_over_p() {
        let members = create_ring(8);
        let n = 1024usize;
        let b = members[0].bytes_sent(n);
        let ideal = (2.0 * 7.0 / 8.0 * n as f64 * 4.0) as usize;
        assert!(
            (b as i64 - ideal as i64).unsigned_abs() as usize <= 64,
            "bytes {b} vs ideal {ideal}"
        );
    }

    #[test]
    fn singleton_ring_is_identity() {
        let mut members = create_ring(1);
        let m = members.pop().unwrap();
        let mut buf = vec![1.0, 2.0];
        m.all_reduce_sum(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(m.bytes_sent(100), 0);
    }

    #[test]
    fn agrees_with_tree_all_reduce() {
        use crate::comm::CommHandle;
        let p = 4;
        let n = 17;
        let ring_results = run_ring(p, n, move |rank| {
            (0..n)
                .map(|i| ((rank + 1) * (i + 1)) as f32 * 0.1)
                .collect()
        });
        let handles = CommHandle::create(p);
        let tree_results: Vec<Vec<f32>> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    let mut buf: Vec<f32> = (0..n)
                        .map(|i| ((h.rank() + 1) * (i + 1)) as f32 * 0.1)
                        .collect();
                    h.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect();
        for (r, t) in ring_results.iter().zip(&tree_results) {
            for (a, b) in r.iter().zip(t) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }
}
