//! Hierarchical (2-D) all-reduce, executed for real.
//!
//! The pod's gradient all-reduce is not one flat ring: it reduce-scatters
//! along torus rows, all-reduces along columns, then all-gathers along
//! rows (the structure `cost::torus_all_reduce_time` prices). This module
//! composes those three phases from row/column communicators over
//! threads. Each phase folds in ascending rank order, so the composition
//! is the canonical grid-blocked fold of
//! [`CommHandle::all_reduce_sum_grid`] — **bitwise identical** to the
//! tree and ring backends over the same world. It is the engine of the
//! `Backend::Torus2d` collective.

use crate::comm::{shard_bounds, CommHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One member's handles for a 2-D grid all-reduce: its row communicator
/// and its column communicator.
pub struct GridMember {
    pub row: CommHandle,
    pub col: CommHandle,
    rows: usize,
    cols: usize,
    /// Persistent shard buffer for the column phase; grows during warmup,
    /// then every all-reduce is allocation-free.
    shard: Mutex<Vec<f32>>,
    /// Shard-buffer capacity growths (this member only).
    shard_reallocs: AtomicU64,
}

/// Creates an `rows×cols` grid of members (row-major order).
pub fn create_grid(rows: usize, cols: usize) -> Vec<GridMember> {
    assert!(rows >= 1 && cols >= 1);
    // Row communicators: one per row, `cols` members each.
    let mut row_handles: Vec<Vec<CommHandle>> =
        (0..rows).map(|_| CommHandle::create(cols)).collect();
    // Column communicators: one per column, `rows` members each.
    let mut col_handles: Vec<Vec<CommHandle>> =
        (0..cols).map(|_| CommHandle::create(rows)).collect();
    let mut members = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            members.push(GridMember {
                row: std::mem::replace(&mut row_handles[r][c], dummy_handle()),
                col: std::mem::replace(&mut col_handles[c][r], dummy_handle()),
                rows,
                cols,
                shard: Mutex::new(Vec::new()),
                shard_reallocs: AtomicU64::new(0),
            });
        }
    }
    members
}

/// Placeholder handle used only during grid assembly (never called).
fn dummy_handle() -> CommHandle {
    CommHandle::create(1).pop().unwrap()
}

impl GridMember {
    /// Grid shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// This member's global rank in row-major grid order.
    pub fn global_rank(&self) -> usize {
        self.col.rank() * self.cols + self.row.rank()
    }

    /// Shard-buffer growth events on this member. Flat after warmup ⇒ the
    /// 2-D reduce path is allocation-free (the row/col communicators'
    /// scratch is tracked by [`CommHandle::scratch_reallocs`]).
    pub fn shard_reallocs(&self) -> u64 {
        self.shard_reallocs.load(Ordering::Relaxed)
    }

    /// Hierarchical sum all-reduce:
    /// 1. **reduce-scatter** along the row — member `c` of the row
    ///    receives shard `c` of the row sum (ascending-rank fold),
    /// 2. **all-reduce** the owned shard down the column (1/cols of the
    ///    payload — the bandwidth saving the 2-D scheme exists for),
    /// 3. **all-gather** finished shards along the row, straight back
    ///    into `buf`.
    ///
    /// Per-element this computes `Σ_blocks (Σ_cols x)` with both folds
    /// ascending — exactly [`CommHandle::all_reduce_sum_grid`] over the
    /// canonical grid, so results are bitwise identical to tree/ring.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        let n = buf.len();
        let (a, b) = shard_bounds(n, self.cols, self.row.rank());
        let mut shard = self.shard.lock();
        if shard.capacity() < b - a {
            self.shard_reallocs.fetch_add(1, Ordering::Relaxed);
        }
        // Phase 1: row reduce-scatter — `shard` now holds this member's
        // slice of the row sum.
        self.row.reduce_scatter_sum(buf, &mut shard);
        // Phase 2: column all-reduce of the shard only.
        self.col.all_reduce_sum(&mut shard);
        // Phase 3: row all-gather of finished shards (rank order == shard
        // order, so the concatenation is the final payload).
        self.row.all_gather_into_slice(&shard, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn payload(id: usize, n: usize) -> Vec<f32> {
        // Mixed magnitudes so reassociation changes the rounded sum.
        (0..n)
            .map(|i| {
                let m = [1e8f32, 1.0, -1e8, 0.37, 1e-3][(id + i) % 5];
                m * (1.0 + (id * 31 + i * 7) as f32 * 1e-3)
            })
            .collect()
    }

    fn run_grid(rows: usize, cols: usize, n: usize) -> Vec<Vec<f32>> {
        let members = create_grid(rows, cols);
        let joins: Vec<_> = members
            .into_iter()
            .enumerate()
            .map(|(id, m)| {
                thread::spawn(move || {
                    let mut buf: Vec<f32> = (0..n).map(|i| ((id + 1) * (i + 1)) as f32).collect();
                    m.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn grid_sum_matches_expected() {
        for &(rows, cols) in &[(2usize, 2usize), (2, 3), (4, 2), (1, 4), (3, 1)] {
            let p = rows * cols;
            let n = 13;
            let results = run_grid(rows, cols, n);
            let expected: Vec<f32> = (0..n)
                .map(|i| (1..=p).map(|id| (id * (i + 1)) as f32).sum())
                .collect();
            for (id, r) in results.iter().enumerate() {
                for (a, b) in r.iter().zip(&expected) {
                    assert!(
                        (a - b).abs() < 1e-3,
                        "grid {rows}x{cols} member {id}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn payload_smaller_than_cols() {
        // n < cols exercises empty shards.
        let results = run_grid(2, 4, 2);
        let expected: Vec<f32> = (0..2)
            .map(|i| (1..=8).map(|id| (id * (i + 1)) as f32).sum())
            .collect();
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn global_rank_is_row_major() {
        let members = create_grid(3, 4);
        for (id, m) in members.iter().enumerate() {
            assert_eq!(m.global_rank(), id);
        }
    }

    #[test]
    fn matches_canonical_grid_fold_bitwise() {
        // The executed three-phase exchange must be *bitwise* the
        // canonical grid-blocked fold — the property that makes the
        // torus-2d backend interchangeable with tree and ring.
        for &(rows, cols) in &[(2usize, 2usize), (2, 3), (4, 2), (4, 4)] {
            let p = rows * cols;
            for n in [1usize, 3, 29, 64] {
                let members = create_grid(rows, cols);
                let grid_results: Vec<Vec<f32>> = members
                    .into_iter()
                    .enumerate()
                    .map(|(id, m)| {
                        thread::spawn(move || {
                            let mut buf = payload(id, n);
                            m.all_reduce_sum(&mut buf);
                            buf
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect();
                let handles = CommHandle::create(p);
                let flat: Vec<Vec<f32>> = handles
                    .into_iter()
                    .enumerate()
                    .map(|(id, h)| {
                        thread::spawn(move || {
                            let mut buf = payload(id, n);
                            h.all_reduce_sum_grid(&mut buf, rows, cols);
                            buf
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect();
                for (g, f) in grid_results.iter().zip(&flat) {
                    for (x, y) in g.iter().zip(f) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "grid {rows}x{cols} n={n} must match the canonical fold"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let members = create_grid(2, 3);
        let joins: Vec<_> = members
            .into_iter()
            .enumerate()
            .map(|(id, m)| {
                thread::spawn(move || {
                    // Warmup grows the shard and communicator scratch.
                    let mut buf = payload(id, 257);
                    m.all_reduce_sum(&mut buf);
                    let after_warmup =
                        m.shard_reallocs() + m.row.scratch_reallocs() + m.col.scratch_reallocs();
                    for _ in 0..50 {
                        let mut buf = payload(id, 257);
                        m.all_reduce_sum(&mut buf);
                    }
                    let after_steady =
                        m.shard_reallocs() + m.row.scratch_reallocs() + m.col.scratch_reallocs();
                    (after_warmup, after_steady)
                })
            })
            .collect();
        for j in joins {
            let (warm, steady) = j.join().unwrap();
            assert_eq!(
                warm, steady,
                "steady-state 2-D all-reduce must not allocate"
            );
        }
    }
}
