//! Hierarchical (2-D) all-reduce, executed for real.
//!
//! The pod's gradient all-reduce is not one flat ring: it reduce-scatters
//! along torus rows, all-reduces along columns, then all-gathers along
//! rows (the structure `cost::torus_all_reduce_time` prices). This module
//! composes the same three phases from row/column ring communicators over
//! threads, validating the algorithm end-to-end against the flat tree.

use crate::comm::CommHandle;

/// One member's handles for a 2-D grid all-reduce: its row communicator
/// and its column communicator.
pub struct GridMember {
    pub row: CommHandle,
    pub col: CommHandle,
    rows: usize,
    cols: usize,
}

/// Creates an `rows×cols` grid of members (row-major order).
pub fn create_grid(rows: usize, cols: usize) -> Vec<GridMember> {
    assert!(rows >= 1 && cols >= 1);
    // Row communicators: one per row, `cols` members each.
    let mut row_handles: Vec<Vec<CommHandle>> =
        (0..rows).map(|_| CommHandle::create(cols)).collect();
    // Column communicators: one per column, `rows` members each.
    let mut col_handles: Vec<Vec<CommHandle>> =
        (0..cols).map(|_| CommHandle::create(rows)).collect();
    let mut members = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            members.push(GridMember {
                row: std::mem::replace(&mut row_handles[r][c], dummy_handle()),
                col: std::mem::replace(&mut col_handles[c][r], dummy_handle()),
                rows,
                cols,
            });
        }
    }
    members
}

/// Placeholder handle used only during grid assembly (never called).
fn dummy_handle() -> CommHandle {
    CommHandle::create(1).pop().unwrap()
}

impl GridMember {
    /// Grid shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Hierarchical sum all-reduce:
    /// 1. reduce-scatter along the row → each column owner holds its
    ///    shard of the row sum (realized here as a row all-reduce +
    ///    shard view, which is semantically identical),
    /// 2. all-reduce the owned shard down the column,
    /// 3. all-gather shards along the row.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        let cols = self.cols;
        let n = buf.len();
        // Phase 1: row-wise reduction. Every row member now holds the row
        // sum; member `c` of the row is the owner of shard `c`.
        self.row.all_reduce_sum(buf);
        // Phase 2: column all-reduce of this member's shard only (1/cols
        // of the payload — the bandwidth saving the 2-D scheme exists for).
        let me = self.row.rank();
        let (a, b) = shard_bounds(n, cols, me);
        let mut shard = buf[a..b].to_vec();
        self.col.all_reduce_sum(&mut shard);
        buf[a..b].copy_from_slice(&shard);
        // Phase 3: row all-gather of finished shards.
        let gathered = self.row.all_gather(&buf[a..b]);
        // `gathered` concatenates shards in rank order == shard order.
        let mut off = 0;
        for c in 0..cols {
            let (sa, sb) = shard_bounds(n, cols, c);
            buf[sa..sb].copy_from_slice(&gathered[off..off + (sb - sa)]);
            off += sb - sa;
        }
    }
}

/// Shard `i` of `n` elements split into `parts` near-equal ranges.
fn shard_bounds(n: usize, parts: usize, i: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_grid(rows: usize, cols: usize, n: usize) -> Vec<Vec<f32>> {
        let members = create_grid(rows, cols);
        let joins: Vec<_> = members
            .into_iter()
            .enumerate()
            .map(|(id, m)| {
                thread::spawn(move || {
                    let mut buf: Vec<f32> = (0..n).map(|i| ((id + 1) * (i + 1)) as f32).collect();
                    m.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn grid_sum_matches_expected() {
        for &(rows, cols) in &[(2usize, 2usize), (2, 3), (4, 2), (1, 4), (3, 1)] {
            let p = rows * cols;
            let n = 13;
            let results = run_grid(rows, cols, n);
            let expected: Vec<f32> = (0..n)
                .map(|i| (1..=p).map(|id| (id * (i + 1)) as f32).sum())
                .collect();
            for (id, r) in results.iter().enumerate() {
                for (a, b) in r.iter().zip(&expected) {
                    assert!(
                        (a - b).abs() < 1e-3,
                        "grid {rows}x{cols} member {id}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn payload_smaller_than_cols() {
        // n < cols exercises empty shards.
        let results = run_grid(2, 4, 2);
        let expected: Vec<f32> = (0..2)
            .map(|i| (1..=8).map(|id| (id * (i + 1)) as f32).sum())
            .collect();
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn shard_bounds_cover_exactly() {
        for n in [0usize, 1, 7, 16, 33] {
            for parts in [1usize, 2, 5, 8] {
                let mut covered = 0;
                for i in 0..parts {
                    let (a, b) = shard_bounds(n, parts, i);
                    assert_eq!(a, covered, "shards must be contiguous");
                    covered = b;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn agrees_with_flat_tree() {
        use crate::comm::CommHandle;
        let (rows, cols, n) = (2usize, 3usize, 29usize);
        let grid_results = run_grid(rows, cols, n);
        let handles = CommHandle::create(rows * cols);
        let flat: Vec<Vec<f32>> = handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| {
                thread::spawn(move || {
                    let mut buf: Vec<f32> = (0..n).map(|i| ((id + 1) * (i + 1)) as f32).collect();
                    h.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect();
        for (g, f) in grid_results.iter().zip(&flat) {
            for (a, b) in g.iter().zip(f) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }
}
