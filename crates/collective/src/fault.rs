//! Deterministic fault injection for the collective layer.
//!
//! The paper's one-hour number assumes a healthy 1024-core pod. At that
//! scale the *normal* operating condition includes degraded ICI links,
//! straggler replicas, and preempted workers, so the training stack must
//! degrade gracefully and recover exactly. This module provides the
//! shared vocabulary for injecting such faults **deterministically**:
//!
//! - [`FaultPlan`] — a seeded, serializable schedule of fault events with
//!   absolute sim-time triggers. The same plan always produces the same
//!   perturbation, so chaos runs are reproducible bit for bit.
//! - [`FaultSchedule`] — the plan compiled against a step clock: per-step
//!   slowdown multipliers, per-step transient-failure counts, and the
//!   sorted list of preemption steps. Every rank compiles the identical
//!   schedule, which keeps fault injection SPMD-consistent (a rank that
//!   fails alone would deadlock its peers inside a collective).
//! - [`CollectiveError`] — typed errors for the fallible collective API
//!   ([`Collective::try_all_reduce_sum`] and friends) instead of panics.
//! - [`FaultyCollective`] — a decorator that wraps *any* backend and
//!   injects scheduled transient failures into the fallible gradient
//!   path, leaving the infallible paths (BN sync, eval, broadcast)
//!   untouched.
//! - [`retry_collective`] — bounded retry with (virtual) exponential
//!   backoff; exhaustion surfaces as a typed
//!   [`CollectiveError::RetriesExhausted`], never a panic.
//!
//! Determinism rules (enforced by the chaos harness in the workspace
//! root):
//!
//! 1. Timing-only faults (link degradation, stragglers) perturb *virtual
//!    time* only — payloads are never touched, so training losses stay
//!    bitwise identical to the fault-free run.
//! 2. Transient collective failures fail an attempt on **every rank
//!    symmetrically** before any data moves; the retry then reruns the
//!    identical reduction, so results are bitwise unchanged.
//! 3. Preemption discards state back to the last checkpoint; replaying
//!    the lost steps from a bit-exact snapshot reproduces the
//!    uninterrupted trajectory exactly.

use crate::backend::Collective;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Typed errors for the fallible collective API.
// ---------------------------------------------------------------------------

/// Typed failure of a collective operation. The infallible [`Collective`]
/// methods keep their panic-on-misuse contract; the `try_*` methods
/// return these instead so robustness layers (retry, fault injection)
/// can react programmatically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CollectiveError {
    /// A zero-length payload was handed to a payload-carrying op.
    EmptyPayload {
        /// Which operation rejected it.
        op: &'static str,
    },
    /// A broadcast root outside `0..size`.
    InvalidRoot { root: usize, size: usize },
    /// An injected (or observed) transient failure; retrying may succeed.
    Transient {
        /// Which operation failed.
        op: &'static str,
        /// Step at which the fault fired.
        step: u64,
        /// Failed attempt number at this step (1-based).
        attempt: u32,
    },
    /// The retry budget was exhausted without a successful attempt.
    RetriesExhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<CollectiveError>,
    },
    /// A payload integrity check failed and the corruption was attributed
    /// to `rank`'s copy of gradient bucket `bucket` at step `step`. Not
    /// transient: the caller decides between a verified bucket retry and
    /// quarantining the rank — blind re-execution via [`retry_collective`]
    /// would hide the attribution.
    CorruptPayload {
        /// Rank whose payload failed the cross-rank fingerprint check.
        rank: usize,
        /// Gradient bucket index the corruption was detected in.
        bucket: usize,
        /// Training step at which the corruption was detected.
        step: u64,
    },
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::EmptyPayload { op } => {
                write!(f, "{op}: zero-length payload")
            }
            CollectiveError::InvalidRoot { root, size } => {
                write!(f, "broadcast root {root} out of range for world of {size}")
            }
            CollectiveError::Transient { op, step, attempt } => {
                write!(
                    f,
                    "transient {op} failure at step {step} (attempt {attempt})"
                )
            }
            CollectiveError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
            CollectiveError::CorruptPayload { rank, bucket, step } => {
                write!(
                    f,
                    "corrupt payload attributed to rank {rank} (bucket {bucket}, step {step})"
                )
            }
        }
    }
}

impl std::error::Error for CollectiveError {}

impl CollectiveError {
    /// True when a retry might succeed (only [`CollectiveError::Transient`]).
    pub fn is_transient(&self) -> bool {
        matches!(self, CollectiveError::Transient { .. })
    }
}

// ---------------------------------------------------------------------------
// Retry with (virtual) exponential backoff.
// ---------------------------------------------------------------------------

/// Bounded-retry policy for transient collective failures. Backoff is
/// *virtual* (accounted, not slept): the simulated pod charges the time
/// to the run's timeline without stalling the test process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). Must be ≥ 1.
    pub max_attempts: u32,
    /// Virtual seconds of backoff before the first retry.
    pub base_backoff_s: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_s: 0.05,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Virtual backoff charged before retry number `retry` (1-based).
    pub fn backoff_before(&self, retry: u32) -> f64 {
        self.base_backoff_s * self.multiplier.powi(retry.saturating_sub(1) as i32)
    }
}

/// Outcome of a successful (possibly retried) collective call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RetryOutcome {
    /// Attempts made, including the successful one (1 = no fault).
    pub attempts: u32,
    /// Total virtual backoff seconds charged by failed attempts.
    pub backoff_s: f64,
}

/// Runs `op` under `policy`, retrying transient failures with virtual
/// exponential backoff. Non-transient errors propagate immediately;
/// exhausting the budget returns [`CollectiveError::RetriesExhausted`].
pub fn retry_collective(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> Result<(), CollectiveError>,
) -> Result<RetryOutcome, CollectiveError> {
    let max = policy.max_attempts.max(1);
    let mut backoff_s = 0.0;
    for attempt in 1..=max {
        match op() {
            Ok(()) => {
                return Ok(RetryOutcome {
                    attempts: attempt,
                    backoff_s,
                })
            }
            Err(e) if e.is_transient() && attempt < max => {
                backoff_s += policy.backoff_before(attempt);
            }
            Err(e) if e.is_transient() => {
                return Err(CollectiveError::RetriesExhausted {
                    attempts: max,
                    last: Box::new(e),
                });
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on every branch")
}

// ---------------------------------------------------------------------------
// The fault plan: seeded, serializable, sim-time triggered.
// ---------------------------------------------------------------------------

/// One kind of fault. Timing faults (link degradation, stragglers) are
/// *virtual-time only*; transient failures and preemptions exercise the
/// recovery machinery.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The outgoing ICI link of member `link` runs at `scale` of nominal
    /// bandwidth (0 < scale ≤ 1). Bulk-synchronous collectives stall on
    /// the slowest link, so one degraded link stretches every step whose
    /// window overlaps the fault.
    LinkDegrade { link: usize, scale: f64 },
    /// Replica `replica` computes `slowdown`× slower (slowdown ≥ 1).
    /// SPMD training is gated by its slowest member, so the whole step
    /// stretches.
    Straggler { replica: usize, slowdown: f64 },
    /// Replica `replica` is preempted; the SPMD job dies at the step the
    /// trigger time falls in and restarts from the last checkpoint.
    Preempt { replica: usize },
    /// The gradient exchange at the trigger step fails `failures` times
    /// (symmetrically on every rank) before succeeding; the retry layer
    /// absorbs it.
    TransientCollective { failures: u32 },
    /// Replica `rank` is lost **permanently** at step `at_step` — the
    /// host is gone and will not come back. Unlike [`FaultKind::Preempt`]
    /// (rewind and replay at the same world size), permanent loss forces
    /// an *elastic resize*: drain in-flight buckets, persist a durable
    /// checkpoint, rebuild the collective and BN groups for world N−1,
    /// re-shard the data, rescale the LR for the shrunken global batch,
    /// and resume. Step-keyed (not time-keyed) because the resize
    /// protocol is a step-boundary barrier; `at_s`/`duration_s` on the
    /// carrying [`FaultEvent`] are ignored for this kind. The `rank` is
    /// interpreted **modulo the surviving world** at trigger time, so a
    /// seeded plan always names a live member even after earlier losses.
    PermanentLoss { rank: usize, at_step: u64 },
    /// **Asymmetric data fault**: rank `rank`'s copy of the reduced
    /// gradient payload gets bit `bit` of element `element` (modulo the
    /// payload length) flipped at step `at_step` — silent data corruption
    /// on the receive side of an all-reduce. Unlike every timing fault
    /// above, this touches *numerics on a single rank*, so without the
    /// fingerprint defense the corrupted weights would silently fork the
    /// SPMD trajectory. Step-keyed like [`FaultKind::PermanentLoss`];
    /// `rank` is interpreted modulo the surviving world at trigger time.
    /// One-shot: the flip fires on the first exchanged bucket of the
    /// step and never re-fires on a verified retry of that bucket.
    PayloadBitFlip {
        rank: usize,
        at_step: u64,
        element: u32,
        bit: u8,
    },
    /// **Asymmetric compute fault**: at step `at_step`, rank `rank`'s
    /// next ABFT-verified GEMM tile gets bit `bit` of its first output
    /// element flipped before the tile checksum check runs — a
    /// misbehaving core producing a wrong product. Detected (and healed
    /// by deterministic tile recompute) only when the ABFT verify mode
    /// is enabled; with verification off this is a *silent* corruption,
    /// which is exactly the escape the chaos tier asserts cannot happen
    /// under the defense. One-shot per event.
    ComputeCorruption { rank: usize, at_step: u64, bit: u8 },
}

/// A fault with an absolute sim-time trigger. `duration_s` only matters
/// for timing faults (a window); point faults (preempt, transient) fire
/// once at `at_s`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute virtual trigger time, seconds from run start.
    pub at_s: f64,
    /// Window length for timing faults; ignored for point faults.
    pub duration_s: f64,
    pub kind: FaultKind,
}

fn default_virtual_step_seconds() -> f64 {
    1.0
}
fn default_checkpoint_every_steps() -> u64 {
    4
}
fn default_restart_delay_s() -> f64 {
    5.0
}
fn default_resize_checkpoint_s() -> f64 {
    2.0
}
fn default_resize_rebuild_s() -> f64 {
    3.0
}

/// A deterministic chaos schedule: the full description of every fault a
/// run will experience, plus the recovery knobs (checkpoint cadence,
/// restart cost, retry policy). Serializable as part of an `Experiment`,
/// so a chaos run is reproducible from its config alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The fault events, in any order (compilation sorts them).
    pub events: Vec<FaultEvent>,
    /// Virtual seconds one healthy training step spans — the clock that
    /// converts `at_s` triggers into step indices.
    #[serde(default = "default_virtual_step_seconds")]
    pub virtual_step_seconds: f64,
    /// Full-state checkpoint cadence, in steps (recovery granularity for
    /// preemption).
    #[serde(default = "default_checkpoint_every_steps")]
    pub checkpoint_every_steps: u64,
    /// Virtual seconds a preemption restart costs (scheduling + restore).
    #[serde(default = "default_restart_delay_s")]
    pub restart_delay_s: f64,
    /// Retry policy for transient collective failures.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Virtual seconds a resize-triggered durable checkpoint costs
    /// (serialize + fsync + rename on every surviving host).
    #[serde(default = "default_resize_checkpoint_s")]
    pub resize_checkpoint_s: f64,
    /// Virtual seconds rebuilding the collective, BN groups, and data
    /// shards for the shrunken world costs.
    #[serde(default = "default_resize_rebuild_s")]
    pub resize_rebuild_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            virtual_step_seconds: default_virtual_step_seconds(),
            checkpoint_every_steps: default_checkpoint_every_steps(),
            restart_delay_s: default_restart_delay_s(),
            retry: RetryPolicy::default(),
            resize_checkpoint_s: default_resize_checkpoint_s(),
            resize_rebuild_s: default_resize_rebuild_s(),
        }
    }
}

/// SplitMix64 — local copy so the plan generator has no dependency on
/// the tensor crate's RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(r: u64) -> f64 {
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// An empty plan (no faults, default recovery knobs).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a seeded random plan: `n_faults` events over the first
    /// `horizon_s` virtual seconds of a `world`-member run. Same seed ⇒
    /// identical plan, always.
    pub fn generate(seed: u64, world: usize, horizon_s: f64, n_faults: usize) -> Self {
        assert!(world >= 1, "world must have at least one member");
        assert!(horizon_s > 0.0, "horizon must be positive");
        let mut s = seed ^ 0x005e_edfa_u64.rotate_left(17);
        let mut events = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let at_s = unit_f64(splitmix64(&mut s)) * horizon_s;
            let duration_s = (0.05 + 0.3 * unit_f64(splitmix64(&mut s))) * horizon_s;
            let member = (splitmix64(&mut s) % world as u64) as usize;
            let kind = match splitmix64(&mut s) % 4 {
                0 => FaultKind::LinkDegrade {
                    link: member,
                    scale: 0.25 + 0.65 * unit_f64(splitmix64(&mut s)),
                },
                1 => FaultKind::Straggler {
                    replica: member,
                    slowdown: 1.5 + 2.5 * unit_f64(splitmix64(&mut s)),
                },
                2 => FaultKind::Preempt { replica: member },
                _ => FaultKind::TransientCollective {
                    failures: 1 + (splitmix64(&mut s) % 2) as u32,
                },
            };
            events.push(FaultEvent {
                at_s,
                duration_s,
                kind,
            });
        }
        FaultPlan {
            events,
            ..FaultPlan::default()
        }
    }

    /// Generates a seeded *elastic* plan: the classic mix from
    /// [`FaultPlan::generate`] plus `n_losses` permanent replica losses
    /// at seeded steps inside the first `horizon_s` of virtual time.
    /// Deliberately a **separate** entry point — the classic generator's
    /// seeded streams are pinned by the PR 2 chaos suites and must not
    /// shift.
    pub fn generate_elastic(
        seed: u64,
        world: usize,
        horizon_s: f64,
        n_faults: usize,
        n_losses: usize,
    ) -> Self {
        assert!(
            n_losses < world,
            "cannot permanently lose {n_losses} of {world} replicas"
        );
        let mut plan = FaultPlan::generate(seed, world, horizon_s, n_faults);
        let mut s = seed ^ 0x00e1_a5fa_u64.rotate_left(29);
        let horizon_steps = (horizon_s / plan.virtual_step_seconds).floor().max(2.0) as u64;
        for _ in 0..n_losses {
            // Avoid step 0 (a resize before the first step is a plain
            // smaller-world start, not an interesting resize).
            let at_step = 1 + splitmix64(&mut s) % (horizon_steps - 1);
            let rank = (splitmix64(&mut s) % world as u64) as usize;
            plan.events.push(FaultEvent {
                at_s: at_step as f64 * plan.virtual_step_seconds,
                duration_s: 0.0,
                kind: FaultKind::PermanentLoss { rank, at_step },
            });
        }
        plan
    }

    /// Generates a seeded *corruption cocktail*: the classic timing mix
    /// from [`FaultPlan::generate`] plus `n_flips` single-rank payload
    /// bit flips and `n_compute` single-rank GEMM output corruptions at
    /// seeded steps inside the first `horizon_s` of virtual time. Like
    /// [`FaultPlan::generate_elastic`], this is a **separate** entry
    /// point with its own seed stream so the classic generator's pinned
    /// event sequences never shift.
    ///
    /// Payload flips draw bits from the high-mantissa/exponent range
    /// (23..=30): large enough that the corrupted rank's payload sum
    /// deviates far beyond f32 reduction rounding, which is what the
    /// two-rank attribution tie-break relies on. Compute flips draw from
    /// the same exponent range (23..=30): an exponent flip changes the
    /// element's magnitude by at least 2×, which is always above the
    /// ABFT tile checksum's shape-derived tolerance, whereas a
    /// low-mantissa flip can hide below the rounding noise floor of a
    /// large tile.
    pub fn generate_corruption(
        seed: u64,
        world: usize,
        horizon_s: f64,
        n_faults: usize,
        n_flips: usize,
        n_compute: usize,
    ) -> Self {
        let mut plan = FaultPlan::generate(seed, world, horizon_s, n_faults);
        let mut s = seed ^ 0x00c0_44fa_u64.rotate_left(23);
        let horizon_steps = (horizon_s / plan.virtual_step_seconds).floor().max(2.0) as u64;
        for _ in 0..n_flips {
            let at_step = 1 + splitmix64(&mut s) % (horizon_steps - 1);
            let rank = (splitmix64(&mut s) % world as u64) as usize;
            let element = splitmix64(&mut s) as u32;
            let bit = 23 + (splitmix64(&mut s) % 8) as u8;
            plan.events.push(FaultEvent {
                at_s: at_step as f64 * plan.virtual_step_seconds,
                duration_s: 0.0,
                kind: FaultKind::PayloadBitFlip {
                    rank,
                    at_step,
                    element,
                    bit,
                },
            });
        }
        for _ in 0..n_compute {
            let at_step = 1 + splitmix64(&mut s) % (horizon_steps - 1);
            let rank = (splitmix64(&mut s) % world as u64) as usize;
            let bit = 23 + (splitmix64(&mut s) % 8) as u8;
            plan.events.push(FaultEvent {
                at_s: at_step as f64 * plan.virtual_step_seconds,
                duration_s: 0.0,
                kind: FaultKind::ComputeCorruption { rank, at_step, bit },
            });
        }
        plan
    }

    /// Number of corruption events ([`FaultKind::PayloadBitFlip`] +
    /// [`FaultKind::ComputeCorruption`]) in the plan.
    pub fn corruption_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::PayloadBitFlip { .. } | FaultKind::ComputeCorruption { .. }
                )
            })
            .count()
    }

    /// Validates internal consistency, panicking with a clear message —
    /// mirrors `Experiment::validate`.
    pub fn validate(&self) {
        assert!(
            self.virtual_step_seconds > 0.0,
            "virtual_step_seconds must be positive"
        );
        assert!(
            self.checkpoint_every_steps >= 1,
            "checkpoint cadence must be at least one step"
        );
        assert!(
            self.restart_delay_s >= 0.0,
            "restart delay cannot be negative"
        );
        assert!(
            self.retry.max_attempts >= 1,
            "retry needs at least one attempt"
        );
        for (i, ev) in self.events.iter().enumerate() {
            assert!(ev.at_s >= 0.0, "event {i}: negative trigger time");
            assert!(ev.duration_s >= 0.0, "event {i}: negative duration");
            match ev.kind {
                FaultKind::LinkDegrade { scale, .. } => {
                    assert!(
                        scale > 0.0 && scale <= 1.0,
                        "event {i}: link scale {scale} outside (0, 1]"
                    );
                }
                FaultKind::Straggler { slowdown, .. } => {
                    assert!(
                        slowdown >= 1.0,
                        "event {i}: straggler slowdown {slowdown} < 1"
                    );
                }
                FaultKind::Preempt { .. } => {}
                FaultKind::TransientCollective { failures } => {
                    assert!(failures >= 1, "event {i}: zero transient failures");
                }
                FaultKind::PermanentLoss { .. } => {}
                FaultKind::PayloadBitFlip { bit, .. } => {
                    assert!(bit < 32, "event {i}: payload flip bit {bit} outside f32");
                }
                FaultKind::ComputeCorruption { bit, .. } => {
                    assert!(bit < 32, "event {i}: compute flip bit {bit} outside f32");
                }
            }
        }
        assert!(
            self.resize_checkpoint_s >= 0.0,
            "resize checkpoint cost cannot be negative"
        );
        assert!(
            self.resize_rebuild_s >= 0.0,
            "resize rebuild cost cannot be negative"
        );
    }

    /// Number of [`FaultKind::PermanentLoss`] events in the plan.
    pub fn permanent_losses(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PermanentLoss { .. }))
            .count()
    }

    /// True when the plan contains only timing faults (no preemptions,
    /// no transient failures) — the class that must leave training
    /// losses bitwise unchanged.
    pub fn is_timing_only(&self) -> bool {
        self.events.iter().all(|e| {
            matches!(
                e.kind,
                FaultKind::LinkDegrade { .. } | FaultKind::Straggler { .. }
            )
        })
    }

    /// Compiles the plan against a `total_steps`-step run, producing the
    /// per-step tables every rank consults. Pure function of the plan —
    /// every rank gets the identical schedule.
    pub fn compile(&self, total_steps: u64) -> FaultSchedule {
        self.validate();
        let step_s = self.virtual_step_seconds;
        let mut slowdown = vec![1.0f64; total_steps as usize];
        let mut transient: BTreeMap<u64, u32> = BTreeMap::new();
        let mut preempts: Vec<u64> = Vec::new();
        let mut losses: Vec<(u64, usize)> = Vec::new();
        let mut payload_flips: BTreeMap<u64, (usize, u32, u8)> = BTreeMap::new();
        let mut compute_flips: BTreeMap<u64, (usize, u8)> = BTreeMap::new();
        for ev in &self.events {
            match ev.kind {
                FaultKind::LinkDegrade { scale, .. } => {
                    apply_window(&mut slowdown, step_s, ev.at_s, ev.duration_s, 1.0 / scale);
                }
                FaultKind::Straggler { slowdown: f, .. } => {
                    apply_window(&mut slowdown, step_s, ev.at_s, ev.duration_s, f);
                }
                FaultKind::Preempt { .. } => {
                    let step = (ev.at_s / step_s).floor() as u64;
                    if step < total_steps {
                        preempts.push(step);
                    }
                }
                FaultKind::TransientCollective { failures } => {
                    let step = (ev.at_s / step_s).floor() as u64;
                    if step < total_steps {
                        let e = transient.entry(step).or_insert(0);
                        *e = (*e).max(failures);
                    }
                }
                FaultKind::PermanentLoss { rank, at_step } => {
                    // Step-keyed: the resize protocol is a step-boundary
                    // barrier, so `at_step` is authoritative and `at_s`
                    // is ignored for this kind.
                    if at_step < total_steps {
                        losses.push((at_step, rank));
                    }
                }
                FaultKind::PayloadBitFlip {
                    rank,
                    at_step,
                    element,
                    bit,
                } => {
                    // Step-keyed like PermanentLoss; at most one flip per
                    // step (first event wins) keeps injection one-shot.
                    if at_step < total_steps {
                        payload_flips.entry(at_step).or_insert((rank, element, bit));
                    }
                }
                FaultKind::ComputeCorruption { rank, at_step, bit } => {
                    if at_step < total_steps {
                        compute_flips.entry(at_step).or_insert((rank, bit));
                    }
                }
            }
        }
        preempts.sort_unstable();
        preempts.dedup();
        losses.sort_unstable();
        losses.dedup();
        FaultSchedule {
            step_s,
            slowdown,
            transient,
            preempts,
            losses,
            payload_flips,
            compute_flips,
            checkpoint_every_steps: self.checkpoint_every_steps.max(1),
            restart_delay_s: self.restart_delay_s,
            retry: self.retry,
            resize_checkpoint_s: self.resize_checkpoint_s,
            resize_rebuild_s: self.resize_rebuild_s,
        }
    }
}

/// Stretches every step whose window overlaps `[at, at + dur)` by
/// `factor`, scaled by the overlap fraction (a fault covering half a
/// step charges half its slowdown). Factors from multiple faults
/// compose multiplicatively.
fn apply_window(slowdown: &mut [f64], step_s: f64, at: f64, dur: f64, factor: f64) {
    if dur <= 0.0 || factor == 1.0 {
        return;
    }
    let end = at + dur;
    for (k, s) in slowdown.iter_mut().enumerate() {
        let w0 = k as f64 * step_s;
        let w1 = w0 + step_s;
        let overlap = (end.min(w1) - at.max(w0)).max(0.0);
        if overlap > 0.0 {
            let frac = overlap / step_s;
            *s *= 1.0 + (factor - 1.0) * frac;
        }
    }
}

/// A [`FaultPlan`] compiled against a step clock: what every rank (and
/// the trainer's outer recovery loop) actually consults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    step_s: f64,
    slowdown: Vec<f64>,
    transient: BTreeMap<u64, u32>,
    preempts: Vec<u64>,
    losses: Vec<(u64, usize)>,
    payload_flips: BTreeMap<u64, (usize, u32, u8)>,
    compute_flips: BTreeMap<u64, (usize, u8)>,
    checkpoint_every_steps: u64,
    restart_delay_s: f64,
    retry: RetryPolicy,
    resize_checkpoint_s: f64,
    resize_rebuild_s: f64,
}

impl FaultSchedule {
    /// An empty schedule (no faults) over `total_steps`.
    pub fn empty(total_steps: u64) -> Self {
        FaultPlan::default().compile(total_steps)
    }

    /// Nominal virtual seconds per healthy step.
    pub fn step_seconds(&self) -> f64 {
        self.step_s
    }

    /// Slowdown multiplier (≥ 1) for step `step`; 1.0 when healthy.
    pub fn slowdown_at(&self, step: u64) -> f64 {
        self.slowdown.get(step as usize).copied().unwrap_or(1.0)
    }

    /// Scheduled transient failures for step `step`'s gradient exchange.
    pub fn transient_failures_at(&self, step: u64) -> u32 {
        self.transient.get(&step).copied().unwrap_or(0)
    }

    /// Preemption steps, ascending and deduplicated.
    pub fn preempt_steps(&self) -> &[u64] {
        &self.preempts
    }

    /// True when any preemption is scheduled.
    pub fn has_preempts(&self) -> bool {
        !self.preempts.is_empty()
    }

    /// Permanent-loss events as `(at_step, rank)` pairs, ascending by
    /// step. The `rank` is interpreted modulo the surviving world at
    /// trigger time (see [`FaultKind::PermanentLoss`]).
    pub fn loss_events(&self) -> &[(u64, usize)] {
        &self.losses
    }

    /// True when any permanent replica loss is scheduled.
    pub fn has_losses(&self) -> bool {
        !self.losses.is_empty()
    }

    /// The payload bit flip scheduled for step `step`, if any, as
    /// `(rank, element, bit)`. `rank` is modulo the surviving world,
    /// `element` modulo the payload length at injection time.
    pub fn payload_flip_at(&self, step: u64) -> Option<(usize, u32, u8)> {
        self.payload_flips.get(&step).copied()
    }

    /// The GEMM output corruption scheduled for step `step`, if any, as
    /// `(rank, bit)`. `rank` is modulo the surviving world.
    pub fn compute_corruption_at(&self, step: u64) -> Option<(usize, u8)> {
        self.compute_flips.get(&step).copied()
    }

    /// True when any data-corruption fault (payload flip or compute
    /// corruption) is scheduled — the trainer keys its fingerprint
    /// verification, ABFT arming, and durable-checkpoint cadence off
    /// this.
    pub fn has_corruption(&self) -> bool {
        !self.payload_flips.is_empty() || !self.compute_flips.is_empty()
    }

    /// Virtual seconds charged for the durable checkpoint leg of a
    /// resize.
    pub fn resize_checkpoint_s(&self) -> f64 {
        self.resize_checkpoint_s
    }

    /// Virtual seconds charged for rebuilding collectives/BN groups/
    /// shards during a resize.
    pub fn resize_rebuild_s(&self) -> f64 {
        self.resize_rebuild_s
    }

    /// True when any transient collective failure is scheduled.
    pub fn has_transients(&self) -> bool {
        !self.transient.is_empty()
    }

    /// True when any step carries a timing slowdown.
    pub fn has_timing(&self) -> bool {
        self.slowdown.iter().any(|&s| s > 1.0)
    }

    /// True when the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        !self.has_preempts()
            && !self.has_transients()
            && !self.has_timing()
            && !self.has_losses()
            && !self.has_corruption()
    }

    /// Checkpoint cadence in steps.
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every_steps
    }

    /// Virtual seconds charged per preemption restart.
    pub fn restart_delay_s(&self) -> f64 {
        self.restart_delay_s
    }

    /// Retry policy for transient collective failures.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }
}

// ---------------------------------------------------------------------------
// FaultyCollective: the decorator that injects scheduled failures.
// ---------------------------------------------------------------------------

/// Wraps any [`Collective`] backend and injects the schedule's transient
/// failures into the **fallible** gradient path
/// ([`Collective::try_all_reduce_sum`]). Infallible operations delegate
/// untouched, so BN sync, distributed eval, and checkpoint broadcasts
/// never see injected faults (they share the step's fate through the
/// timing model instead).
///
/// Injection is symmetric: the schedule is a pure function of the plan,
/// every rank holds the same one, and a failed attempt returns *before*
/// touching the underlying communicator — so no rank ever enters a
/// collective its peers skipped (which would deadlock).
pub struct FaultyCollective {
    inner: Box<dyn Collective>,
    schedule: Arc<FaultSchedule>,
    step: AtomicU64,
    failed_attempts_this_step: AtomicU32,
    injected_failures: AtomicU64,
    /// Last step a payload bit flip was injected at on this rank
    /// (`u64::MAX` = never). Flips are one-shot per scheduled step, so a
    /// verified bucket retry re-runs the clean reduction and the
    /// corrected trajectory is bitwise identical to the unfaulted one.
    flip_done_step: AtomicU64,
    injected_flips: AtomicU64,
    /// Optional flight recorder; injected failures and fallible calls are
    /// counted into its metrics registry. A disabled recorder makes every
    /// recording call a cheap early-return, so fault-free hot paths pay
    /// nothing.
    recorder: Option<Arc<ets_obs::Recorder>>,
}

impl FaultyCollective {
    /// Decorates `inner` with the shared `schedule`.
    pub fn new(inner: Box<dyn Collective>, schedule: Arc<FaultSchedule>) -> Self {
        FaultyCollective {
            inner,
            schedule,
            step: AtomicU64::new(0),
            failed_attempts_this_step: AtomicU32::new(0),
            injected_failures: AtomicU64::new(0),
            flip_done_step: AtomicU64::new(u64::MAX),
            injected_flips: AtomicU64::new(0),
            recorder: None,
        }
    }

    /// Attaches a flight recorder: every injected transient failure bumps
    /// `collective_faults_injected`, every fallible exchange attempt bumps
    /// `collective_try_calls`, replacing ad-hoc polling of
    /// [`FaultyCollective::injected_failures`] for observability consumers
    /// (the atomic stays as the serde-facade-level accessor).
    pub fn attach_recorder(&mut self, rec: Arc<ets_obs::Recorder>) {
        self.recorder = Some(rec);
    }

    /// Advances the injector's step clock (call once per training step,
    /// on every rank, before the gradient exchange).
    pub fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
        self.failed_attempts_this_step.store(0, Ordering::Relaxed);
    }

    /// Total transient failures injected so far on this rank.
    pub fn injected_failures(&self) -> u64 {
        self.injected_failures.load(Ordering::Relaxed)
    }

    /// Total payload bit flips injected so far on this rank.
    pub fn injected_payload_flips(&self) -> u64 {
        self.injected_flips.load(Ordering::Relaxed)
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl Collective for FaultyCollective {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn backend(&self) -> crate::backend::Backend {
        self.inner.backend()
    }
    fn all_reduce_sum(&self, buf: &mut [f32]) {
        self.inner.all_reduce_sum(buf);
    }
    fn all_gather(&self, local: &[f32], out: &mut Vec<f32>) {
        self.inner.all_gather(local, out);
    }
    fn broadcast(&self, buf: &mut [f32], root: usize) {
        self.inner.broadcast(buf, root);
    }
    fn barrier(&self) {
        self.inner.barrier();
    }
    fn stats(&self) -> crate::backend::CollectiveStats {
        self.inner.stats()
    }
    fn scratch_reallocs(&self) -> u64 {
        self.inner.scratch_reallocs()
    }

    fn try_all_reduce_sum(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        let step = self.step.load(Ordering::Relaxed);
        let planned = self.schedule.transient_failures_at(step);
        let failed = self.failed_attempts_this_step.load(Ordering::Relaxed);
        if let Some(rec) = &self.recorder {
            rec.counter_add("collective_try_calls", 1);
        }
        if failed < planned {
            // Fail BEFORE touching the payload or the inner communicator:
            // every rank takes this branch for the same attempt, so the
            // group stays in lockstep.
            self.failed_attempts_this_step
                .store(failed + 1, Ordering::Relaxed);
            self.injected_failures.fetch_add(1, Ordering::Relaxed);
            if let Some(rec) = &self.recorder {
                rec.counter_add("collective_faults_injected", 1);
            }
            return Err(CollectiveError::Transient {
                op: "all_reduce_sum",
                step,
                attempt: failed + 1,
            });
        }
        let result = if let Some(rec) = &self.recorder {
            let _span = rec.wall_span(
                ets_obs::Lane::WallCollective,
                ets_obs::phase::RETRY_ATTEMPT,
                step,
                (failed + 1) as u64,
            );
            self.inner.try_all_reduce_sum(buf)
        } else {
            self.inner.try_all_reduce_sum(buf)
        };
        if result.is_ok() {
            self.maybe_flip_payload(step, buf);
        }
        result
    }
}

impl FaultyCollective {
    /// Applies the step's scheduled [`FaultKind::PayloadBitFlip`] to this
    /// rank's copy of the *reduced* payload — receive-side silent data
    /// corruption. Asymmetric by design: only the scheduled rank (modulo
    /// the surviving world) mutates its buffer, so without the
    /// fingerprint defense its weights silently fork from its peers'.
    /// One-shot per scheduled step: a verified retry of the bucket
    /// re-runs the clean reduction.
    fn maybe_flip_payload(&self, step: u64, buf: &mut [f32]) {
        let Some((rank, element, bit)) = self.schedule.payload_flip_at(step) else {
            return;
        };
        if rank % self.inner.size() != self.inner.rank() || buf.is_empty() {
            return;
        }
        if self.flip_done_step.load(Ordering::Relaxed) == step {
            return;
        }
        self.flip_done_step.store(step, Ordering::Relaxed);
        let idx = element as usize % buf.len();
        buf[idx] = f32::from_bits(buf[idx].to_bits() ^ (1u32 << bit));
        self.injected_flips.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = &self.recorder {
            rec.counter_add("collective_corruptions_injected", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{create_collective, Backend};
    use std::thread;

    #[test]
    fn plan_generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = FaultPlan::generate(seed, 8, 16.0, 4);
            let b = FaultPlan::generate(seed, 8, 16.0, 4);
            assert_eq!(a, b, "seed {seed}");
            a.validate();
        }
        let a = FaultPlan::generate(1, 8, 16.0, 4);
        let b = FaultPlan::generate(2, 8, 16.0, 4);
        assert_ne!(a, b, "different seeds must differ");
    }

    #[test]
    fn compile_maps_triggers_to_steps() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_s: 2.0,
                    duration_s: 2.0,
                    kind: FaultKind::Straggler {
                        replica: 0,
                        slowdown: 3.0,
                    },
                },
                FaultEvent {
                    at_s: 5.5,
                    duration_s: 0.0,
                    kind: FaultKind::Preempt { replica: 1 },
                },
                FaultEvent {
                    at_s: 7.0,
                    duration_s: 0.0,
                    kind: FaultKind::TransientCollective { failures: 2 },
                },
            ],
            ..FaultPlan::default()
        };
        let sched = plan.compile(10);
        // Straggler covers steps 2 and 3 fully.
        assert_eq!(sched.slowdown_at(1), 1.0);
        assert!((sched.slowdown_at(2) - 3.0).abs() < 1e-12);
        assert!((sched.slowdown_at(3) - 3.0).abs() < 1e-12);
        assert_eq!(sched.slowdown_at(4), 1.0);
        assert_eq!(sched.preempt_steps(), &[5]);
        assert_eq!(sched.transient_failures_at(7), 2);
        assert_eq!(sched.transient_failures_at(6), 0);
        assert!(sched.has_timing() && sched.has_preempts() && sched.has_transients());
    }

    #[test]
    fn partial_window_overlap_scales_proportionally() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 0.5,
                duration_s: 0.5,
                kind: FaultKind::LinkDegrade {
                    link: 0,
                    scale: 0.5,
                },
            }],
            ..FaultPlan::default()
        };
        let sched = plan.compile(2);
        // Factor 2 over half of step 0: 1 + (2-1)*0.5 = 1.5.
        assert!((sched.slowdown_at(0) - 1.5).abs() < 1e-12);
        assert_eq!(sched.slowdown_at(1), 1.0);
    }

    #[test]
    fn out_of_range_triggers_are_dropped() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_s: 99.0,
                    duration_s: 0.0,
                    kind: FaultKind::Preempt { replica: 0 },
                },
                FaultEvent {
                    at_s: 99.0,
                    duration_s: 0.0,
                    kind: FaultKind::TransientCollective { failures: 1 },
                },
            ],
            ..FaultPlan::default()
        };
        let sched = plan.compile(4);
        assert!(sched.is_empty());
    }

    #[test]
    fn retry_absorbs_transients_and_charges_backoff() {
        let policy = RetryPolicy::default();
        let mut fails = 2;
        let out = retry_collective(&policy, || {
            if fails > 0 {
                fails -= 1;
                Err(CollectiveError::Transient {
                    op: "test",
                    step: 0,
                    attempt: 1,
                })
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert_eq!(out.attempts, 3);
        // 0.05 + 0.10 of virtual backoff.
        assert!((out.backoff_s - 0.15).abs() < 1e-12);
    }

    #[test]
    fn retry_exhaustion_is_typed_not_panicking() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let err = retry_collective(&policy, || {
            Err(CollectiveError::Transient {
                op: "test",
                step: 9,
                attempt: 0,
            })
        })
        .unwrap_err();
        match err {
            CollectiveError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.is_transient());
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn retry_does_not_retry_permanent_errors() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = retry_collective(&policy, || {
            calls += 1;
            Err(CollectiveError::EmptyPayload { op: "test" })
        })
        .unwrap_err();
        assert_eq!(calls, 1, "permanent errors must not be retried");
        assert_eq!(err, CollectiveError::EmptyPayload { op: "test" });
    }

    #[test]
    fn faulty_collective_injects_then_recovers_bitwise() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 0.0,
                duration_s: 0.0,
                kind: FaultKind::TransientCollective { failures: 2 },
            }],
            ..FaultPlan::default()
        };
        let sched = Arc::new(plan.compile(4));
        for backend in [Backend::Tree, Backend::Ring] {
            let world = create_collective(backend, 3);
            let joins: Vec<_> = world
                .into_iter()
                .map(|c| {
                    let sched = Arc::clone(&sched);
                    thread::spawn(move || {
                        let fc = FaultyCollective::new(c, sched);
                        let policy = RetryPolicy::default();
                        let mut outs = Vec::new();
                        for step in 0..2u64 {
                            fc.set_step(step);
                            let mut buf = vec![fc.rank() as f32 + 1.0, 2.0];
                            let out = retry_collective(&policy, || fc.try_all_reduce_sum(&mut buf))
                                .unwrap();
                            outs.push((buf, out.attempts));
                        }
                        (outs, fc.injected_failures())
                    })
                })
                .collect();
            let results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
            for (outs, injected) in &results {
                // Step 0 needed 3 attempts (2 injected failures), step 1 none.
                assert_eq!(outs[0].1, 3, "{backend}");
                assert_eq!(outs[1].1, 1, "{backend}");
                assert_eq!(*injected, 2, "{backend}");
                // Payloads are unperturbed: 1+2+3 = 6 and 3×2 = 6.
                assert_eq!(outs[0].0, vec![6.0, 6.0], "{backend}");
                assert_eq!(outs[1].0, vec![6.0, 6.0], "{backend}");
            }
            assert_eq!(results[0].0, results[1].0, "{backend}: ranks diverged");
        }
    }

    #[test]
    fn schedule_is_identical_across_compiles() {
        let plan = FaultPlan::generate(7, 4, 12.0, 4);
        assert_eq!(plan.compile(12), plan.compile(12));
    }

    #[test]
    fn permanent_loss_is_step_keyed_and_sorted() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    // at_s deliberately disagrees with at_step: at_step wins.
                    at_s: 0.0,
                    duration_s: 0.0,
                    kind: FaultKind::PermanentLoss {
                        rank: 2,
                        at_step: 7,
                    },
                },
                FaultEvent {
                    at_s: 99.0,
                    duration_s: 0.0,
                    kind: FaultKind::PermanentLoss {
                        rank: 1,
                        at_step: 3,
                    },
                },
                FaultEvent {
                    at_s: 0.0,
                    duration_s: 0.0,
                    kind: FaultKind::PermanentLoss {
                        rank: 0,
                        at_step: 50, // beyond the horizon: dropped
                    },
                },
            ],
            ..FaultPlan::default()
        };
        let sched = plan.compile(10);
        assert_eq!(sched.loss_events(), &[(3, 1), (7, 2)]);
        assert!(sched.has_losses());
        assert!(!sched.is_empty());
        assert!(!plan.is_timing_only());
        assert_eq!(plan.permanent_losses(), 3);
    }

    #[test]
    fn generate_corruption_is_deterministic_and_extends_classic() {
        for seed in [0u64, 5, 0xc0de] {
            let a = FaultPlan::generate_corruption(seed, 4, 16.0, 3, 2, 2);
            let b = FaultPlan::generate_corruption(seed, 4, 16.0, 3, 2, 2);
            assert_eq!(a, b, "seed {seed}");
            a.validate();
            assert_eq!(a.corruption_events(), 4);
            // The classic prefix is untouched.
            let classic = FaultPlan::generate(seed, 4, 16.0, 3);
            assert_eq!(&a.events[..3], &classic.events[..]);
            for ev in &a.events[3..] {
                match ev.kind {
                    FaultKind::PayloadBitFlip {
                        rank, at_step, bit, ..
                    } => {
                        assert!(rank < 4 && at_step >= 1);
                        assert!((23..=30).contains(&bit), "flip bit {bit}");
                    }
                    FaultKind::ComputeCorruption { rank, at_step, bit } => {
                        assert!(rank < 4 && at_step >= 1);
                        assert!((23..=30).contains(&bit), "compute bit {bit}");
                    }
                    other => panic!("expected corruption event, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn corruption_events_compile_into_step_tables() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_s: 0.0,
                    duration_s: 0.0,
                    kind: FaultKind::PayloadBitFlip {
                        rank: 1,
                        at_step: 3,
                        element: 7,
                        bit: 30,
                    },
                },
                FaultEvent {
                    at_s: 0.0,
                    duration_s: 0.0,
                    kind: FaultKind::ComputeCorruption {
                        rank: 0,
                        at_step: 5,
                        bit: 24,
                    },
                },
                FaultEvent {
                    at_s: 0.0,
                    duration_s: 0.0,
                    kind: FaultKind::PayloadBitFlip {
                        rank: 2,
                        at_step: 99, // beyond horizon: dropped
                        element: 0,
                        bit: 23,
                    },
                },
            ],
            ..FaultPlan::default()
        };
        let sched = plan.compile(10);
        assert_eq!(sched.payload_flip_at(3), Some((1, 7, 30)));
        assert_eq!(sched.payload_flip_at(4), None);
        assert_eq!(sched.compute_corruption_at(5), Some((0, 24)));
        assert!(sched.has_corruption());
        assert!(!sched.is_empty());
        assert!(!plan.is_timing_only());
    }

    #[test]
    fn payload_flip_is_asymmetric_and_one_shot() {
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 0.0,
                duration_s: 0.0,
                kind: FaultKind::PayloadBitFlip {
                    rank: 1,
                    at_step: 0,
                    element: 0,
                    bit: 30,
                },
            }],
            ..FaultPlan::default()
        };
        let sched = Arc::new(plan.compile(4));
        let world = create_collective(Backend::Tree, 3);
        let joins: Vec<_> = world
            .into_iter()
            .map(|c| {
                let sched = Arc::clone(&sched);
                thread::spawn(move || {
                    let fc = FaultyCollective::new(c, sched);
                    fc.set_step(0);
                    let mut buf = vec![1.0f32, 2.0];
                    fc.try_all_reduce_sum(&mut buf).unwrap();
                    let first = buf.clone();
                    // Retry of the same bucket at the same step: flip
                    // must NOT re-fire, so the retried reduction is clean.
                    let mut buf2 = vec![1.0f32, 2.0];
                    fc.try_all_reduce_sum(&mut buf2).unwrap();
                    (fc.rank(), first, buf2, fc.injected_payload_flips())
                })
            })
            .collect();
        let mut results: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        results.sort_by_key(|r| r.0);
        for (rank, first, retried, flips) in &results {
            assert_eq!(*retried, vec![3.0, 6.0], "rank {rank} retry not clean");
            if *rank == 1 {
                assert_ne!(*first, vec![3.0, 6.0], "rank 1 payload must be flipped");
                assert_eq!(*flips, 1);
            } else {
                assert_eq!(*first, vec![3.0, 6.0], "rank {rank} must stay clean");
                assert_eq!(*flips, 0);
            }
        }
    }

    #[test]
    fn corrupt_payload_error_is_not_transient() {
        let e = CollectiveError::CorruptPayload {
            rank: 2,
            bucket: 1,
            step: 7,
        };
        assert!(!e.is_transient());
        let msg = e.to_string();
        assert!(msg.contains("rank 2") && msg.contains("bucket 1") && msg.contains("step 7"));
        // retry_collective must propagate it immediately, unretried.
        let mut calls = 0;
        let err = retry_collective(&RetryPolicy::default(), || {
            calls += 1;
            Err(CollectiveError::CorruptPayload {
                rank: 2,
                bucket: 1,
                step: 7,
            })
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert!(matches!(err, CollectiveError::CorruptPayload { .. }));
    }

    #[test]
    fn generate_elastic_is_deterministic_and_extends_classic() {
        for seed in [0u64, 3, 0xfeed] {
            let a = FaultPlan::generate_elastic(seed, 8, 16.0, 4, 2);
            let b = FaultPlan::generate_elastic(seed, 8, 16.0, 4, 2);
            assert_eq!(a, b, "seed {seed}");
            a.validate();
            assert_eq!(a.permanent_losses(), 2);
            // The classic prefix is untouched: same seed, same first 4 events.
            let classic = FaultPlan::generate(seed, 8, 16.0, 4);
            assert_eq!(&a.events[..4], &classic.events[..]);
            // Losses land on steps ≥ 1 and name ranks < world.
            for ev in &a.events[4..] {
                match ev.kind {
                    FaultKind::PermanentLoss { rank, at_step } => {
                        assert!(at_step >= 1);
                        assert!(rank < 8);
                    }
                    other => panic!("expected PermanentLoss, got {other:?}"),
                }
            }
        }
    }
}
