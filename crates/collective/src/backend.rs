//! The [`Collective`] trait and its four backends.
//!
//! Consumers (the trainer, BN sync, distributed eval, checkpoint
//! broadcast) talk to a `dyn Collective` and never to a concrete
//! communicator, so the transport can be swapped per experiment:
//!
//! - [`Backend::Tree`] — the deterministic publish-all communicator from
//!   [`crate::comm`]: every member deposits, the last arrival reduces,
//!   everyone reads. Latency scales with a logarithmic tree in the
//!   analytic model; bytes moved per member scale with the full payload.
//! - [`Backend::Ring`] — a pipelined ring over point-to-point channels:
//!   chunks flow down the chain 0 → 1 → … → p−1 accumulating as they go,
//!   then lap the ring back so every member reads the identical bytes.
//!   Each member only touches its own contribution (O(n) adds per member
//!   instead of the tree's O(p·n)).
//! - [`Backend::Torus2d`] — the hierarchical 2-D exchange from
//!   [`crate::hierarchical`]: reduce-scatter along torus rows, all-reduce
//!   down columns on `1/cols` of the payload, all-gather along rows. The
//!   grid is [`crate::topology::canonical_grid`] of the world size — a
//!   pure function of `p`, so after an elastic shrink every survivor
//!   re-selects the same sub-torus. Latency grows with `rows + cols`
//!   instead of the flat ring's `p` — the reason pods don't run one
//!   global ring.
//! - [`Backend::Auto`] — holds all three and picks per call via the α–β
//!   models in [`crate::cost`]: latency-bound payloads take the tree,
//!   bandwidth-bound ones the torus (or the flat ring when the world is
//!   prime). The choice depends only on payload size and world size, so
//!   every rank picks the same transport.
//!
//! **Every backend folds in the same canonical order** — the grid-blocked
//! ascending fold of [`CommHandle::all_reduce_sum_grid`] over the
//! canonical grid of the world (flat ascending fold when the grid has one
//! row). The tree reduces in that order directly, the ring's chain
//! carries a two-segment accumulator that reassociates block sums the
//! same way, and the torus's row/column phases compose to it. All four
//! backends are therefore **bitwise identical**: swapping backends cannot
//! perturb a training trajectory.
//!
//! All backends keep the steady state **allocation-free**: the tree and
//! torus use communicator-persistent round scratch, the ring recycles
//! message buffers through a per-member pool (each step sends one pooled
//! buffer and receives one from the left neighbor — the pool stays
//! balanced). Capacity-growth events are counted and exposed via
//! [`Collective::scratch_reallocs`]; tests pin the counter flat after
//! warmup.

use crate::comm::CommHandle;
use crate::cost::{auto_backend_choice, TPU_V3_LINK};
use crate::fault::CollectiveError;
use crate::hierarchical::{create_grid, GridMember};
use crate::topology::canonical_grid;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which collective transport an experiment uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Deterministic publish-all tree (seed-bitwise-compatible default).
    #[default]
    Tree,
    /// Bandwidth-optimal ring reduce-scatter + all-gather.
    Ring,
    /// Hierarchical 2-D torus: row reduce-scatter, column all-reduce,
    /// row all-gather over the canonical grid of the world size.
    Torus2d,
    /// Per-call tree/ring/torus choice via the α–β cost models.
    Auto,
}

impl Backend {
    /// Stable lowercase name (used in configs and reports).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Tree => "tree",
            Backend::Ring => "ring",
            Backend::Torus2d => "torus2d",
            Backend::Auto => "auto",
        }
    }

    /// All selectable backends, for sweeps and benches.
    pub const ALL: [Backend; 4] = [
        Backend::Tree,
        Backend::Ring,
        Backend::Torus2d,
        Backend::Auto,
    ];
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tree" => Ok(Backend::Tree),
            "ring" => Ok(Backend::Ring),
            "torus2d" => Ok(Backend::Torus2d),
            "auto" => Ok(Backend::Auto),
            other => Err(format!(
                "unknown collective backend {other:?} (tree|ring|torus2d|auto)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Byte/call counters, snapshotted per rank via [`Collective::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectiveStats {
    /// Completed `all_reduce_sum`/`all_reduce_mean` calls.
    pub all_reduce_calls: u64,
    /// Completed `all_gather` calls.
    pub all_gather_calls: u64,
    /// Completed `broadcast` calls.
    pub broadcast_calls: u64,
    /// Completed `barrier` calls.
    pub barrier_calls: u64,
    /// Total payload bytes handed to collectives (f32 count × 4), summed
    /// over all ops. This is the logical payload, not wire traffic — the
    /// ring moves `2·(p−1)/p` of it per member, the tree all of it.
    pub payload_bytes: u64,
}

impl CollectiveStats {
    /// Element-wise sum (used by the auto backend to merge its halves).
    pub fn merged(self, other: CollectiveStats) -> CollectiveStats {
        CollectiveStats {
            all_reduce_calls: self.all_reduce_calls + other.all_reduce_calls,
            all_gather_calls: self.all_gather_calls + other.all_gather_calls,
            broadcast_calls: self.broadcast_calls + other.broadcast_calls,
            barrier_calls: self.barrier_calls + other.barrier_calls,
            payload_bytes: self.payload_bytes + other.payload_bytes,
        }
    }

    /// Total collective calls of any kind.
    pub fn total_calls(&self) -> u64 {
        self.all_reduce_calls + self.all_gather_calls + self.broadcast_calls + self.barrier_calls
    }
}

#[derive(Default)]
struct StatsCell {
    all_reduce_calls: AtomicU64,
    all_gather_calls: AtomicU64,
    broadcast_calls: AtomicU64,
    barrier_calls: AtomicU64,
    payload_bytes: AtomicU64,
}

impl StatsCell {
    fn record(&self, counter: &AtomicU64, elems: usize) {
        counter.fetch_add(1, Ordering::Relaxed);
        self.payload_bytes
            .fetch_add(elems as u64 * 4, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CollectiveStats {
        CollectiveStats {
            all_reduce_calls: self.all_reduce_calls.load(Ordering::Relaxed),
            all_gather_calls: self.all_gather_calls.load(Ordering::Relaxed),
            broadcast_calls: self.broadcast_calls.load(Ordering::Relaxed),
            barrier_calls: self.barrier_calls.load(Ordering::Relaxed),
            payload_bytes: self.payload_bytes.load(Ordering::Relaxed),
        }
    }
}

/// MPI-style collectives over a fixed group of `size` members.
///
/// One object per member; each is owned by exactly one replica thread but
/// must be `Send + Sync` so it can sit inside `Arc<dyn StatSync>` handed
/// to BN layers. All operations are **SPMD**: every member of the group
/// must call the same op in the same order with equal-length payloads.
///
/// Determinism contract: for a fixed backend, world size, and inputs, every
/// operation produces bitwise-identical output on every rank, on every run,
/// regardless of thread scheduling.
pub trait Collective: Send + Sync {
    /// This member's rank within the group.
    fn rank(&self) -> usize;
    /// Number of members.
    fn size(&self) -> usize;
    /// Which backend this object runs.
    fn backend(&self) -> Backend;

    /// In-place sum across all members, deterministic reduction order.
    fn all_reduce_sum(&self, buf: &mut [f32]);

    /// In-place mean across all members.
    fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let inv = 1.0 / self.size() as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }

    /// Gathers every member's `local` into `out`, concatenated in rank
    /// order. `out` is cleared and refilled; reusing the same `out` keeps
    /// the steady state allocation-free.
    fn all_gather(&self, local: &[f32], out: &mut Vec<f32>);

    /// Broadcast from `root`: on return every member's `buf` holds root's.
    fn broadcast(&self, buf: &mut [f32], root: usize);

    /// Returns once every member has arrived.
    fn barrier(&self);

    /// Fallible all-reduce: validates the payload and returns a typed
    /// error instead of panicking on degenerate input. Decorators (e.g.
    /// [`crate::fault::FaultyCollective`]) override this to inject
    /// transient failures **before** the payload touches the transport,
    /// so a failed attempt never partially mutates `buf` and every rank
    /// observes the same outcome (the SPMD contract holds).
    fn try_all_reduce_sum(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        if buf.is_empty() {
            return Err(CollectiveError::EmptyPayload {
                op: "all_reduce_sum",
            });
        }
        self.all_reduce_sum(buf);
        Ok(())
    }

    /// Fallible broadcast: typed errors for out-of-range roots and empty
    /// payloads instead of panics.
    fn try_broadcast(&self, buf: &mut [f32], root: usize) -> Result<(), CollectiveError> {
        if root >= self.size() {
            return Err(CollectiveError::InvalidRoot {
                root,
                size: self.size(),
            });
        }
        if buf.is_empty() {
            return Err(CollectiveError::EmptyPayload { op: "broadcast" });
        }
        self.broadcast(buf, root);
        Ok(())
    }

    /// Fallible all-gather: typed error on an empty local block.
    fn try_all_gather(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), CollectiveError> {
        if local.is_empty() {
            return Err(CollectiveError::EmptyPayload { op: "all_gather" });
        }
        self.all_gather(local, out);
        Ok(())
    }

    /// This member's byte/call counters.
    fn stats(&self) -> CollectiveStats;

    /// Scratch-buffer capacity growths since creation. Flat after warmup
    /// ⇒ the steady state allocates nothing.
    fn scratch_reallocs(&self) -> u64;
}

/// Creates one [`Collective`] per member for a world of `size` ranks.
///
/// Index = rank. All three backends are safe to mix across *different*
/// worlds; within one world every member runs the same backend (the
/// factory guarantees it).
pub fn create_collective(backend: Backend, size: usize) -> Vec<Box<dyn Collective>> {
    assert!(size >= 1, "collective needs at least one member");
    match backend {
        Backend::Tree => CommHandle::create(size)
            .into_iter()
            .map(|h| Box::new(TreeCollective::new(h)) as Box<dyn Collective>)
            .collect(),
        Backend::Ring => create_ring_collectives(size)
            .into_iter()
            .map(|r| Box::new(r) as Box<dyn Collective>)
            .collect(),
        Backend::Torus2d => create_torus_collectives(size)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Collective>)
            .collect(),
        Backend::Auto => {
            // The torus member is only built when the canonical grid is
            // genuinely 2-D; on prime worlds the cost model never picks it.
            let (rows, _) = canonical_grid(size);
            let torus: Vec<Option<Torus2dCollective>> = if rows > 1 {
                create_torus_collectives(size)
                    .into_iter()
                    .map(Some)
                    .collect()
            } else {
                (0..size).map(|_| None).collect()
            };
            CommHandle::create(size)
                .into_iter()
                .zip(create_ring_collectives(size))
                .zip(torus)
                .map(|((h, r), t)| {
                    Box::new(AutoCollective {
                        tree: TreeCollective::new(h),
                        ring: r,
                        torus: t,
                    }) as Box<dyn Collective>
                })
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Tree backend: thin stats-counting wrapper over the zero-alloc CommHandle.
// ---------------------------------------------------------------------------

/// Deterministic publish-all tree backend. Reduces in the canonical
/// grid-blocked ascending order for its world size, so it stays bitwise
/// identical to the ring and torus backends.
pub struct TreeCollective {
    handle: CommHandle,
    /// Canonical fold shape for this world (flat fold when rows == 1).
    fold: (usize, usize),
    stats: StatsCell,
}

impl TreeCollective {
    /// Wraps one member's communicator handle.
    pub fn new(handle: CommHandle) -> Self {
        let fold = canonical_grid(handle.size());
        TreeCollective {
            handle,
            fold,
            stats: StatsCell::default(),
        }
    }
}

impl Collective for TreeCollective {
    fn rank(&self) -> usize {
        self.handle.rank()
    }
    fn size(&self) -> usize {
        self.handle.size()
    }
    fn backend(&self) -> Backend {
        Backend::Tree
    }
    fn all_reduce_sum(&self, buf: &mut [f32]) {
        self.stats.record(&self.stats.all_reduce_calls, buf.len());
        let (rows, cols) = self.fold;
        self.handle.all_reduce_sum_grid(buf, rows, cols);
    }
    fn all_gather(&self, local: &[f32], out: &mut Vec<f32>) {
        self.stats.record(&self.stats.all_gather_calls, local.len());
        self.handle.all_gather_into(local, out);
    }
    fn broadcast(&self, buf: &mut [f32], root: usize) {
        self.stats.record(&self.stats.broadcast_calls, buf.len());
        self.handle.broadcast(buf, root);
    }
    fn barrier(&self) {
        self.stats.record(&self.stats.barrier_calls, 0);
        self.handle.barrier();
    }
    fn stats(&self) -> CollectiveStats {
        self.stats.snapshot()
    }
    fn scratch_reallocs(&self) -> u64 {
        self.handle.scratch_reallocs()
    }
}

// ---------------------------------------------------------------------------
// Ring backend: reduce-scatter + all-gather with pooled message buffers.
// ---------------------------------------------------------------------------

/// Per-member recycled buffers. Each send pops one, each receive pushes
/// one back (message buffers circulate forward around the ring, so the
/// pool stays balanced); after warmup no step allocates.
struct RingScratch {
    pool: Vec<Vec<f32>>,
    /// Per-rank blocks for `all_gather` (index = source rank).
    blocks: Vec<Vec<f32>>,
    reallocs: u64,
}

/// Takes a pooled buffer with at least `cap` capacity (best fit — pools
/// hold at most a handful of buffers), growing one and counting the
/// growth only when nothing in the pool is large enough.
fn pooled(pool: &mut Vec<Vec<f32>>, reallocs: &mut u64, cap: usize) -> Vec<f32> {
    let fit = pool.iter().position(|b| b.capacity() >= cap);
    let mut b = match fit {
        Some(i) => pool.swap_remove(i),
        None => pool.pop().unwrap_or_default(),
    };
    b.clear();
    if b.capacity() < cap {
        *reallocs += 1;
        // `b` is empty, so this reserves a capacity of exactly `cap`.
        b.reserve_exact(cap);
    }
    b
}

/// Pipelined ring backend whose reduction uses the canonical
/// ascending-rank fold (bitwise identical to [`TreeCollective`]).
pub struct RingCollective {
    rank: usize,
    size: usize,
    /// Block width of the canonical grid fold (== `size` when the
    /// canonical grid has one row, making the fold flat).
    fold_cols: usize,
    to_right: Sender<Vec<f32>>,
    from_left: Receiver<Vec<f32>>,
    scratch: Mutex<RingScratch>,
    stats: StatsCell,
}

/// Creates the ring world: member `r` sends to `(r+1) % size`.
pub fn create_ring_collectives(size: usize) -> Vec<RingCollective> {
    assert!(size >= 1);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        // Unbounded so rank 0 can feed a whole round's chunks into the
        // pipeline before turning around to drain the broadcast lap; the
        // in-flight volume is bounded by the payload itself.
        let (tx, rx) = unbounded::<Vec<f32>>();
        senders.push(tx);
        receivers.push(rx);
    }
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = receivers.into_iter().map(Some).collect();
    let fold_cols = canonical_grid(size).1;
    (0..size)
        .map(|rank| RingCollective {
            rank,
            size,
            fold_cols,
            to_right: senders[(rank + 1) % size].clone(),
            from_left: receivers[rank].take().unwrap(),
            scratch: Mutex::new(RingScratch {
                pool: Vec::new(),
                blocks: (0..size).map(|_| Vec::new()).collect(),
                reallocs: 0,
            }),
            stats: StatsCell::default(),
        })
        .collect()
}

impl RingCollective {
    /// Chunk `c` of an `n`-element buffer covers `bounds(c, n).0 ..
    /// bounds(c, n).1`; the first `n % size` chunks get one extra element.
    fn bounds(&self, chunk: usize, n: usize) -> (usize, usize) {
        let p = self.size;
        let base = n / p;
        let rem = n % p;
        let start = chunk * base + chunk.min(rem);
        let len = base + usize::from(chunk < rem);
        (start, start + len)
    }

    fn send(&self, msg: Vec<f32>) {
        self.to_right.send(msg).expect("ring peer hung up");
    }

    fn recv(&self) -> Vec<f32> {
        self.from_left.recv().expect("ring peer hung up")
    }
}

impl Collective for RingCollective {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.size
    }
    fn backend(&self) -> Backend {
        Backend::Ring
    }

    /// Pipelined ring all-reduce with the **canonical grid-blocked
    /// fold**: chunk `c` (remainder-first bounds) enters the chain at
    /// rank 0 and flows 0 → 1 → … → p−1. The message carries a running
    /// block-sum accumulator plus, inside each block of `fold_cols`
    /// consecutive ranks, an in-progress block partial: block heads open
    /// a fresh partial segment, interiors fold their term into it in
    /// ascending rank order, and block tails fold the finished partial
    /// into the accumulator. The result reassociates exactly like
    /// [`CommHandle::all_reduce_sum_grid`], so the ring stays **bitwise
    /// identical** to the tree and torus backends (a flat ascending fold
    /// when the canonical grid has one row). The finalized chunk then
    /// laps the ring (p−1 → 0 → … → p−1 → 0) so every member copies the
    /// identical bytes and the message buffer lands back in rank 0's
    /// pool (every member's pool stays balanced; after warmup no round
    /// allocates).
    fn all_reduce_sum(&self, buf: &mut [f32]) {
        self.stats.record(&self.stats.all_reduce_calls, buf.len());
        let p = self.size;
        if p == 1 {
            return;
        }
        let n = buf.len();
        let chunks = p; // pipeline granularity: one chunk per member
        let cols = self.fold_cols;
        let mut sc = self.scratch.lock();
        let RingScratch { pool, reallocs, .. } = &mut *sc;
        if self.rank == 0 {
            // Head of the chain: feed raw chunks in ascending order…
            for c in 0..chunks {
                let (a, b) = self.bounds(c, n);
                let mut msg = pooled(pool, reallocs, b - a);
                msg.extend_from_slice(&buf[a..b]);
                self.send(msg);
            }
            // …then copy each finalized chunk and forward it onward…
            for c in 0..chunks {
                let m = self.recv();
                let (a, b) = self.bounds(c, n);
                assert_eq!(m.len(), b - a, "mismatched all-reduce lengths");
                buf[a..b].copy_from_slice(&m);
                self.send(m);
            }
            // …and recycle the buffers when the lap completes.
            for _ in 0..chunks {
                let m = self.recv();
                pool.push(m);
            }
        } else {
            let block = self.rank / cols;
            let pos = self.rank % cols;
            for c in 0..chunks {
                let mut m = self.recv();
                let (a, b) = self.bounds(c, n);
                let l = b - a;
                if block == 0 {
                    // Inside the first block the message is the bare
                    // running partial — fold own term in.
                    assert_eq!(m.len(), l, "mismatched all-reduce lengths");
                    for (acc, &x) in m.iter_mut().zip(&buf[a..b]) {
                        *acc += x;
                    }
                } else if pos == 0 {
                    // Block head: the finalized accumulator over blocks
                    // 0..block arrives; open this block's partial segment
                    // behind it. The buffer grows to 2·l once during
                    // warmup and keeps that capacity as it circulates.
                    assert_eq!(m.len(), l, "mismatched all-reduce lengths");
                    if m.capacity() < 2 * l {
                        *reallocs += 1;
                    }
                    m.extend_from_slice(&buf[a..b]);
                } else {
                    // Interior or tail of a later block: fold own term
                    // into the partial segment…
                    assert_eq!(m.len(), 2 * l, "mismatched all-reduce lengths");
                    let (acc, part) = m.split_at_mut(l);
                    for (pp, &x) in part.iter_mut().zip(&buf[a..b]) {
                        *pp += x;
                    }
                    // …and at the tail fold the finished block sum into
                    // the accumulator (ascending block order).
                    if pos == cols - 1 {
                        for (aa, &pp) in acc.iter_mut().zip(part.iter()) {
                            *aa += pp;
                        }
                        m.truncate(l);
                    }
                }
                if self.rank == p - 1 {
                    // Final tail: the fold is complete; keep the result
                    // and start the broadcast lap.
                    buf[a..b].copy_from_slice(&m[..l]);
                }
                self.send(m);
            }
            if self.rank < p - 1 {
                // Broadcast lap: copy the finalized chunk, pass it on.
                for c in 0..chunks {
                    let m = self.recv();
                    let (a, b) = self.bounds(c, n);
                    buf[a..b].copy_from_slice(&m);
                    self.send(m);
                }
            } else {
                // Forward the returning buffers to rank 0's pool.
                for _ in 0..chunks {
                    let m = self.recv();
                    self.send(m);
                }
            }
        }
    }

    /// Ring all-gather: every member's block circulates `p−1` steps.
    /// Blocks may have different lengths (messages carry their own size).
    fn all_gather(&self, local: &[f32], out: &mut Vec<f32>) {
        self.stats.record(&self.stats.all_gather_calls, local.len());
        let p = self.size;
        if p == 1 {
            out.clear();
            out.extend_from_slice(local);
            return;
        }
        let mut sc = self.scratch.lock();
        let RingScratch {
            pool,
            blocks,
            reallocs,
        } = &mut *sc;
        {
            let mine = &mut blocks[self.rank];
            if mine.capacity() < local.len() {
                *reallocs += 1;
            }
            mine.clear();
            mine.extend_from_slice(local);
        }
        for s in 0..p - 1 {
            let send_idx = (self.rank + p - s) % p;
            let mut msg = pooled(pool, reallocs, blocks[send_idx].len());
            msg.extend_from_slice(&blocks[send_idx]);
            self.send(msg);
            let incoming = self.recv();
            let recv_idx = (self.rank + p - s - 1) % p;
            // Keep the received block; recycle the one it displaces.
            let displaced = std::mem::replace(&mut blocks[recv_idx], incoming);
            pool.push(displaced);
        }
        out.clear();
        for block in blocks.iter() {
            out.extend_from_slice(block);
        }
    }

    /// Ring broadcast: the payload makes one full lap starting at `root`
    /// so the message buffer returns to the root's pool (keeps every
    /// member's pool balanced — no rank leaks or hoards buffers).
    fn broadcast(&self, buf: &mut [f32], root: usize) {
        assert!(root < self.size, "broadcast root out of range");
        self.stats.record(&self.stats.broadcast_calls, buf.len());
        if self.size == 1 {
            return;
        }
        if self.rank == root {
            let mut sc = self.scratch.lock();
            let RingScratch { pool, reallocs, .. } = &mut *sc;
            let mut msg = pooled(pool, reallocs, buf.len());
            msg.extend_from_slice(buf);
            drop(sc);
            self.send(msg);
            let returned = self.recv();
            self.scratch.lock().pool.push(returned);
        } else {
            let incoming = self.recv();
            assert_eq!(incoming.len(), buf.len(), "mismatched broadcast lengths");
            buf.copy_from_slice(&incoming);
            self.send(incoming);
        }
    }

    /// Token lap: rank `r`'s final receive transitively depends on every
    /// member's first send, so no member returns before all have arrived.
    fn barrier(&self) {
        self.stats.record(&self.stats.barrier_calls, 0);
        let p = self.size;
        if p == 1 {
            return;
        }
        for _ in 0..p - 1 {
            let token = {
                let mut sc = self.scratch.lock();
                let RingScratch { pool, reallocs, .. } = &mut *sc;
                pooled(pool, reallocs, 0)
            };
            self.send(token);
            let incoming = self.recv();
            self.scratch.lock().pool.push(incoming);
        }
    }

    fn stats(&self) -> CollectiveStats {
        self.stats.snapshot()
    }

    fn scratch_reallocs(&self) -> u64 {
        self.scratch.lock().reallocs
    }
}

// ---------------------------------------------------------------------------
// Torus-2d backend: hierarchical row/column exchange over the canonical grid.
// ---------------------------------------------------------------------------

/// Hierarchical 2-D torus backend: all operations compose per-row and
/// per-column exchanges over the [`canonical_grid`] of the world size.
/// The all-reduce is [`GridMember::all_reduce_sum`] — a true row
/// reduce-scatter, column all-reduce, row all-gather — whose two
/// ascending folds compose to the canonical grid-blocked fold, keeping
/// it bitwise identical to the tree and ring backends.
pub struct Torus2dCollective {
    grid: GridMember,
    /// Persistent row-gather staging buffer for `all_gather`.
    gather: Mutex<Vec<f32>>,
    stats: StatsCell,
}

/// Creates the torus world for `size` ranks over its canonical grid
/// (row-major: rank = row_index · cols + col_index).
pub fn create_torus_collectives(size: usize) -> Vec<Torus2dCollective> {
    assert!(size >= 1);
    let (rows, cols) = canonical_grid(size);
    create_grid(rows, cols)
        .into_iter()
        .map(|grid| Torus2dCollective {
            grid,
            gather: Mutex::new(Vec::new()),
            stats: StatsCell::default(),
        })
        .collect()
}

impl Torus2dCollective {
    /// The grid this world routes over.
    pub fn shape(&self) -> (usize, usize) {
        self.grid.shape()
    }
}

impl Collective for Torus2dCollective {
    fn rank(&self) -> usize {
        self.grid.global_rank()
    }
    fn size(&self) -> usize {
        let (rows, cols) = self.grid.shape();
        rows * cols
    }
    fn backend(&self) -> Backend {
        Backend::Torus2d
    }

    fn all_reduce_sum(&self, buf: &mut [f32]) {
        self.stats.record(&self.stats.all_reduce_calls, buf.len());
        self.grid.all_reduce_sum(buf);
    }

    /// Two-level gather: the row concatenates its members' blocks (rank
    /// order within the row), then the column concatenates the row
    /// blocks (ascending row order) — row-major, i.e. global rank order.
    fn all_gather(&self, local: &[f32], out: &mut Vec<f32>) {
        self.stats.record(&self.stats.all_gather_calls, local.len());
        let mut row_block = self.gather.lock();
        self.grid.row.all_gather_into(local, &mut row_block);
        self.grid.col.all_gather_into(&row_block, out);
    }

    /// Root's column fans the payload out vertically (only that column
    /// participates — per-communicator SPMD holds because each column is
    /// its own communicator), then every row fans it out horizontally.
    fn broadcast(&self, buf: &mut [f32], root: usize) {
        assert!(root < self.size(), "broadcast root out of range");
        self.stats.record(&self.stats.broadcast_calls, buf.len());
        let (_, cols) = self.grid.shape();
        let (root_row, root_col) = (root / cols, root % cols);
        if self.grid.row.rank() == root_col {
            self.grid.col.broadcast(buf, root_row);
        }
        self.grid.row.broadcast(buf, root_col);
    }

    /// Row barrier then column barrier: after the row phase every member
    /// of each row has arrived; the column phase transitively covers all
    /// rows, so no member returns before the whole grid has arrived.
    fn barrier(&self) {
        self.stats.record(&self.stats.barrier_calls, 0);
        self.grid.row.barrier();
        self.grid.col.barrier();
    }

    fn stats(&self) -> CollectiveStats {
        self.stats.snapshot()
    }

    fn scratch_reallocs(&self) -> u64 {
        self.grid.shard_reallocs()
            + self.grid.row.scratch_reallocs()
            + self.grid.col.scratch_reallocs()
    }
}

// ---------------------------------------------------------------------------
// Auto backend: per-call tree/ring/torus choice via the α–β cost models.
// ---------------------------------------------------------------------------

/// Routes each call to tree, ring, or torus by payload size via
/// [`auto_backend_choice`]. The decision is a pure function of
/// `(payload bytes, world size)`, so every rank makes the same choice
/// and the group never splits across transports.
pub struct AutoCollective {
    tree: TreeCollective,
    ring: RingCollective,
    /// Only built when the canonical grid is 2-D (`None` on prime and
    /// tiny worlds, where the cost model never picks the torus).
    torus: Option<Torus2dCollective>,
}

impl AutoCollective {
    /// Which backend a payload of `elems` f32s takes.
    pub fn chosen(&self, elems: usize) -> Backend {
        let choice = auto_backend_choice((elems * 4) as f64, self.tree.size(), TPU_V3_LINK);
        match choice {
            Backend::Torus2d if self.torus.is_none() => Backend::Ring,
            other => other,
        }
    }

    fn route(&self, elems: usize) -> &dyn Collective {
        match self.chosen(elems) {
            Backend::Ring => &self.ring,
            Backend::Torus2d => self.torus.as_ref().expect("torus chosen only when built"),
            _ => &self.tree,
        }
    }
}

impl Collective for AutoCollective {
    fn rank(&self) -> usize {
        self.tree.rank()
    }
    fn size(&self) -> usize {
        self.tree.size()
    }
    fn backend(&self) -> Backend {
        Backend::Auto
    }
    fn all_reduce_sum(&self, buf: &mut [f32]) {
        self.route(buf.len()).all_reduce_sum(buf);
    }
    fn all_gather(&self, local: &[f32], out: &mut Vec<f32>) {
        self.route(local.len()).all_gather(local, out);
    }
    fn broadcast(&self, buf: &mut [f32], root: usize) {
        self.route(buf.len()).broadcast(buf, root);
    }
    fn barrier(&self) {
        // Latency-bound by construction: always the tree.
        self.tree.barrier();
    }
    fn stats(&self) -> CollectiveStats {
        let base = self.tree.stats().merged(self.ring.stats());
        match &self.torus {
            Some(t) => base.merged(t.stats()),
            None => base,
        }
    }
    fn scratch_reallocs(&self) -> u64 {
        self.tree.scratch_reallocs()
            + self.ring.scratch_reallocs()
            + self.torus.as_ref().map_or(0, |t| t.scratch_reallocs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<F, R>(world: Vec<Box<dyn Collective>>, f: F) -> Vec<R>
    where
        F: Fn(Box<dyn Collective>) -> R + Send + Sync + Clone + 'static,
        R: Send + 'static,
    {
        let joins: Vec<_> = world
            .into_iter()
            .map(|c| {
                let f = f.clone();
                thread::spawn(move || f(c))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    fn seed_buf(rank: usize, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((rank * 37 + i * 13) % 101) as f32 * 0.125 - 6.0)
            .collect()
    }

    fn all_reduce_results(backend: Backend, p: usize, n: usize) -> Vec<Vec<f32>> {
        run_world(create_collective(backend, p), move |c| {
            let mut buf = seed_buf(c.rank(), n);
            c.all_reduce_sum(&mut buf);
            buf
        })
    }

    #[test]
    fn backends_agree_within_tolerance() {
        for &p in &[1usize, 2, 3, 4, 8] {
            for &n in &[1usize, 7, 64, 1000] {
                let tree = all_reduce_results(Backend::Tree, p, n);
                let ring = all_reduce_results(Backend::Ring, p, n);
                let torus = all_reduce_results(Backend::Torus2d, p, n);
                let auto = all_reduce_results(Backend::Auto, p, n);
                for r in 0..p {
                    for i in 0..n {
                        assert!(
                            (tree[r][i] - ring[r][i]).abs() < 1e-5,
                            "p={p} n={n} rank={r} i={i}: tree {} vs ring {}",
                            tree[r][i],
                            ring[r][i]
                        );
                        assert!((tree[r][i] - torus[r][i]).abs() < 1e-5);
                        assert!((tree[r][i] - auto[r][i]).abs() < 1e-5);
                    }
                }
            }
        }
    }

    #[test]
    fn ring_and_torus_are_bitwise_identical_to_tree() {
        // The canonical grid-blocked fold: all backends associate sums
        // identically, so swapping backends cannot perturb a training
        // trajectory — the trainer's backend-equivalence acceptance
        // rests on this. Worlds cover flat folds (1–3), square and
        // rectangular grids (4, 8, 16), and n values that leave uneven
        // ring chunks and empty torus shards.
        for &p in &[1usize, 2, 3, 4, 8, 16] {
            for &n in &[1usize, 7, 64, 1000] {
                let tree = all_reduce_results(Backend::Tree, p, n);
                let ring = all_reduce_results(Backend::Ring, p, n);
                let torus = all_reduce_results(Backend::Torus2d, p, n);
                assert_eq!(tree, ring, "p={p} n={n}: ring broke the canonical fold");
                assert_eq!(tree, torus, "p={p} n={n}: torus broke the canonical fold");
            }
        }
    }

    #[test]
    fn every_backend_is_cross_replica_bitwise_identical() {
        for backend in Backend::ALL {
            let results = all_reduce_results(backend, 4, 37);
            for r in 1..4 {
                assert_eq!(
                    results[0], results[r],
                    "{backend} rank {r} diverged from rank 0"
                );
            }
        }
    }

    #[test]
    fn every_backend_is_run_to_run_bitwise_reproducible() {
        for backend in Backend::ALL {
            let a = all_reduce_results(backend, 4, 129);
            let b = all_reduce_results(backend, 4, 129);
            assert_eq!(a, b, "{backend} not reproducible across runs");
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        for backend in Backend::ALL {
            let p = 4;
            let results = run_world(create_collective(backend, p), move |c| {
                let local = vec![c.rank() as f32; 3];
                let mut out = Vec::new();
                c.all_gather(&local, &mut out);
                out
            });
            let expected: Vec<f32> = (0..p).flat_map(|r| vec![r as f32; 3]).collect();
            for r in results {
                assert_eq!(r, expected, "{backend}");
            }
        }
    }

    #[test]
    fn broadcast_distributes_roots_payload() {
        for backend in Backend::ALL {
            let results = run_world(create_collective(backend, 4), move |c| {
                let mut buf = if c.rank() == 2 {
                    vec![3.5, -1.25, 8.0]
                } else {
                    vec![0.0; 3]
                };
                c.broadcast(&mut buf, 2);
                buf
            });
            for r in results {
                assert_eq!(r, vec![3.5, -1.25, 8.0], "{backend}");
            }
        }
    }

    #[test]
    fn barrier_and_sequenced_ops_interleave_safely() {
        for backend in Backend::ALL {
            let results = run_world(create_collective(backend, 3), move |c| {
                let mut buf = vec![c.rank() as f32 + 1.0];
                c.barrier();
                c.all_reduce_sum(&mut buf);
                c.barrier();
                let mut out = Vec::new();
                c.all_gather(&buf, &mut out);
                out
            });
            for r in results {
                assert_eq!(r, vec![6.0, 6.0, 6.0], "{backend}");
            }
        }
    }

    #[test]
    fn stats_count_calls_and_bytes() {
        for backend in Backend::ALL {
            let results = run_world(create_collective(backend, 2), move |c| {
                let mut buf = vec![1.0; 10];
                c.all_reduce_sum(&mut buf);
                c.all_reduce_mean(&mut buf);
                let mut out = Vec::new();
                c.all_gather(&buf[..5], &mut out);
                c.broadcast(&mut buf, 0);
                c.barrier();
                c.stats()
            });
            for s in results {
                assert_eq!(s.all_reduce_calls, 2, "{backend}");
                assert_eq!(s.all_gather_calls, 1, "{backend}");
                assert_eq!(s.broadcast_calls, 1, "{backend}");
                assert_eq!(s.barrier_calls, 1, "{backend}");
                // 10 + 10 + 5 + 10 elements × 4 bytes.
                assert_eq!(s.payload_bytes, 35 * 4, "{backend}");
            }
        }
    }

    #[test]
    fn ring_steady_state_does_not_reallocate() {
        let results = run_world(create_collective(Backend::Ring, 4), move |c| {
            let mut buf = seed_buf(c.rank(), 257);
            let mut out = Vec::new();
            let round = |buf: &mut Vec<f32>, out: &mut Vec<f32>| {
                c.all_reduce_sum(buf);
                c.all_gather(&buf[..64], out);
                c.broadcast(buf, 1);
                c.barrier();
            };
            // Warm up generously: pool buffers migrate forward around the
            // ring, so capacity upgrades can trickle in for a few rounds
            // after the first. Upgrades are bounded by the (tiny) pool
            // population, so a fixed warmup reaches the plateau. The
            // warmup length must be identical on every rank — collectives
            // are SPMD, and a data-dependent round count would deadlock.
            for _ in 0..20 {
                round(&mut buf, &mut out);
            }
            let warm = c.scratch_reallocs();
            for _ in 0..100 {
                round(&mut buf, &mut out);
            }
            (warm, c.scratch_reallocs())
        });
        for (warm, steady) in results {
            assert_eq!(warm, steady, "ring backend allocated after warmup");
        }
    }

    #[test]
    fn auto_routes_by_payload_and_world_shape() {
        // Composite world: small payloads are latency-bound (tree);
        // large ones are bandwidth-bound, and the canonical grid's
        // 2(rows+cols−2) hops beat the flat ring's 2(p−1) — torus.
        let tree = CommHandle::create(8).remove(0);
        let ring = create_ring_collectives(8).remove(0);
        let torus = create_torus_collectives(8).remove(0);
        let auto = AutoCollective {
            tree: TreeCollective::new(tree),
            ring,
            torus: Some(torus),
        };
        assert_eq!(auto.chosen(1), Backend::Tree);
        assert_eq!(auto.chosen(25_000_000), Backend::Torus2d);
        // Prime world: no 2-D grid exists, so large payloads fall back
        // to the flat ring (and the factory builds no torus member).
        let tree = CommHandle::create(7).remove(0);
        let ring = create_ring_collectives(7).remove(0);
        let auto = AutoCollective {
            tree: TreeCollective::new(tree),
            ring,
            torus: None,
        };
        assert_eq!(auto.chosen(1), Backend::Tree);
        assert_eq!(auto.chosen(25_000_000), Backend::Ring);
    }

    #[test]
    fn torus_shape_is_the_canonical_grid() {
        for p in [1usize, 2, 4, 6, 8, 12, 16] {
            let world = create_torus_collectives(p);
            assert_eq!(world.len(), p);
            for (rank, t) in world.iter().enumerate() {
                assert_eq!(t.shape(), canonical_grid(p), "p={p}");
                assert_eq!(t.rank(), rank, "row-major rank order");
                assert_eq!(t.size(), p);
            }
        }
    }

    #[test]
    fn torus_steady_state_does_not_reallocate() {
        let results = run_world(create_collective(Backend::Torus2d, 4), move |c| {
            let mut buf = seed_buf(c.rank(), 257);
            let mut out = Vec::new();
            let round = |buf: &mut Vec<f32>, out: &mut Vec<f32>| {
                c.all_reduce_sum(buf);
                c.all_gather(&buf[..64], out);
                c.broadcast(buf, 1);
                c.barrier();
            };
            for _ in 0..5 {
                round(&mut buf, &mut out);
            }
            let warm = c.scratch_reallocs();
            for _ in 0..100 {
                round(&mut buf, &mut out);
            }
            (warm, c.scratch_reallocs())
        });
        for (warm, steady) in results {
            assert_eq!(warm, steady, "torus backend allocated after warmup");
        }
    }

    #[test]
    fn size_one_worlds_are_identity() {
        for backend in Backend::ALL {
            let mut world = create_collective(backend, 1);
            let c = world.pop().unwrap();
            let mut buf = vec![2.0, 4.0];
            c.all_reduce_sum(&mut buf);
            assert_eq!(buf, vec![2.0, 4.0]);
            c.all_reduce_mean(&mut buf);
            assert_eq!(buf, vec![2.0, 4.0]);
            let mut out = Vec::new();
            c.all_gather(&buf, &mut out);
            assert_eq!(out, vec![2.0, 4.0]);
            c.broadcast(&mut buf, 0);
            c.barrier();
        }
    }

    #[test]
    fn backend_round_trips_through_str() {
        for backend in Backend::ALL {
            let name = backend.name();
            assert_eq!(name.parse::<Backend>().unwrap(), backend);
        }
        assert!("mesh".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Tree);
    }
}
