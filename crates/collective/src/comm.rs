//! Shared-memory collectives for in-process replicas.
//!
//! The distributed trainer runs each replica on its own thread; these
//! communicators give them MPI-style collectives with **deterministic
//! reduction order** — contributions are always combined in ascending rank
//! order, so floating-point sums are bitwise reproducible regardless of
//! thread scheduling.
//!
//! The core primitive is `exchange`: every member deposits its
//! contribution, the last arrival publishes the full set, and everyone
//! reads it. All-reduce, all-gather, and broadcast derive from it. A
//! generation counter lets the same communicator be reused for thousands
//! of rounds (one per conv layer per step) without re-allocation races.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct CommState {
    /// Contributions for the current round, indexed by member position.
    slots: Vec<Option<Vec<f32>>>,
    arrived: usize,
    /// Published result of the completed round.
    published: Option<Arc<Vec<Vec<f32>>>>,
    readers_left: usize,
    generation: u64,
}

struct CommInner {
    size: usize,
    state: Mutex<CommState>,
    cv: Condvar,
}

/// One participant's handle to a communicator of `size` members.
///
/// Handles are cheap to clone-construct at creation time (one per member);
/// each is `Send` and used by exactly one thread.
pub struct CommHandle {
    rank: usize,
    inner: Arc<CommInner>,
}

impl CommHandle {
    /// Creates a communicator with `size` members, returning one handle per
    /// member (index = member rank within this communicator).
    pub fn create(size: usize) -> Vec<CommHandle> {
        assert!(size >= 1, "communicator needs at least one member");
        let inner = Arc::new(CommInner {
            size,
            state: Mutex::new(CommState {
                slots: (0..size).map(|_| None).collect(),
                arrived: 0,
                published: None,
                readers_left: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        });
        (0..size)
            .map(|rank| CommHandle {
                rank,
                inner: Arc::clone(&inner),
            })
            .collect()
    }

    /// This member's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Deposits `contribution` and returns every member's contribution
    /// (indexed by rank) once all have arrived.
    pub fn exchange(&self, contribution: Vec<f32>) -> Arc<Vec<Vec<f32>>> {
        let inner = &*self.inner;
        if inner.size == 1 {
            return Arc::new(vec![contribution]);
        }
        let mut st = inner.state.lock();
        // Wait for the previous round to fully drain before starting a new
        // one (a fast member could lap slow readers otherwise).
        while st.readers_left > 0 {
            inner.cv.wait(&mut st);
        }
        let my_gen = st.generation;
        debug_assert!(st.slots[self.rank].is_none(), "double deposit by rank {}", self.rank);
        st.slots[self.rank] = Some(contribution);
        st.arrived += 1;
        if st.arrived == inner.size {
            // Last arrival publishes, in rank order by construction.
            let all: Vec<Vec<f32>> = st.slots.iter_mut().map(|s| s.take().unwrap()).collect();
            st.published = Some(Arc::new(all));
            st.arrived = 0;
            st.readers_left = inner.size;
            st.generation += 1;
            inner.cv.notify_all();
        } else {
            while st.generation == my_gen {
                inner.cv.wait(&mut st);
            }
        }
        let out = Arc::clone(st.published.as_ref().expect("published result"));
        st.readers_left -= 1;
        if st.readers_left == 0 {
            st.published = None;
            inner.cv.notify_all();
        }
        out
    }

    /// In-place sum all-reduce with ascending-rank reduction order.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        if self.inner.size == 1 {
            return;
        }
        let all = self.exchange(buf.to_vec());
        buf.iter_mut().for_each(|v| *v = 0.0);
        for contrib in all.iter() {
            debug_assert_eq!(contrib.len(), buf.len(), "mismatched all-reduce lengths");
            for (acc, &x) in buf.iter_mut().zip(contrib) {
                *acc += x;
            }
        }
    }

    /// In-place mean all-reduce.
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let inv = 1.0 / self.inner.size as f32;
        buf.iter_mut().for_each(|v| *v *= inv);
    }

    /// Gathers every member's `local` slice, concatenated in rank order.
    pub fn all_gather(&self, local: &[f32]) -> Vec<f32> {
        let all = self.exchange(local.to_vec());
        let mut out = Vec::with_capacity(local.len() * self.inner.size);
        for contrib in all.iter() {
            out.extend_from_slice(contrib);
        }
        out
    }

    /// Broadcast from `root`: on return every member's `buf` holds root's.
    pub fn broadcast(&self, buf: &mut [f32], root: usize) {
        assert!(root < self.inner.size, "broadcast root out of range");
        if self.inner.size == 1 {
            return;
        }
        // Non-roots contribute empty vectors to keep the exchange cheap.
        let contribution = if self.rank == root { buf.to_vec() } else { Vec::new() };
        let all = self.exchange(contribution);
        if self.rank != root {
            buf.copy_from_slice(&all[root]);
        }
    }

    /// Barrier: returns once every member has arrived.
    pub fn barrier(&self) {
        let _ = self.exchange(Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_replicas<F, R>(n: usize, f: F) -> Vec<R>
    where
        F: Fn(CommHandle) -> R + Send + Sync + Clone + 'static,
        R: Send + 'static,
    {
        let handles = CommHandle::create(n);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let f = f.clone();
                thread::spawn(move || f(h))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let results = run_replicas(4, |h| {
            let mut buf = vec![h.rank() as f32, 1.0];
            h.all_reduce_sum(&mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_mean_averages() {
        let results = run_replicas(4, |h| {
            let mut buf = vec![(h.rank() * 2) as f32];
            h.all_reduce_mean(&mut buf);
            buf[0]
        });
        for r in results {
            assert!((r - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn repeated_rounds_do_not_cross_talk() {
        let results = run_replicas(3, |h| {
            let mut out = Vec::new();
            for round in 0..50 {
                let mut buf = vec![(h.rank() + round) as f32];
                h.all_reduce_sum(&mut buf);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                let expected = (0 + round) + (1 + round) + (2 + round);
                assert_eq!(v, expected as f32, "round {round}");
            }
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let results = run_replicas(3, |h| {
            h.all_gather(&[h.rank() as f32 * 10.0, h.rank() as f32 * 10.0 + 1.0])
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        }
    }

    #[test]
    fn broadcast_copies_root() {
        let results = run_replicas(4, |h| {
            let mut buf = if h.rank() == 2 {
                vec![7.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            h.broadcast(&mut buf, 2);
            buf
        });
        for r in results {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn singleton_communicator_is_identity() {
        let mut hs = CommHandle::create(1);
        let h = hs.pop().unwrap();
        let mut buf = vec![3.0];
        h.all_reduce_sum(&mut buf);
        assert_eq!(buf, vec![3.0]);
        h.barrier();
    }

    #[test]
    fn deterministic_sum_order() {
        // With adversarial magnitudes, the deterministic ascending-rank
        // order must give the same result across many runs even though
        // thread arrival order varies.
        let golden = run_replicas(4, |h| {
            let vals = [1e8f32, 1.0, -1e8, 0.5];
            let mut buf = vec![vals[h.rank()]];
            h.all_reduce_sum(&mut buf);
            buf[0]
        })[0];
        for _ in 0..20 {
            let r = run_replicas(4, |h| {
                let vals = [1e8f32, 1.0, -1e8, 0.5];
                let mut buf = vec![vals[h.rank()]];
                h.all_reduce_sum(&mut buf);
                buf[0]
            });
            for v in r {
                assert_eq!(v.to_bits(), golden.to_bits(), "bitwise reproducible");
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let handles = CommHandle::create(4);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    h.barrier();
                    // After the barrier, all increments must be visible.
                    assert_eq!(c.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
    }
}
