//! Shared-memory collectives for in-process replicas.
//!
//! The distributed trainer runs each replica on its own thread; these
//! communicators give them MPI-style collectives with **deterministic
//! reduction order** — contributions are always combined in ascending rank
//! order, so floating-point sums are bitwise reproducible regardless of
//! thread scheduling.
//!
//! Two mechanisms coexist:
//!
//! - [`CommHandle::exchange`] — the legacy publish-all primitive: every
//!   member deposits its contribution (an owned `Vec`), the last arrival
//!   publishes the full set, and everyone reads it. Kept for tests and
//!   benchmarks that want the raw contribution set.
//! - The collective operations (`all_reduce_sum`, `all_gather_into`,
//!   `broadcast`, `barrier`) — these run on a **persistent round scratch**:
//!   per-rank slot buffers and a shared result buffer owned by the
//!   communicator are reused round after round, so the steady state
//!   performs **no heap allocation** (a BN layer syncs once per conv layer
//!   per step — thousands of rounds per step). Capacity growth is counted
//!   in [`CommHandle::scratch_reallocs`], which a test pins to zero after
//!   warmup.
//!
//! A generation counter lets the same communicator be reused for thousands
//! of rounds without re-allocation races.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Persistent zero-alloc round state for the collective operations.
struct RoundScratch {
    /// Per-rank contribution buffers, reused every round.
    slots: Vec<Vec<f32>>,
    /// Double-deposit guards, reset when a round publishes.
    deposited: Vec<bool>,
    /// Reduced / gathered / broadcast payload of the completed round.
    result: Vec<f32>,
    /// Per-block partial sums for the grid-blocked fold, reused every round.
    partial: Vec<f32>,
    arrived: usize,
    readers_left: usize,
    generation: u64,
    /// Number of scratch-buffer capacity growths since creation. Constant
    /// once buffer sizes stabilize — the zero-alloc steady-state counter.
    reallocs: u64,
}

impl RoundScratch {
    fn new(size: usize) -> Self {
        RoundScratch {
            slots: (0..size).map(|_| Vec::new()).collect(),
            deposited: vec![false; size],
            result: Vec::new(),
            partial: Vec::new(),
            arrived: 0,
            readers_left: 0,
            generation: 0,
            reallocs: 0,
        }
    }
}

/// Byte range `[start, end)` of part `i` when `n` elements are split into
/// `parts` near-equal shards, remainder spread over the leading parts —
/// the shard layout [`CommHandle::reduce_scatter_sum`] commits to.
pub fn shard_bounds(n: usize, parts: usize, i: usize) -> (usize, usize) {
    assert!(i < parts, "shard index out of range");
    let base = n / parts;
    let rem = n % parts;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    (start, start + len)
}

/// Copies `src` into the persistent buffer `dst`, reporting whether the
/// buffer had to grow (an allocation — only expected during warmup).
fn fill_scratch(dst: &mut Vec<f32>, src: &[f32]) -> bool {
    let grew = dst.capacity() < src.len();
    dst.clear();
    dst.extend_from_slice(src);
    grew
}

struct CommState {
    /// Contributions for the current legacy-exchange round.
    slots: Vec<Option<Vec<f32>>>,
    arrived: usize,
    /// Published result of the completed exchange round.
    published: Option<Arc<Vec<Vec<f32>>>>,
    readers_left: usize,
    generation: u64,
    /// Zero-alloc state for the collective operations.
    round: RoundScratch,
}

struct CommInner {
    size: usize,
    state: Mutex<CommState>,
    cv: Condvar,
}

/// One participant's handle to a communicator of `size` members.
///
/// Handles are cheap to clone-construct at creation time (one per member);
/// each is `Send` and used by exactly one thread.
pub struct CommHandle {
    rank: usize,
    inner: Arc<CommInner>,
}

impl CommHandle {
    /// Creates a communicator with `size` members, returning one handle per
    /// member (index = member rank within this communicator).
    pub fn create(size: usize) -> Vec<CommHandle> {
        assert!(size >= 1, "communicator needs at least one member");
        let inner = Arc::new(CommInner {
            size,
            state: Mutex::new(CommState {
                slots: (0..size).map(|_| None).collect(),
                arrived: 0,
                published: None,
                readers_left: 0,
                generation: 0,
                round: RoundScratch::new(size),
            }),
            cv: Condvar::new(),
        });
        (0..size)
            .map(|rank| CommHandle {
                rank,
                inner: Arc::clone(&inner),
            })
            .collect()
    }

    /// This member's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Scratch-buffer growth events since creation (shared across ranks).
    /// Flat after warmup ⇒ the reduce path is allocation-free.
    pub fn scratch_reallocs(&self) -> u64 {
        self.inner.state.lock().round.reallocs
    }

    /// Deposits `contribution` and returns every member's contribution
    /// (indexed by rank) once all have arrived.
    ///
    /// This is the legacy publish-all primitive: it clones nothing but
    /// moves the caller's `Vec` and allocates the published set each round.
    /// The collective operations below use the zero-alloc round path
    /// instead; prefer them (or the [`crate::Collective`] trait) in new
    /// code.
    pub fn exchange(&self, contribution: Vec<f32>) -> Arc<Vec<Vec<f32>>> {
        let inner = &*self.inner;
        if inner.size == 1 {
            return Arc::new(vec![contribution]);
        }
        let mut st = inner.state.lock();
        // Wait for the previous round to fully drain before starting a new
        // one (a fast member could lap slow readers otherwise).
        while st.readers_left > 0 {
            inner.cv.wait(&mut st);
        }
        let my_gen = st.generation;
        // A double deposit would silently corrupt the round; fail fast in
        // release builds too (promoted from a debug_assert).
        assert!(
            st.slots[self.rank].is_none(),
            "double deposit by rank {} (one handle per thread, one deposit per round)",
            self.rank
        );
        st.slots[self.rank] = Some(contribution);
        st.arrived += 1;
        if st.arrived == inner.size {
            // Last arrival publishes, in rank order by construction.
            let all: Vec<Vec<f32>> = st.slots.iter_mut().map(|s| s.take().unwrap()).collect();
            st.published = Some(Arc::new(all));
            st.arrived = 0;
            st.readers_left = inner.size;
            st.generation += 1;
            inner.cv.notify_all();
        } else {
            while st.generation == my_gen {
                inner.cv.wait(&mut st);
            }
        }
        let out = Arc::clone(st.published.as_ref().expect("published result"));
        st.readers_left -= 1;
        if st.readers_left == 0 {
            st.published = None;
            inner.cv.notify_all();
        }
        out
    }

    /// One zero-alloc rendezvous round over the persistent scratch.
    ///
    /// `deposit` runs under the lock as this rank arrives; `publish` runs
    /// exactly once (on the last arrival) after all deposits; `read` runs
    /// under the lock after publication.
    fn round<C: ?Sized, R>(
        &self,
        ctx: &mut C,
        deposit: impl FnOnce(&mut C, &mut RoundScratch, usize),
        publish: impl FnOnce(&mut RoundScratch, usize),
        read: impl FnOnce(&mut C, &RoundScratch, usize) -> R,
    ) -> R {
        let inner = &*self.inner;
        let mut st = inner.state.lock();
        while st.round.readers_left > 0 {
            inner.cv.wait(&mut st);
        }
        let my_gen = st.round.generation;
        assert!(
            !st.round.deposited[self.rank],
            "double deposit by rank {} (one handle per thread, one deposit per round)",
            self.rank
        );
        st.round.deposited[self.rank] = true;
        deposit(ctx, &mut st.round, self.rank);
        st.round.arrived += 1;
        if st.round.arrived == inner.size {
            publish(&mut st.round, inner.size);
            st.round.arrived = 0;
            st.round.deposited.iter_mut().for_each(|d| *d = false);
            st.round.readers_left = inner.size;
            st.round.generation += 1;
            inner.cv.notify_all();
        } else {
            while st.round.generation == my_gen {
                inner.cv.wait(&mut st);
            }
        }
        let out = read(ctx, &st.round, self.rank);
        st.round.readers_left -= 1;
        if st.round.readers_left == 0 {
            inner.cv.notify_all();
        }
        out
    }

    /// In-place sum all-reduce with ascending-rank reduction order.
    ///
    /// Steady-state allocation-free: contributions are copied into
    /// persistent per-rank scratch, the last arrival reduces them (rank 0
    /// first, then 1, 2, …) into a persistent result buffer, and every
    /// member copies the result back out.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        if self.inner.size == 1 {
            return;
        }
        let n = buf.len();
        self.round(
            buf,
            |buf, round, rank| {
                if fill_scratch(&mut round.slots[rank], buf) {
                    round.reallocs += 1;
                }
            },
            |round, size| {
                let RoundScratch {
                    slots,
                    result,
                    reallocs,
                    ..
                } = round;
                if result.capacity() < n {
                    *reallocs += 1;
                }
                result.clear();
                result.extend_from_slice(&slots[0]);
                for slot in slots.iter().take(size).skip(1) {
                    assert_eq!(slot.len(), n, "mismatched all-reduce lengths");
                    for (acc, &x) in result.iter_mut().zip(slot.iter()) {
                        *acc += x;
                    }
                }
            },
            |buf, round, _| buf.copy_from_slice(&round.result),
        );
    }

    /// In-place mean all-reduce.
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let inv = 1.0 / self.inner.size as f32;
        buf.iter_mut().for_each(|v| *v *= inv);
    }

    /// In-place sum all-reduce with the **canonical grid-blocked fold**:
    /// ranks are viewed as a row-major `rows × cols` grid, each row-block's
    /// `cols` consecutive contributions are folded in ascending rank order,
    /// and the block sums are then folded in ascending block order.
    ///
    /// This is the reduction order every [`crate::Collective`] backend
    /// commits to for its world — it is exactly what a two-phase torus
    /// exchange produces (per-row ascending fold, then per-column ascending
    /// fold of the row sums), so tree, ring, and torus-2d backends are
    /// bitwise identical. `rows == 1` degenerates to the flat ascending
    /// fold of [`Self::all_reduce_sum`] (which stays flat on purpose: the
    /// torus backend's internal row/column sub-communicators must fold
    /// flat for the composition to equal this one-level blocked fold).
    pub fn all_reduce_sum_grid(&self, buf: &mut [f32], rows: usize, cols: usize) {
        assert_eq!(
            rows * cols,
            self.inner.size,
            "grid shape must cover the communicator"
        );
        if rows <= 1 {
            return self.all_reduce_sum(buf);
        }
        if self.inner.size == 1 {
            return;
        }
        let n = buf.len();
        self.round(
            buf,
            |buf, round, rank| {
                if fill_scratch(&mut round.slots[rank], buf) {
                    round.reallocs += 1;
                }
            },
            |round, _size| {
                let RoundScratch {
                    slots,
                    result,
                    partial,
                    reallocs,
                    ..
                } = round;
                if result.capacity() < n {
                    *reallocs += 1;
                }
                if partial.capacity() < n {
                    *reallocs += 1;
                }
                for block in 0..rows {
                    let base = block * cols;
                    let acc = if block == 0 {
                        &mut *result
                    } else {
                        &mut *partial
                    };
                    acc.clear();
                    acc.extend_from_slice(&slots[base]);
                    for slot in &slots[base + 1..base + cols] {
                        assert_eq!(slot.len(), n, "mismatched all-reduce lengths");
                        for (a, &x) in acc.iter_mut().zip(slot.iter()) {
                            *a += x;
                        }
                    }
                    if block > 0 {
                        for (a, &x) in result.iter_mut().zip(partial.iter()) {
                            *a += x;
                        }
                    }
                }
            },
            |buf, round, _| buf.copy_from_slice(&round.result),
        );
    }

    /// Reduce-scatter with the flat ascending-rank fold: every member
    /// contributes `contrib`, and `shard` is refilled with this rank's
    /// remainder-first shard (see [`shard_bounds`]) of the full sum.
    ///
    /// With a reused `shard` the steady state allocates nothing. All
    /// members must pass equal-length contributions.
    pub fn reduce_scatter_sum(&self, contrib: &[f32], shard: &mut Vec<f32>) {
        let n = contrib.len();
        if self.inner.size == 1 {
            shard.clear();
            shard.extend_from_slice(contrib);
            return;
        }
        self.round(
            shard,
            |_shard, round, rank| {
                if fill_scratch(&mut round.slots[rank], contrib) {
                    round.reallocs += 1;
                }
            },
            |round, size| {
                let RoundScratch {
                    slots,
                    result,
                    reallocs,
                    ..
                } = round;
                if result.capacity() < n {
                    *reallocs += 1;
                }
                result.clear();
                result.extend_from_slice(&slots[0]);
                for slot in slots.iter().take(size).skip(1) {
                    assert_eq!(slot.len(), n, "mismatched reduce-scatter lengths");
                    for (acc, &x) in result.iter_mut().zip(slot.iter()) {
                        *acc += x;
                    }
                }
            },
            |shard, round, rank| {
                let (a, b) = shard_bounds(n, self.inner.size, rank);
                shard.clear();
                shard.extend_from_slice(&round.result[a..b]);
            },
        );
    }

    /// Gathers every member's `local` slice into `out`, concatenated in
    /// rank order. `out` is cleared and refilled; with a reused `out` the
    /// steady state allocates nothing.
    pub fn all_gather_into(&self, local: &[f32], out: &mut Vec<f32>) {
        if self.inner.size == 1 {
            out.clear();
            out.extend_from_slice(local);
            return;
        }
        self.round(
            out,
            |_out, round, rank| {
                if fill_scratch(&mut round.slots[rank], local) {
                    round.reallocs += 1;
                }
            },
            |round, size| {
                let RoundScratch {
                    slots,
                    result,
                    reallocs,
                    ..
                } = round;
                let total: usize = slots.iter().take(size).map(|s| s.len()).sum();
                if result.capacity() < total {
                    *reallocs += 1;
                }
                result.clear();
                for slot in slots.iter().take(size) {
                    result.extend_from_slice(slot);
                }
            },
            |out, round, _| {
                out.clear();
                out.extend_from_slice(&round.result);
            },
        );
    }

    /// Gathers every member's `local` slice, concatenated in rank order.
    /// Convenience wrapper over [`Self::all_gather_into`].
    pub fn all_gather(&self, local: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(local.len() * self.inner.size);
        self.all_gather_into(local, &mut out);
        out
    }

    /// Gathers every member's `local` slice into the fixed-size slice
    /// `out` (rank order); `out.len()` must equal the sum of contribution
    /// lengths. The allocation-free companion of [`Self::all_gather_into`]
    /// for callers that own the destination, e.g. the torus backend's
    /// all-gather phase writing straight back into the gradient buffer.
    pub fn all_gather_into_slice(&self, local: &[f32], out: &mut [f32]) {
        if self.inner.size == 1 {
            out.copy_from_slice(local);
            return;
        }
        self.round(
            out,
            |_out, round, rank| {
                if fill_scratch(&mut round.slots[rank], local) {
                    round.reallocs += 1;
                }
            },
            |round, size| {
                let RoundScratch {
                    slots,
                    result,
                    reallocs,
                    ..
                } = round;
                let total: usize = slots.iter().take(size).map(|s| s.len()).sum();
                if result.capacity() < total {
                    *reallocs += 1;
                }
                result.clear();
                for slot in slots.iter().take(size) {
                    result.extend_from_slice(slot);
                }
            },
            |out, round, _| out.copy_from_slice(&round.result),
        );
    }

    /// Broadcast from `root`: on return every member's `buf` holds root's.
    pub fn broadcast(&self, buf: &mut [f32], root: usize) {
        assert!(root < self.inner.size, "broadcast root out of range");
        if self.inner.size == 1 {
            return;
        }
        self.round(
            buf,
            |buf, round, rank| {
                // Only the root deposits payload — straight into the result
                // buffer (previous round fully drained, so this is safe).
                if rank == root {
                    let RoundScratch {
                        result, reallocs, ..
                    } = round;
                    if fill_scratch(result, buf) {
                        *reallocs += 1;
                    }
                }
            },
            |_round, _| {},
            |buf, round, rank| {
                if rank != root {
                    buf.copy_from_slice(&round.result);
                }
            },
        );
    }

    /// Barrier: returns once every member has arrived.
    pub fn barrier(&self) {
        if self.inner.size == 1 {
            return;
        }
        self.round(&mut (), |_, _, _| {}, |_, _| {}, |_, _, _| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_replicas<F, R>(n: usize, f: F) -> Vec<R>
    where
        F: Fn(CommHandle) -> R + Send + Sync + Clone + 'static,
        R: Send + 'static,
    {
        let handles = CommHandle::create(n);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let f = f.clone();
                thread::spawn(move || f(h))
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        let results = run_replicas(4, |h| {
            let mut buf = vec![h.rank() as f32, 1.0];
            h.all_reduce_sum(&mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0 + 1.0 + 2.0 + 3.0, 4.0]);
        }
    }

    #[test]
    fn all_reduce_mean_averages() {
        let results = run_replicas(4, |h| {
            let mut buf = vec![(h.rank() * 2) as f32];
            h.all_reduce_mean(&mut buf);
            buf[0]
        });
        for r in results {
            assert!((r - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn repeated_rounds_do_not_cross_talk() {
        let results = run_replicas(3, |h| {
            let mut out = Vec::new();
            for round in 0..50 {
                let mut buf = vec![(h.rank() + round) as f32];
                h.all_reduce_sum(&mut buf);
                out.push(buf[0]);
            }
            out
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                let expected: usize = (0..3).map(|rank| rank + round).sum();
                assert_eq!(v, expected as f32, "round {round}");
            }
        }
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let results = run_replicas(3, |h| {
            h.all_gather(&[h.rank() as f32 * 10.0, h.rank() as f32 * 10.0 + 1.0])
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        }
    }

    #[test]
    fn broadcast_copies_root() {
        let results = run_replicas(4, |h| {
            let mut buf = if h.rank() == 2 {
                vec![7.0, 8.0]
            } else {
                vec![0.0, 0.0]
            };
            h.broadcast(&mut buf, 2);
            buf
        });
        for r in results {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn singleton_communicator_is_identity() {
        let mut hs = CommHandle::create(1);
        let h = hs.pop().unwrap();
        let mut buf = vec![3.0];
        h.all_reduce_sum(&mut buf);
        assert_eq!(buf, vec![3.0]);
        h.barrier();
    }

    #[test]
    fn deterministic_sum_order() {
        // With adversarial magnitudes, the deterministic ascending-rank
        // order must give the same result across many runs even though
        // thread arrival order varies.
        let golden = run_replicas(4, |h| {
            let vals = [1e8f32, 1.0, -1e8, 0.5];
            let mut buf = vec![vals[h.rank()]];
            h.all_reduce_sum(&mut buf);
            buf[0]
        })[0];
        for _ in 0..20 {
            let r = run_replicas(4, |h| {
                let vals = [1e8f32, 1.0, -1e8, 0.5];
                let mut buf = vec![vals[h.rank()]];
                h.all_reduce_sum(&mut buf);
                buf[0]
            });
            for v in r {
                assert_eq!(v.to_bits(), golden.to_bits(), "bitwise reproducible");
            }
        }
    }

    fn adversarial_payload(rank: usize, n: usize) -> Vec<f32> {
        // Mixed magnitudes so reassociation changes the rounded sum.
        (0..n)
            .map(|i| {
                let m = [1e8f32, 1.0, -1e8, 0.37, 1e-3][(rank + i) % 5];
                m * (1.0 + (rank * 31 + i * 7) as f32 * 1e-3)
            })
            .collect()
    }

    #[test]
    fn grid_fold_with_one_row_matches_flat_fold() {
        for n in [1usize, 5, 33] {
            let flat = run_replicas(4, move |h| {
                let mut buf = adversarial_payload(h.rank(), n);
                h.all_reduce_sum(&mut buf);
                buf
            });
            let grid = run_replicas(4, move |h| {
                let mut buf = adversarial_payload(h.rank(), n);
                h.all_reduce_sum_grid(&mut buf, 1, 4);
                buf
            });
            for (a, b) in flat.iter().zip(grid.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn grid_fold_matches_two_phase_torus_composition_bitwise() {
        // The one-level blocked fold must equal what the torus backend
        // physically does: per-row reduce-scatter (flat ascending fold),
        // per-column all-reduce of the shards (flat ascending fold over
        // block sums), then row all-gather.
        for (rows, cols) in [(2usize, 2usize), (2, 3), (3, 4), (4, 4)] {
            let p = rows * cols;
            for n in [1usize, 7, 64, 97] {
                let grid = run_replicas(p, move |h| {
                    let mut buf = adversarial_payload(h.rank(), n);
                    h.all_reduce_sum_grid(&mut buf, rows, cols);
                    buf
                });
                // Reference composition computed serially in f32.
                let contribs: Vec<Vec<f32>> = (0..p).map(|r| adversarial_payload(r, n)).collect();
                let mut row_sums = Vec::new();
                for b in 0..rows {
                    let mut acc = contribs[b * cols].clone();
                    for c in &contribs[b * cols + 1..(b + 1) * cols] {
                        for (a, &x) in acc.iter_mut().zip(c.iter()) {
                            *a += x;
                        }
                    }
                    row_sums.push(acc);
                }
                let mut expect = row_sums[0].clone();
                for rs in &row_sums[1..] {
                    for (a, &x) in expect.iter_mut().zip(rs.iter()) {
                        *a += x;
                    }
                }
                for g in &grid {
                    for (x, y) in g.iter().zip(expect.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "grid {rows}x{cols} n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_shards_cover_the_flat_sum() {
        for n in [1usize, 3, 10, 97] {
            let flat = run_replicas(4, move |h| {
                let mut buf = adversarial_payload(h.rank(), n);
                h.all_reduce_sum(&mut buf);
                buf
            })[0]
                .clone();
            let shards = run_replicas(4, move |h| {
                let contrib = adversarial_payload(h.rank(), n);
                let mut shard = Vec::new();
                h.reduce_scatter_sum(&contrib, &mut shard);
                (h.rank(), shard)
            });
            let mut rebuilt = vec![0.0f32; n];
            for (rank, shard) in shards {
                let (a, b) = shard_bounds(n, 4, rank);
                assert_eq!(shard.len(), b - a);
                rebuilt[a..b].copy_from_slice(&shard);
            }
            for (x, y) in rebuilt.iter().zip(flat.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn all_gather_into_slice_concatenates_in_rank_order() {
        let results = run_replicas(3, |h| {
            let local = [h.rank() as f32 * 10.0, h.rank() as f32 * 10.0 + 1.0];
            let mut out = [0.0f32; 6];
            h.all_gather_into_slice(&local, &mut out);
            out.to_vec()
        });
        for r in results {
            assert_eq!(r, vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        }
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for n in [0usize, 1, 5, 16, 97] {
            for parts in 1..=8usize {
                let mut covered = 0;
                for i in 0..parts {
                    let (a, b) = shard_bounds(n, parts, i);
                    assert_eq!(a, covered, "shards must be contiguous");
                    assert!(b >= a);
                    covered = b;
                }
                assert_eq!(covered, n, "shards must cover [0, n)");
            }
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = Arc::new(AtomicUsize::new(0));
        let handles = CommHandle::create(4);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    h.barrier();
                    // After the barrier, all increments must be visible.
                    assert_eq!(c.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn steady_state_rounds_do_not_reallocate() {
        // Warm up with the largest payload, then hammer the reduce path:
        // the realloc counter must not move once capacities stabilize.
        let handles = CommHandle::create(4);
        let probe = CommHandle {
            rank: handles[0].rank,
            inner: Arc::clone(&handles[0].inner),
        };
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    let mut big = vec![h.rank() as f32; 4096];
                    let small = vec![1.0f32; 32];
                    let mut gathered = Vec::new();
                    // Warmup: grows scratch to the working-set maximum.
                    h.all_reduce_sum(&mut big);
                    h.all_gather_into(&small, &mut gathered);
                    h.broadcast(&mut big, 0);
                    h.barrier();
                    (0, 0)
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let after_warmup = probe.scratch_reallocs();

        let handles2: Vec<CommHandle> = (0..4)
            .map(|rank| CommHandle {
                rank,
                inner: Arc::clone(&probe.inner),
            })
            .collect();
        let joins: Vec<_> = handles2
            .into_iter()
            .map(|h| {
                thread::spawn(move || {
                    let mut big = vec![h.rank() as f32; 4096];
                    let small = vec![1.0f32; 32];
                    let mut gathered = Vec::with_capacity(4 * 32);
                    for _ in 0..100 {
                        h.all_reduce_sum(&mut big);
                        h.all_gather_into(&small, &mut gathered);
                        h.broadcast(&mut big, 0);
                        h.barrier();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            probe.scratch_reallocs(),
            after_warmup,
            "steady-state rounds must not grow communicator scratch"
        );
    }
}
