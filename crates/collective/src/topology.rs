//! TPU-v3 pod topology: chips on a 2-D torus, two cores per chip.
//!
//! A full TPU-v3 pod is a 32×32 torus of chips (1024 chips, 2048 cores);
//! slices are rectangular sub-tori. The paper trains on slices of 128 to
//! 1024 cores. Replica ids map to cores in row-major chip order, core 0
//! then core 1 within a chip.

use serde::{Deserialize, Serialize};

/// Cores per TPU-v3 chip.
pub const CORES_PER_CHIP: usize = 2;

/// The canonical 2-D factorization of a world of `p` members:
/// `rows` is the largest divisor of `p` not exceeding `√p` (so
/// `rows ≤ cols` and `rows · cols == p`).
///
/// This grid is what the torus-2d backend routes over *and* what defines
/// the canonical reduction order every backend folds in (block partials
/// over `cols` consecutive ranks, then block sums across `rows` — see
/// `crate::comm::CommHandle::all_reduce_sum_grid`). It is a pure function
/// of `p`, so after an elastic shrink every survivor re-selects the same
/// sub-torus from the surviving world size alone. Primes (and `p < 4`)
/// degenerate to `(1, p)`, where the grid fold is the flat ascending fold.
pub fn canonical_grid(p: usize) -> (usize, usize) {
    assert!(p >= 1, "a grid needs at least one member");
    let mut rows = (p as f64).sqrt().floor() as usize;
    while rows > 1 && rows * rows > p {
        rows -= 1;
    }
    while rows > 1 && !p.is_multiple_of(rows) {
        rows -= 1;
    }
    let rows = rows.max(1);
    (rows, p / rows)
}

/// A rectangular slice of the pod's chip torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceShape {
    /// Chip-grid rows.
    pub rows: usize,
    /// Chip-grid columns.
    pub cols: usize,
}

impl SliceShape {
    /// The standard slice geometry for a given core count, matching how
    /// Cloud TPU carves v3 pods (always near-square, cols ≥ rows):
    /// 128 cores → 8×8 chips, 256 → 8×16, 512 → 16×16, 1024 → 16×32,
    /// 2048 → 32×32.
    pub fn for_cores(cores: usize) -> SliceShape {
        assert!(
            cores >= CORES_PER_CHIP && cores.is_multiple_of(CORES_PER_CHIP),
            "core count must be a positive multiple of {CORES_PER_CHIP}"
        );
        let chips = cores / CORES_PER_CHIP;
        // Near-square factorization with power-of-two sides where possible.
        let mut rows = (chips as f64).sqrt() as usize;
        while rows > 1 && !chips.is_multiple_of(rows) {
            rows -= 1;
        }
        SliceShape {
            rows,
            cols: chips / rows,
        }
    }

    /// The slice geometry that *survives* a degraded core count: the
    /// standard shape for the largest positive multiple of
    /// [`CORES_PER_CHIP`] not exceeding `cores`. After an elastic shrink
    /// the world can be odd (a chip lost one of its two cores); the
    /// torus the collectives route over is then the even sub-slice, with
    /// the orphan core hanging off its chip's links.
    pub fn surviving(cores: usize) -> SliceShape {
        assert!(
            cores >= CORES_PER_CHIP,
            "fewer than {CORES_PER_CHIP} surviving cores has no torus"
        );
        SliceShape::for_cores(cores - cores % CORES_PER_CHIP)
    }

    /// Total chips in the slice.
    pub fn chips(&self) -> usize {
        self.rows * self.cols
    }

    /// Total cores in the slice.
    pub fn cores(&self) -> usize {
        self.chips() * CORES_PER_CHIP
    }

    /// Chip coordinate of a chip index (row-major).
    pub fn coord(&self, chip: usize) -> (usize, usize) {
        assert!(chip < self.chips(), "chip {chip} out of range");
        (chip / self.cols, chip % self.cols)
    }

    /// Chip index of a coordinate.
    pub fn chip_at(&self, r: usize, c: usize) -> usize {
        assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// The chip hosting a replica (core).
    pub fn chip_of_replica(&self, replica: usize) -> usize {
        assert!(replica < self.cores(), "replica {replica} out of range");
        replica / CORES_PER_CHIP
    }

    /// Torus neighbors of a chip (up, down, left, right with wrap-around).
    pub fn neighbors(&self, chip: usize) -> [usize; 4] {
        let (r, c) = self.coord(chip);
        [
            self.chip_at((r + self.rows - 1) % self.rows, c),
            self.chip_at((r + 1) % self.rows, c),
            self.chip_at(r, (c + self.cols - 1) % self.cols),
            self.chip_at(r, (c + 1) % self.cols),
        ]
    }

    /// Minimum hop count between two chips on the torus.
    pub fn hop_distance(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coord(a);
        let (br, bc) = self.coord(b);
        let dr = ar.abs_diff(br);
        let dc = ac.abs_diff(bc);
        dr.min(self.rows - dr) + dc.min(self.cols - dc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_grids_are_near_square_divisor_pairs() {
        assert_eq!(canonical_grid(1), (1, 1));
        assert_eq!(canonical_grid(2), (1, 2));
        assert_eq!(canonical_grid(3), (1, 3));
        assert_eq!(canonical_grid(4), (2, 2));
        assert_eq!(canonical_grid(6), (2, 3));
        assert_eq!(canonical_grid(8), (2, 4));
        assert_eq!(canonical_grid(12), (3, 4));
        assert_eq!(canonical_grid(16), (4, 4));
        assert_eq!(canonical_grid(1024), (32, 32));
        assert_eq!(canonical_grid(2048), (32, 64));
        assert_eq!(canonical_grid(4096), (64, 64));
        // Primes have no non-trivial divisor ≤ √p: flat row.
        for p in [2usize, 3, 5, 7, 11, 13, 4099] {
            assert_eq!(canonical_grid(p), (1, p));
        }
    }

    #[test]
    fn canonical_grid_invariants_hold_for_all_small_worlds() {
        for p in 1..=512usize {
            let (r, c) = canonical_grid(p);
            assert_eq!(r * c, p, "p={p}");
            assert!(r <= c, "p={p}: rows must not exceed cols");
            assert!(r * r <= p, "p={p}: rows must not exceed sqrt(p)");
            // Largest such divisor: nothing between r and sqrt(p) divides p.
            for d in (r + 1)..=((p as f64).sqrt() as usize) {
                assert!(!p.is_multiple_of(d), "p={p}: {d} is a larger divisor");
            }
        }
    }

    #[test]
    fn standard_slices() {
        assert_eq!(SliceShape::for_cores(128), SliceShape { rows: 8, cols: 8 });
        assert_eq!(SliceShape::for_cores(256), SliceShape { rows: 8, cols: 16 });
        assert_eq!(
            SliceShape::for_cores(512),
            SliceShape { rows: 16, cols: 16 }
        );
        assert_eq!(
            SliceShape::for_cores(1024),
            SliceShape { rows: 16, cols: 32 }
        );
        assert_eq!(
            SliceShape::for_cores(2048),
            SliceShape { rows: 32, cols: 32 }
        );
    }

    #[test]
    fn cores_round_trip() {
        for &c in &[128usize, 256, 512, 1024, 2048] {
            assert_eq!(SliceShape::for_cores(c).cores(), c);
        }
    }

    #[test]
    fn coords_round_trip() {
        let s = SliceShape { rows: 4, cols: 8 };
        for chip in 0..s.chips() {
            let (r, c) = s.coord(chip);
            assert_eq!(s.chip_at(r, c), chip);
        }
    }

    #[test]
    fn torus_wraps() {
        let s = SliceShape { rows: 4, cols: 4 };
        let n = s.neighbors(0); // corner chip
        assert!(n.contains(&s.chip_at(3, 0)), "vertical wrap");
        assert!(n.contains(&s.chip_at(0, 3)), "horizontal wrap");
        assert!(n.contains(&s.chip_at(1, 0)));
        assert!(n.contains(&s.chip_at(0, 1)));
    }

    #[test]
    fn hop_distance_uses_wraparound() {
        let s = SliceShape { rows: 8, cols: 8 };
        assert_eq!(s.hop_distance(s.chip_at(0, 0), s.chip_at(0, 7)), 1);
        assert_eq!(s.hop_distance(s.chip_at(0, 0), s.chip_at(4, 4)), 8);
        assert_eq!(s.hop_distance(s.chip_at(2, 2), s.chip_at(2, 2)), 0);
    }

    #[test]
    fn surviving_floors_to_even_core_counts() {
        assert_eq!(SliceShape::surviving(128), SliceShape::for_cores(128));
        assert_eq!(SliceShape::surviving(127), SliceShape::for_cores(126));
        assert_eq!(SliceShape::surviving(3), SliceShape::for_cores(2));
        assert_eq!(SliceShape::surviving(2), SliceShape::for_cores(2));
    }

    #[test]
    #[should_panic]
    fn surviving_rejects_single_core() {
        SliceShape::surviving(1);
    }

    #[test]
    fn replica_to_chip() {
        let s = SliceShape::for_cores(128);
        assert_eq!(s.chip_of_replica(0), 0);
        assert_eq!(s.chip_of_replica(1), 0);
        assert_eq!(s.chip_of_replica(2), 1);
        assert_eq!(s.chip_of_replica(127), 63);
    }
}
