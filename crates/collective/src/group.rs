//! Replica grouping for distributed batch normalization (§3.4).
//!
//! The paper groups subsets of replicas to share BN statistics. Two
//! schemes, following Ying et al.:
//!
//! - **Contiguous**: groups of `k` consecutive replica ids. Cheap wiring,
//!   but on the physical torus a group of 32+ consecutive cores spans a
//!   long thin strip, so its reduction traverses many hops.
//! - **Tiled 2-D**: for group sizes above 16, replicas are grouped as a
//!   `th×tw` *tile of chips* on the torus, keeping every group member
//!   within a compact neighborhood — the "two-dimensional tiling method"
//!   of §3.4.

use crate::topology::{SliceShape, CORES_PER_CHIP};
use serde::{Deserialize, Serialize};

/// How replicas are partitioned into BN groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupSpec {
    /// Every replica normalizes alone (plain local BN).
    Local,
    /// Groups of `k` consecutive replica ids; `k` must divide the replica
    /// count.
    Contiguous(usize),
    /// Chip tiles of `rows×cols` on the torus; each tile's cores form one
    /// group (so the group size is `rows·cols·2` replicas).
    Tiled2d { rows: usize, cols: usize },
}

impl GroupSpec {
    /// Number of replicas per group under `slice`.
    pub fn group_size(&self, slice: SliceShape) -> usize {
        match self {
            GroupSpec::Local => 1,
            GroupSpec::Contiguous(k) => *k,
            GroupSpec::Tiled2d { rows, cols } => rows * cols * CORES_PER_CHIP,
        }
        .min(slice.cores())
    }

    /// Validates the spec against a slice, panicking with a clear message
    /// when the partition doesn't tile the slice exactly.
    pub fn validate(&self, slice: SliceShape) {
        match self {
            GroupSpec::Local => {}
            GroupSpec::Contiguous(k) => {
                assert!(*k >= 1, "group size must be ≥ 1");
                assert_eq!(
                    slice.cores() % k,
                    0,
                    "contiguous group size {k} must divide {} replicas",
                    slice.cores()
                );
            }
            GroupSpec::Tiled2d { rows, cols } => {
                assert!(
                    slice.rows.is_multiple_of(*rows) && slice.cols.is_multiple_of(*cols),
                    "tile {rows}x{cols} must tile the {}x{} chip grid",
                    slice.rows,
                    slice.cols
                );
            }
        }
    }

    /// The group id of a replica.
    pub fn group_of(&self, replica: usize, slice: SliceShape) -> usize {
        match self {
            GroupSpec::Local => replica,
            GroupSpec::Contiguous(k) => replica / k,
            GroupSpec::Tiled2d { rows, cols } => {
                let chip = slice.chip_of_replica(replica);
                let (r, c) = slice.coord(chip);
                let tiles_per_row = slice.cols / cols;
                (r / rows) * tiles_per_row + (c / cols)
            }
        }
    }

    /// All replicas in `group`, in ascending order.
    pub fn members(&self, group: usize, slice: SliceShape) -> Vec<usize> {
        (0..slice.cores())
            .filter(|&r| self.group_of(r, slice) == group)
            .collect()
    }

    /// Number of groups.
    pub fn num_groups(&self, slice: SliceShape) -> usize {
        match self {
            GroupSpec::Local => slice.cores(),
            GroupSpec::Contiguous(k) => slice.cores() / k,
            GroupSpec::Tiled2d { rows, cols } => (slice.rows / rows) * (slice.cols / cols),
        }
    }

    /// Worst-case torus hop diameter within a group — the communication
    /// locality measure that motivates 2-D tiling for large groups.
    pub fn max_group_diameter(&self, slice: SliceShape) -> usize {
        (0..self.num_groups(slice))
            .map(|g| {
                let members = self.members(g, slice);
                let mut worst = 0;
                for &a in &members {
                    for &b in &members {
                        worst = worst.max(
                            slice.hop_distance(slice.chip_of_replica(a), slice.chip_of_replica(b)),
                        );
                    }
                }
                worst
            })
            .max()
            .unwrap_or(0)
    }
}

impl GroupSpec {
    /// Deterministically shrinks the spec to one valid for a world of
    /// `new_world` replicas — the BN-regrouping leg of the elastic
    /// resize protocol. Rules (pure function of `(self, new_world)`, so
    /// every surviving rank computes the identical regrouping):
    ///
    /// - `Local` stays `Local`.
    /// - `Contiguous(k)` becomes `Contiguous(k')` where `k'` is the
    ///   largest divisor of `new_world` not exceeding `k` — the closest
    ///   BN batch to the tuned one that still tiles the world exactly.
    /// - `Tiled2d` on an even world shrinks each tile dimension to the
    ///   largest divisor of the surviving slice's dimension; on an odd
    ///   world (no torus factorization) it degrades to the equivalent
    ///   `Contiguous` group size.
    ///
    /// At a world where the spec already validates, `regroup` is the
    /// identity.
    pub fn regroup(&self, new_world: usize) -> GroupSpec {
        assert!(new_world >= 1, "cannot regroup an empty world");
        match *self {
            GroupSpec::Local => GroupSpec::Local,
            GroupSpec::Contiguous(k) => {
                GroupSpec::Contiguous(largest_divisor_at_most(new_world, k))
            }
            GroupSpec::Tiled2d { rows, cols } => {
                if new_world >= CORES_PER_CHIP && new_world.is_multiple_of(CORES_PER_CHIP) {
                    let slice = SliceShape::for_cores(new_world);
                    GroupSpec::Tiled2d {
                        rows: largest_divisor_at_most(slice.rows, rows),
                        cols: largest_divisor_at_most(slice.cols, cols),
                    }
                } else {
                    GroupSpec::Contiguous(largest_divisor_at_most(
                        new_world,
                        rows * cols * CORES_PER_CHIP,
                    ))
                }
            }
        }
    }
}

/// Largest divisor of `n` that does not exceed `k` (≥ 1).
fn largest_divisor_at_most(n: usize, k: usize) -> usize {
    let k = k.min(n).max(1);
    (1..=k).rev().find(|d| n.is_multiple_of(*d)).unwrap_or(1)
}

/// Partitions `world` replica ids into BN groups under `spec`, without
/// requiring a torus geometry — the form the trainer consumes, valid for
/// the odd worlds an elastic shrink can produce. The spec is first
/// [`GroupSpec::regroup`]ed to `world`, so the partition is always exact
/// (every replica in exactly one group). On even worlds where the spec
/// already validates, the partition matches [`GroupSpec::members`] over
/// [`SliceShape::for_cores`].
pub fn bn_partition(spec: GroupSpec, world: usize) -> Vec<Vec<usize>> {
    assert!(world >= 1, "empty world");
    match spec.regroup(world) {
        GroupSpec::Local => (0..world).map(|r| vec![r]).collect(),
        GroupSpec::Contiguous(k) => (0..world / k)
            .map(|g| (g * k..(g + 1) * k).collect())
            .collect(),
        spec @ GroupSpec::Tiled2d { .. } => {
            // regroup() only returns Tiled2d for even worlds.
            let slice = SliceShape::for_cores(world);
            (0..spec.num_groups(slice))
                .map(|g| spec.members(g, slice))
                .collect()
        }
    }
}

/// The BN *batch size* seen by each normalization: per-replica batch times
/// group size — the quantity the paper tunes (§3.4: "the resulting batch
/// normalization batch size ... affects model quality").
pub fn bn_batch_size(per_replica_batch: usize, spec: GroupSpec, slice: SliceShape) -> usize {
    per_replica_batch * spec.group_size(slice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partitions() {
        let slice = SliceShape::for_cores(128);
        let spec = GroupSpec::Contiguous(16);
        spec.validate(slice);
        assert_eq!(spec.num_groups(slice), 8);
        assert_eq!(spec.group_of(0, slice), 0);
        assert_eq!(spec.group_of(15, slice), 0);
        assert_eq!(spec.group_of(16, slice), 1);
        assert_eq!(spec.members(0, slice), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn tiled_partitions_cover_exactly_once() {
        let slice = SliceShape::for_cores(128); // 8×8 chips
        let spec = GroupSpec::Tiled2d { rows: 4, cols: 4 };
        spec.validate(slice);
        assert_eq!(spec.num_groups(slice), 4);
        assert_eq!(spec.group_size(slice), 32);
        let mut seen = vec![0usize; slice.cores()];
        for g in 0..spec.num_groups(slice) {
            for m in spec.members(g, slice) {
                seen[m] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "partition must be exact");
    }

    #[test]
    fn tiling_beats_contiguous_on_diameter_for_large_groups() {
        // 32 replicas per group on a 1024-core slice: a contiguous strip of
        // 16 chips spans a long path; a 4×4 tile stays compact — the whole
        // point of §3.4's 2-D tiling.
        let slice = SliceShape::for_cores(1024); // 16×32 chips
        let contiguous = GroupSpec::Contiguous(32);
        let tiled = GroupSpec::Tiled2d { rows: 4, cols: 4 };
        contiguous.validate(slice);
        tiled.validate(slice);
        assert_eq!(contiguous.group_size(slice), tiled.group_size(slice));
        let dc = contiguous.max_group_diameter(slice);
        let dt = tiled.max_group_diameter(slice);
        assert!(dt < dc, "tiled diameter {dt} should beat contiguous {dc}");
    }

    #[test]
    fn bn_batch_sizes_match_paper_examples() {
        // Per-core batch 32 on 1024 cores: groups of 16 replicas → BN batch
        // 512; local BN → 32; full slice would be the whole 32768.
        let slice = SliceShape::for_cores(1024);
        assert_eq!(bn_batch_size(32, GroupSpec::Local, slice), 32);
        assert_eq!(bn_batch_size(32, GroupSpec::Contiguous(16), slice), 512);
    }

    #[test]
    #[should_panic]
    fn invalid_contiguous_rejected() {
        GroupSpec::Contiguous(24).validate(SliceShape::for_cores(128));
    }

    #[test]
    #[should_panic]
    fn invalid_tile_rejected() {
        GroupSpec::Tiled2d { rows: 3, cols: 4 }.validate(SliceShape::for_cores(128));
    }

    #[test]
    fn regroup_is_identity_at_valid_worlds() {
        let slice = SliceShape::for_cores(128);
        for spec in [
            GroupSpec::Local,
            GroupSpec::Contiguous(16),
            GroupSpec::Tiled2d { rows: 4, cols: 4 },
        ] {
            spec.validate(slice);
            assert_eq!(spec.regroup(128), spec, "{spec:?}");
        }
    }

    #[test]
    fn regroup_shrinks_to_valid_specs() {
        // Losing one of 8 replicas: Contiguous(4) can't tile 7, so the
        // nearest divisor is 1.
        assert_eq!(
            GroupSpec::Contiguous(4).regroup(7),
            GroupSpec::Contiguous(1)
        );
        // Losing two of 8: groups of 2 and 3 both divide 6; 4 doesn't,
        // so 3 is the closest from below.
        assert_eq!(
            GroupSpec::Contiguous(4).regroup(6),
            GroupSpec::Contiguous(3)
        );
        // A tile spec on an odd world degrades to contiguous.
        let t = GroupSpec::Tiled2d { rows: 2, cols: 2 };
        match t.regroup(7) {
            GroupSpec::Contiguous(k) => assert!(k >= 1 && 7 % k == 0),
            other => panic!("expected Contiguous, got {other:?}"),
        }
        // A tile spec on a shrunken even world stays a valid tile.
        let shrunk = t.regroup(6);
        shrunk.validate(SliceShape::for_cores(6));
    }

    #[test]
    fn bn_partition_is_exact_for_all_worlds() {
        for spec in [
            GroupSpec::Local,
            GroupSpec::Contiguous(4),
            GroupSpec::Tiled2d { rows: 2, cols: 2 },
        ] {
            for world in 1..=16 {
                let parts = bn_partition(spec, world);
                let mut seen = vec![0usize; world];
                for group in &parts {
                    assert!(!group.is_empty());
                    for &m in group {
                        seen[m] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "{spec:?} world {world}: partition not exact: {seen:?}"
                );
            }
        }
    }

    #[test]
    fn bn_partition_matches_members_on_valid_even_worlds() {
        let spec = GroupSpec::Contiguous(16);
        let slice = SliceShape::for_cores(128);
        let parts = bn_partition(spec, 128);
        for (g, part) in parts.iter().enumerate() {
            assert_eq!(part, &spec.members(g, slice));
        }
    }

    #[test]
    fn local_groups() {
        let slice = SliceShape::for_cores(128);
        let spec = GroupSpec::Local;
        assert_eq!(spec.num_groups(slice), 128);
        assert_eq!(spec.group_size(slice), 1);
        assert_eq!(spec.members(5, slice), vec![5]);
    }
}
