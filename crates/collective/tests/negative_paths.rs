//! Negative-path coverage for the collective backends: malformed calls
//! must surface as typed [`CollectiveError`]s, never as panics or hangs,
//! on every backend and including the degenerate world size of 1.

use ets_collective::{
    create_collective, retry_collective, Backend, Collective, CollectiveError, FaultPlan,
    FaultyCollective, RetryPolicy,
};
use std::sync::Arc;
use std::thread;

const BACKENDS: [Backend; 3] = [Backend::Tree, Backend::Ring, Backend::Auto];

#[test]
fn zero_length_all_reduce_is_a_typed_error() {
    for backend in BACKENDS {
        for world in [1usize, 2, 4] {
            let comms = create_collective(backend, world);
            let joins: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    thread::spawn(move || {
                        let mut empty: Vec<f32> = Vec::new();
                        c.try_all_reduce_sum(&mut empty)
                    })
                })
                .collect();
            for j in joins {
                let err = j.join().expect("no panic").unwrap_err();
                assert!(
                    matches!(err, CollectiveError::EmptyPayload { op } if op == "all_reduce_sum"),
                    "{backend} × {world}: got {err}"
                );
                assert!(!err.is_transient(), "empty payload is permanent");
            }
        }
    }
}

#[test]
fn zero_length_broadcast_and_gather_are_typed_errors() {
    for backend in BACKENDS {
        let comms = create_collective(backend, 2);
        let joins: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let mut empty: Vec<f32> = Vec::new();
                    let b = c.try_broadcast(&mut empty, 0);
                    let mut out = Vec::new();
                    let g = c.try_all_gather(&[], &mut out);
                    (b, g)
                })
            })
            .collect();
        for j in joins {
            let (b, g) = j.join().expect("no panic");
            assert!(matches!(
                b.unwrap_err(),
                CollectiveError::EmptyPayload { op: "broadcast" }
            ));
            assert!(matches!(
                g.unwrap_err(),
                CollectiveError::EmptyPayload { op: "all_gather" }
            ));
        }
    }
}

#[test]
fn out_of_range_broadcast_root_is_a_typed_error() {
    for backend in BACKENDS {
        let comms = create_collective(backend, 2);
        let joins: Vec<_> = comms
            .into_iter()
            .map(|c| {
                thread::spawn(move || {
                    let mut buf = vec![1.0f32];
                    c.try_broadcast(&mut buf, 7)
                })
            })
            .collect();
        for j in joins {
            let err = j.join().expect("no panic").unwrap_err();
            match err {
                CollectiveError::InvalidRoot { root, size } => {
                    assert_eq!(root, 7);
                    assert_eq!(size, 2);
                }
                other => panic!("{backend}: expected InvalidRoot, got {other}"),
            }
        }
    }
}

#[test]
fn world_of_one_succeeds_on_well_formed_calls() {
    // Size-1 worlds are the identity collective: every well-formed try_*
    // call must succeed without blocking.
    for backend in BACKENDS {
        let mut comms = create_collective(backend, 1);
        let c = comms.pop().unwrap();
        let mut buf = vec![3.0f32, -1.0];
        c.try_all_reduce_sum(&mut buf).unwrap();
        assert_eq!(buf, vec![3.0, -1.0], "identity sum");
        c.try_broadcast(&mut buf, 0).unwrap();
        let mut out = Vec::new();
        c.try_all_gather(&[5.0], &mut out).unwrap();
        assert_eq!(out, vec![5.0]);
    }
}

#[test]
fn exhausted_retries_surface_as_retries_exhausted_not_panic() {
    // Plan more failures at step 0 than the policy has attempts: the
    // retry loop must give back a typed RetriesExhausted preserving the
    // last transient error, symmetrically on every rank.
    let mut plan = FaultPlan::none();
    plan.events.push(ets_collective::FaultEvent {
        at_s: 0.0,
        duration_s: 0.0,
        kind: ets_collective::FaultKind::TransientCollective { failures: 10 },
    });
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff_s: 0.01,
        multiplier: 2.0,
    };
    let schedule = Arc::new(plan.compile(4));
    for backend in [Backend::Tree, Backend::Ring] {
        let comms = create_collective(backend, 2);
        let joins: Vec<_> = comms
            .into_iter()
            .map(|inner| {
                let schedule = Arc::clone(&schedule);
                thread::spawn(move || {
                    let faulty = FaultyCollective::new(inner, schedule);
                    faulty.set_step(0);
                    let mut buf = vec![1.0f32, 2.0];
                    let before = buf.clone();
                    let res = retry_collective(&policy, || faulty.try_all_reduce_sum(&mut buf));
                    // Failed attempts must not have touched the payload.
                    assert_eq!(buf, before, "payload corrupted by failed attempts");
                    (res.unwrap_err(), faulty.injected_failures())
                })
            })
            .collect();
        for j in joins {
            let (err, injected) = j.join().expect("no panic");
            match err {
                CollectiveError::RetriesExhausted { attempts, last } => {
                    assert_eq!(attempts, 3, "{backend}");
                    assert!(last.is_transient(), "{backend}: last error {last}");
                }
                other => panic!("{backend}: expected RetriesExhausted, got {other}"),
            }
            assert_eq!(injected, 3, "{backend}: one injection per attempt");
        }
    }
}

#[test]
fn transient_errors_clear_when_the_step_advances() {
    // The same FaultyCollective that exhausts step 0 must succeed at
    // step 1 — injections are keyed by trainer step, not call count.
    let mut plan = FaultPlan::none();
    plan.events.push(ets_collective::FaultEvent {
        at_s: 0.0,
        duration_s: 0.0,
        kind: ets_collective::FaultKind::TransientCollective { failures: 1 },
    });
    let schedule = Arc::new(plan.compile(4));
    let comms = create_collective(Backend::Tree, 2);
    let joins: Vec<_> = comms
        .into_iter()
        .map(|inner| {
            let schedule = Arc::clone(&schedule);
            thread::spawn(move || {
                let faulty = FaultyCollective::new(inner, schedule);
                faulty.set_step(0);
                let mut buf = vec![1.0f32];
                assert!(faulty.try_all_reduce_sum(&mut buf).is_err(), "planned fail");
                faulty.set_step(1);
                let mut buf = vec![1.0f32];
                faulty.try_all_reduce_sum(&mut buf).unwrap();
                buf[0]
            })
        })
        .collect();
    for j in joins {
        assert_eq!(j.join().unwrap(), 2.0, "sum over 2 ranks after recovery");
    }
}
