//! Property tests for the backend-equivalence contract of the
//! [`Collective`] trait:
//!
//! 1. Tree, ring, torus2d, and auto all-reduce agree element-wise within
//!    1e-5
//!    (the ISSUE's cross-backend band — in fact they agree bitwise,
//!    since every backend reduces with the canonical grid-blocked fold;
//!    the unit tests pin the stronger property);
//! 2. every backend is run-to-run **bitwise** reproducible;
//! 3. every backend leaves all ranks with **bitwise identical** results
//!    (the invariant the trainer's cross-replica checksum relies on);
//!
//! over world sizes {1, 2, 3, 4, 8, 16} and payload lengths chosen to be
//! frequently non-divisible by the world size (exercising the ring's
//! remainder-first chunking and the torus's uneven/empty row shards).
//!
//! The offline proptest stub swallows `proptest!` bodies, so imports and
//! helpers used only inside them look unused to clippy under the stub;
//! with the real proptest they are all exercised.
#![allow(unused_imports, dead_code)]

use ets_collective::{create_collective, Backend, Collective};
use proptest::prelude::*;
use std::thread;

const WORLD_SIZES: [usize; 6] = [1, 2, 3, 4, 8, 16];

/// Deterministic per-(seed, rank) payload with magnitude variation —
/// large and small terms mixed so association-order error is visible.
fn payload(seed: u64, rank: usize, n: usize) -> Vec<f32> {
    let mut state = seed ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
            let scale = [0.01f32, 1.0, 100.0][(state >> 8) as usize % 3];
            unit * scale
        })
        .collect()
}

fn reduce_world(backend: Backend, p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let world = create_collective(backend, p);
    world
        .into_iter()
        .map(|c: Box<dyn Collective>| {
            thread::spawn(move || {
                let mut buf = payload(seed, c.rank(), n);
                c.all_reduce_sum(&mut buf);
                buf
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|j| j.join().unwrap())
        .collect()
}

/// Max |sum| per element across ranks' inputs — the scale for relative
/// tolerance.
fn magnitude(p: usize, n: usize, seed: u64) -> f32 {
    let mut mag = vec![0.0f32; n];
    for r in 0..p {
        for (m, v) in mag.iter_mut().zip(payload(seed, r, n)) {
            *m += v.abs();
        }
    }
    mag.into_iter().fold(1.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backends_agree_within_1e5(
        world_idx in 0usize..WORLD_SIZES.len(),
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let p = WORLD_SIZES[world_idx];
        let tree = reduce_world(Backend::Tree, p, n, seed);
        let ring = reduce_world(Backend::Ring, p, n, seed);
        let torus = reduce_world(Backend::Torus2d, p, n, seed);
        let auto = reduce_world(Backend::Auto, p, n, seed);
        // Tolerance is relative to the payload magnitude (1e-5 of the
        // reduction scale — the ISSUE's cross-backend band).
        let tol = 1e-5 * magnitude(p, n, seed);
        for r in 0..p {
            for i in 0..n {
                prop_assert!(
                    (tree[r][i] - ring[r][i]).abs() <= tol,
                    "p={p} n={n} rank={r} i={i}: tree {} vs ring {}",
                    tree[r][i], ring[r][i]
                );
                prop_assert!(
                    (tree[r][i] - torus[r][i]).abs() <= tol,
                    "p={p} n={n} rank={r} i={i}: tree {} vs torus {}",
                    tree[r][i], torus[r][i]
                );
                prop_assert!(
                    (tree[r][i] - auto[r][i]).abs() <= tol,
                    "p={p} n={n} rank={r} i={i}: tree {} vs auto {}",
                    tree[r][i], auto[r][i]
                );
            }
        }
    }

    #[test]
    fn runs_are_bitwise_reproducible(
        world_idx in 0usize..WORLD_SIZES.len(),
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let p = WORLD_SIZES[world_idx];
        for backend in Backend::ALL {
            let a = reduce_world(backend, p, n, seed);
            let b = reduce_world(backend, p, n, seed);
            prop_assert_eq!(&a, &b, "{} differs across runs", backend);
        }
    }

    #[test]
    fn ranks_are_bitwise_identical(
        world_idx in 0usize..WORLD_SIZES.len(),
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        let p = WORLD_SIZES[world_idx];
        for backend in Backend::ALL {
            let results = reduce_world(backend, p, n, seed);
            for r in 1..p {
                prop_assert_eq!(
                    &results[0], &results[r],
                    "{}: rank {} diverged", backend, r
                );
            }
        }
    }
}

// Deterministic spot checks of the same properties (these always execute,
// including under harnesses that elide proptest bodies).

#[test]
fn non_divisible_lengths_agree_across_backends() {
    // n mod p ≠ 0 for every world size > 1: remainder-first chunking.
    for &p in &WORLD_SIZES {
        for n in [1usize, 3, 17, 97] {
            let tree = reduce_world(Backend::Tree, p, n, 7);
            let ring = reduce_world(Backend::Ring, p, n, 7);
            let torus = reduce_world(Backend::Torus2d, p, n, 7);
            let auto = reduce_world(Backend::Auto, p, n, 7);
            let tol = 1e-5 * magnitude(p, n, 7);
            for r in 0..p {
                for i in 0..n {
                    assert!((tree[r][i] - ring[r][i]).abs() <= tol, "p={p} n={n}");
                    assert!((tree[r][i] - torus[r][i]).abs() <= tol, "p={p} n={n}");
                    assert!((tree[r][i] - auto[r][i]).abs() <= tol, "p={p} n={n}");
                }
            }
        }
    }
}

#[test]
fn reproducibility_and_rank_identity_hold() {
    for &p in &WORLD_SIZES {
        for backend in Backend::ALL {
            let a = reduce_world(backend, p, 131, 3);
            let b = reduce_world(backend, p, 131, 3);
            assert_eq!(a, b, "{backend} p={p}: run-to-run drift");
            for r in 1..p {
                assert_eq!(a[0], a[r], "{backend} p={p}: rank {r} diverged");
            }
        }
    }
}
