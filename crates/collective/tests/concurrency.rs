//! Concurrency stress tests of the collectives: many rounds, varying
//! payloads, subgroup interleaving, and randomized equivalence between the
//! tree, ring, and hierarchical grid implementations.
//!
//! The offline proptest stub swallows `proptest!` bodies, so imports and
//! helpers used only inside them look unused to clippy under the stub;
//! with the real proptest they are all exercised.
#![allow(unused_imports, dead_code)]

use ets_collective::{create_grid, create_ring, CommHandle, GroupSpec, SliceShape};
use proptest::prelude::*;
use std::thread;

fn tree_reduce(
    p: usize,
    seed_fn: impl Fn(usize) -> Vec<f32> + Send + Sync + Clone + 'static,
) -> Vec<Vec<f32>> {
    let handles = CommHandle::create(p);
    handles
        .into_iter()
        .map(|h| {
            let sf = seed_fn.clone();
            thread::spawn(move || {
                let mut buf = sf(h.rank());
                h.all_reduce_sum(&mut buf);
                buf
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|j| j.join().unwrap())
        .collect()
}

#[test]
fn thousand_rounds_no_cross_talk() {
    let p = 4;
    let handles = CommHandle::create(p);
    let results: Vec<Vec<f32>> = handles
        .into_iter()
        .map(|h| {
            thread::spawn(move || {
                let mut out = Vec::new();
                for round in 0..1000u32 {
                    let mut buf = vec![(h.rank() as u32 * 7 + round) as f32];
                    h.all_reduce_sum(&mut buf);
                    out.push(buf[0]);
                }
                out
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|j| j.join().unwrap())
        .collect();
    for r in &results {
        for (round, &v) in r.iter().enumerate() {
            let expected: f32 = (0..4).map(|rank| (rank * 7 + round) as f32).sum();
            assert_eq!(v, expected, "round {round}");
        }
    }
}

#[test]
fn disjoint_subgroups_run_concurrently() {
    // Two groups of two, plus a world of four, all interleaving — the same
    // shape as BN groups + gradient all-reduce inside one training step.
    let world = CommHandle::create(4);
    let g0 = CommHandle::create(2);
    let g1 = CommHandle::create(2);
    let mut groups: Vec<Option<CommHandle>> = g0
        .into_iter()
        .map(Some)
        .chain(g1.into_iter().map(Some))
        .collect();
    let joins: Vec<_> = world
        .into_iter()
        .enumerate()
        .map(|(r, w)| {
            let g = groups[r].take().unwrap();
            thread::spawn(move || {
                let mut results = Vec::new();
                for step in 0..50 {
                    // BN-group reduce first (like a forward pass)…
                    let mut bn = vec![(r + step) as f32];
                    g.all_reduce_sum(&mut bn);
                    // …then the world gradient reduce.
                    let mut grad = vec![bn[0]];
                    w.all_reduce_sum(&mut grad);
                    results.push((bn[0], grad[0]));
                }
                results
            })
        })
        .collect();
    let outs: Vec<Vec<(f32, f32)>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for step in 0..50 {
        // group 0 = ranks {0,1}, group 1 = ranks {2,3}.
        let bn0 = step as f32 + (1 + step) as f32;
        let bn1 = (2 + step) as f32 + (3 + step) as f32;
        let world_sum = 2.0 * bn0 + 2.0 * bn1;
        assert_eq!(outs[0][step].0, bn0);
        assert_eq!(outs[3][step].0, bn1);
        for (r, out) in outs.iter().enumerate() {
            assert_eq!(out[step].1, world_sum, "rank {r} step {step}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_ring_grid_agree(
        rows in 1usize..4,
        cols in 1usize..4,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let p = rows * cols;
        prop_assume!(p >= 2);
        let mk = move |rank: usize| -> Vec<f32> {
            // Tiny splitmix-style generator: the payload just needs to be
            // deterministic per (seed, rank) and varied.
            let mut state = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                })
                .collect()
        };

        let tree = tree_reduce(p, mk.clone());

        let ring_members = create_ring(p);
        let ring: Vec<Vec<f32>> = ring_members
            .into_iter()
            .map(|m| {
                let mk = mk.clone();
                thread::spawn(move || {
                    let mut buf = mk(m.rank());
                    m.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect();

        let grid_members = create_grid(rows, cols);
        let grid: Vec<Vec<f32>> = grid_members
            .into_iter()
            .enumerate()
            .map(|(id, m)| {
                let mk = mk.clone();
                thread::spawn(move || {
                    let mut buf = mk(id);
                    m.all_reduce_sum(&mut buf);
                    buf
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect();

        for ((t, r), g) in tree.iter().zip(&ring).zip(&grid) {
            for ((a, b), c) in t.iter().zip(r).zip(g) {
                prop_assert!((a - b).abs() < 1e-3, "tree vs ring: {a} vs {b}");
                prop_assert!((a - c).abs() < 1e-3, "tree vs grid: {a} vs {c}");
            }
        }
    }

    #[test]
    fn tiled_groups_always_partition(
        rows_pow in 0u32..3,
        cols_pow in 0u32..3,
        cores_pow in 2u32..7,
    ) {
        let cores = 2usize.pow(cores_pow);
        let slice = SliceShape::for_cores(cores);
        let tr = 2usize.pow(rows_pow);
        let tc = 2usize.pow(cols_pow);
        prop_assume!(slice.rows % tr == 0 && slice.cols % tc == 0);
        let spec = GroupSpec::Tiled2d { rows: tr, cols: tc };
        spec.validate(slice);
        let mut seen = vec![0usize; cores];
        for g in 0..spec.num_groups(slice) {
            for m in spec.members(g, slice) {
                seen[m] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
