//! Dataset abstraction and ImageNet cardinality metadata.

use ets_tensor::Tensor;

/// ImageNet-1k metadata: the epoch/step arithmetic in the paper (350
/// epochs, steps = epochs·N/batch) uses these cardinalities, so the
/// simulator does too.
pub mod imagenet {
    /// Training images.
    pub const TRAIN_IMAGES: u64 = 1_281_167;
    /// Validation images.
    pub const VAL_IMAGES: u64 = 50_000;
    /// Classes.
    pub const NUM_CLASSES: usize = 1000;
}

/// A deterministic, indexable image-classification dataset.
///
/// `sample(i)` must be a pure function of `(dataset config, i)` — that is
/// what makes exact sharding and bitwise-reproducible distributed runs
/// possible without materializing anything.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    fn num_classes(&self) -> usize;

    /// Image side length (images are square, `3×res×res`).
    fn resolution(&self) -> usize;

    /// Writes sample `i`'s CHW pixels into `out` and returns its label.
    fn sample_into(&self, i: usize, out: &mut [f32]) -> usize;
}

/// Materializes a batch of samples as an `NCHW` tensor plus labels.
pub fn materialize_batch<D: Dataset + ?Sized>(ds: &D, indices: &[usize]) -> (Tensor, Vec<usize>) {
    let r = ds.resolution();
    let img_len = 3 * r * r;
    let mut batch = Tensor::zeros([indices.len(), 3, r, r]);
    let mut labels = Vec::with_capacity(indices.len());
    for (slot, &i) in indices.iter().enumerate() {
        let label = ds.sample_into(
            i,
            &mut batch.data_mut()[slot * img_len..(slot + 1) * img_len],
        );
        labels.push(label);
    }
    (batch, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl Dataset for Fake {
        fn len(&self) -> usize {
            10
        }
        fn num_classes(&self) -> usize {
            2
        }
        fn resolution(&self) -> usize {
            2
        }
        fn sample_into(&self, i: usize, out: &mut [f32]) -> usize {
            out.iter_mut().for_each(|v| *v = i as f32);
            i % 2
        }
    }

    #[test]
    fn batch_materialization() {
        let (batch, labels) = materialize_batch(&Fake, &[3, 5]);
        assert_eq!(batch.shape().dims(), &[2, 3, 2, 2]);
        assert_eq!(labels, vec![1, 1]);
        assert!(batch.data()[..12].iter().all(|&v| v == 3.0));
        assert!(batch.data()[12..].iter().all(|&v| v == 5.0));
    }

    #[test]
    fn imagenet_constants() {
        assert_eq!(imagenet::TRAIN_IMAGES, 1_281_167);
        assert_eq!(imagenet::VAL_IMAGES, 50_000);
        assert_eq!(imagenet::NUM_CLASSES, 1000);
    }
}
