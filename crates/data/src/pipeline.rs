//! Input pipeline: augmentation and batching.
//!
//! Mirrors the EfficientNet input pipeline at miniature scale: random
//! horizontal flip and random padded crop at train time, nothing at eval
//! time, then per-channel standardization. Augmentations are driven by an
//! explicit RNG so replicas reproduce exactly.

use crate::dataset::{materialize_batch, Dataset};
use ets_tensor::{Rng, Tensor};

/// Augmentation configuration.
#[derive(Clone, Copy, Debug)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Zero-padding for random crops (0 disables cropping).
    pub crop_pad: usize,
    /// Standardize each channel to zero mean / unit variance per image.
    pub standardize: bool,
}

impl AugmentConfig {
    /// Training defaults: flip + 2-pixel padded crop + standardize.
    pub fn train() -> Self {
        AugmentConfig {
            flip_prob: 0.5,
            crop_pad: 2,
            standardize: true,
        }
    }

    /// Evaluation: deterministic, standardize only.
    pub fn eval() -> Self {
        AugmentConfig {
            flip_prob: 0.0,
            crop_pad: 0,
            standardize: true,
        }
    }
}

/// Flips an image (CHW slice) horizontally in place.
fn hflip(img: &mut [f32], res: usize) {
    for ch in 0..3 {
        for y in 0..res {
            let row = &mut img[(ch * res + y) * res..(ch * res + y + 1) * res];
            row.reverse();
        }
    }
}

/// Random padded crop: shifts the image by up to ±pad in each axis,
/// zero-filling exposed borders.
fn shift_crop(img: &[f32], out: &mut [f32], res: usize, dx: isize, dy: isize) {
    out.iter_mut().for_each(|v| *v = 0.0);
    for ch in 0..3 {
        for y in 0..res {
            let sy = y as isize + dy;
            if sy < 0 || sy >= res as isize {
                continue;
            }
            for x in 0..res {
                let sx = x as isize + dx;
                if sx < 0 || sx >= res as isize {
                    continue;
                }
                out[(ch * res + y) * res + x] = img[(ch * res + sy as usize) * res + sx as usize];
            }
        }
    }
}

/// Standardizes each channel of each image to zero mean, unit variance.
fn standardize(batch: &mut Tensor) {
    let (n, c, h, w) = (
        batch.shape().n(),
        batch.shape().c(),
        batch.shape().h(),
        batch.shape().w(),
    );
    let plane = h * w;
    for i in 0..n * c {
        let chunk = &mut batch.data_mut()[i * plane..(i + 1) * plane];
        let mean: f64 = chunk.iter().map(|&v| v as f64).sum::<f64>() / plane as f64;
        let var: f64 = chunk
            .iter()
            .map(|&v| (v as f64 - mean) * (v as f64 - mean))
            .sum::<f64>()
            / plane as f64;
        let inv = 1.0 / (var.sqrt() + 1e-6);
        for v in chunk.iter_mut() {
            *v = ((*v as f64 - mean) * inv) as f32;
        }
    }
}

/// Loads `indices` from `ds`, applies `aug`, and returns `(NCHW, labels)`.
pub fn load_batch<D: Dataset + ?Sized>(
    ds: &D,
    indices: &[usize],
    aug: AugmentConfig,
    rng: &mut Rng,
) -> (Tensor, Vec<usize>) {
    let (mut batch, labels) = materialize_batch(ds, indices);
    let res = ds.resolution();
    let img_len = 3 * res * res;
    let mut scratch = vec![0.0f32; img_len];
    for i in 0..indices.len() {
        let img = &mut batch.data_mut()[i * img_len..(i + 1) * img_len];
        if aug.flip_prob > 0.0 && rng.coin(aug.flip_prob) {
            hflip(img, res);
        }
        if aug.crop_pad > 0 {
            let p = aug.crop_pad as isize;
            let dx = rng.below(2 * aug.crop_pad + 1) as isize - p;
            let dy = rng.below(2 * aug.crop_pad + 1) as isize - p;
            if dx != 0 || dy != 0 {
                scratch.copy_from_slice(img);
                shift_crop(&scratch, img, res, dx, dy);
            }
        }
    }
    if aug.standardize {
        standardize(&mut batch);
    }
    (batch, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthNet;

    #[test]
    fn eval_pipeline_is_deterministic() {
        let ds = SynthNet::new(1, 4, 64, 8, 0.2);
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(99); // rng irrelevant for eval aug
        let (a, la) = load_batch(&ds, &[0, 1], AugmentConfig::eval(), &mut r1);
        let (b, lb) = load_batch(&ds, &[0, 1], AugmentConfig::eval(), &mut r2);
        assert_eq!(la, lb);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn standardization_normalizes_each_channel() {
        let ds = SynthNet::new(1, 4, 64, 8, 0.2);
        let mut rng = Rng::new(0);
        let (batch, _) = load_batch(&ds, &[3], AugmentConfig::eval(), &mut rng);
        let plane = 64;
        for ch in 0..3 {
            let chunk = &batch.data()[ch * plane..(ch + 1) * plane];
            let mean: f32 = chunk.iter().sum::<f32>() / plane as f32;
            let var: f32 =
                chunk.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / plane as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn flip_is_involution() {
        let mut img: Vec<f32> = (0..3 * 16).map(|i| i as f32).collect();
        let orig = img.clone();
        hflip(&mut img, 4);
        assert_ne!(img, orig);
        hflip(&mut img, 4);
        assert_eq!(img, orig);
    }

    #[test]
    fn shift_crop_moves_content() {
        let res = 4;
        let mut img = vec![0.0f32; 3 * 16];
        img[0] = 1.0; // channel 0, pixel (0,0)
        let mut out = vec![0.0f32; 3 * 16];
        // dx=1, dy=0 reads source (y, x+1): content shifts left... verify
        // the value lands where source index matches.
        shift_crop(&img, &mut out, res, -1, 0); // out(y,x) = img(y, x−1)
        assert_eq!(out[1], 1.0);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn train_aug_varies_with_rng() {
        let ds = SynthNet::new(1, 4, 64, 8, 0.2);
        let mut r1 = Rng::new(5);
        let mut r2 = Rng::new(6);
        let (a, _) = load_batch(&ds, &[0; 16], AugmentConfig::train(), &mut r1);
        let (b, _) = load_batch(&ds, &[0; 16], AugmentConfig::train(), &mut r2);
        assert!(a.max_abs_diff(&b) > 0.0, "different rng, different batch");
        // Same seed reproduces exactly.
        let mut r3 = Rng::new(5);
        let (c, _) = load_batch(&ds, &[0; 16], AugmentConfig::train(), &mut r3);
        assert_eq!(a.max_abs_diff(&c), 0.0);
    }
}
