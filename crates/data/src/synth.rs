//! SynthNet: a deterministic, procedurally-generated image-classification
//! dataset standing in for ImageNet (see DESIGN.md's substitution table).
//!
//! Each class is defined by a set of colored Gaussian blobs plus an
//! oriented sinusoidal texture, all derived from a class-seeded RNG. Each
//! *sample* jitters the blob positions, texture phase, and adds pixel
//! noise from a sample-seeded RNG — so the task requires learning spatial
//! structure (not just mean color), is adjustable in difficulty, and every
//! `sample(i)` is a pure function of `(seed, i)`.

use crate::dataset::Dataset;
use ets_tensor::Rng;

/// Per-class generative template.
struct ClassTemplate {
    /// Blobs: (cx, cy, radius, r, g, b) in normalized coordinates.
    blobs: Vec<(f32, f32, f32, f32, f32, f32)>,
    /// Texture: (orientation kx, ky, amplitude) per channel.
    texture: [(f32, f32, f32); 3],
}

/// The synthetic dataset.
pub struct SynthNet {
    templates: Vec<ClassTemplate>,
    len: usize,
    resolution: usize,
    seed: u64,
    /// Sample jitter magnitude (0 = pure templates, 1 = very noisy). Higher
    /// values make the task harder; 0.35 trains a tiny EfficientNet to
    /// high accuracy in a few epochs while leaving headroom for optimizer
    /// comparisons.
    noise: f32,
}

impl SynthNet {
    /// Creates a dataset of `len` samples over `num_classes` classes at
    /// `resolution²` pixels.
    pub fn new(seed: u64, num_classes: usize, len: usize, resolution: usize, noise: f32) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        assert!(resolution >= 4, "resolution too small");
        let root = Rng::new(seed);
        let templates = (0..num_classes)
            .map(|c| {
                let mut rng = root.split(0x_C1A5_5000 + c as u64);
                let blobs = (0..3)
                    .map(|_| {
                        (
                            rng.uniform_in(0.15, 0.85),
                            rng.uniform_in(0.15, 0.85),
                            rng.uniform_in(0.10, 0.28),
                            rng.uniform_in(-1.0, 1.0),
                            rng.uniform_in(-1.0, 1.0),
                            rng.uniform_in(-1.0, 1.0),
                        )
                    })
                    .collect();
                let mut texture = [(0.0, 0.0, 0.0); 3];
                for t in &mut texture {
                    *t = (
                        rng.uniform_in(1.0, 4.0),
                        rng.uniform_in(1.0, 4.0),
                        rng.uniform_in(0.2, 0.5),
                    );
                }
                ClassTemplate { blobs, texture }
            })
            .collect();
        SynthNet {
            templates,
            len,
            resolution,
            seed,
            noise,
        }
    }

    /// A quick training/eval pair sharing class templates: train gets
    /// `train_len` samples, eval `eval_len`, with disjoint sample seeds.
    pub fn train_eval_pair(
        seed: u64,
        num_classes: usize,
        train_len: usize,
        eval_len: usize,
        resolution: usize,
        noise: f32,
    ) -> (SynthNet, SynthNet) {
        let train = SynthNet::new(seed, num_classes, train_len, resolution, noise);
        let mut eval = SynthNet::new(seed, num_classes, eval_len, resolution, noise);
        // Same templates (same seed) but sample rng offset so eval samples
        // never coincide with training samples.
        eval.seed = seed ^ EVAL_SEED_XOR;
        (train, eval)
    }
}

/// XOR mask separating the eval split's sample-noise stream from train's.
const EVAL_SEED_XOR: u64 = 0x5EED_EA11_0000_0001;

impl Dataset for SynthNet {
    fn len(&self) -> usize {
        self.len
    }

    fn num_classes(&self) -> usize {
        self.templates.len()
    }

    fn resolution(&self) -> usize {
        self.resolution
    }

    fn sample_into(&self, i: usize, out: &mut [f32]) -> usize {
        let res = self.resolution;
        assert_eq!(out.len(), 3 * res * res, "output buffer size");
        let label = i % self.templates.len();
        let t = &self.templates[label];
        let mut rng = Rng::new(self.seed).split(0x_5A3D_0000 ^ i as u64);
        let jitter = self.noise * 0.15;
        // Jittered blob positions for this sample.
        let blobs: Vec<(f32, f32, f32, f32, f32, f32)> = t
            .blobs
            .iter()
            .map(|&(cx, cy, rad, r, g, b)| {
                (
                    cx + rng.uniform_in(-jitter, jitter),
                    cy + rng.uniform_in(-jitter, jitter),
                    // Radius jitter scales with the noise knob too, so
                    // noise=0 means pure class templates.
                    rad * (1.0 + self.noise * rng.uniform_in(-0.15, 0.15)),
                    r,
                    g,
                    b,
                )
            })
            .collect();
        // Texture phase jitter scales with the noise knob so noise=0 gives
        // pure class templates (up to blob jitter, also noise-scaled).
        let phase = self.noise * rng.uniform_in(0.0, std::f32::consts::TAU);
        let inv = 1.0 / res as f32;
        for ch in 0..3 {
            let (kx, ky, amp) = t.texture[ch];
            for y in 0..res {
                let fy = (y as f32 + 0.5) * inv;
                for x in 0..res {
                    let fx = (x as f32 + 0.5) * inv;
                    let mut v = amp * (std::f32::consts::TAU * (kx * fx + ky * fy) + phase).sin();
                    for &(cx, cy, rad, r, g, b) in &blobs {
                        let d2 = (fx - cx) * (fx - cx) + (fy - cy) * (fy - cy);
                        let w = (-d2 / (2.0 * rad * rad)).exp();
                        v += w * [r, g, b][ch];
                    }
                    out[(ch * res + y) * res + x] = v;
                }
            }
        }
        // Pixel noise.
        if self.noise > 0.0 {
            for v in out.iter_mut() {
                *v += self.noise * 0.5 * rng.normal();
            }
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::materialize_batch;

    #[test]
    fn deterministic_samples() {
        let ds = SynthNet::new(1, 4, 100, 8, 0.3);
        let mut a = vec![0.0; 3 * 64];
        let mut b = vec![0.0; 3 * 64];
        let la = ds.sample_into(17, &mut a);
        let lb = ds.sample_into(17, &mut b);
        assert_eq!(la, lb);
        assert_eq!(a, b, "same index must give identical pixels");
    }

    #[test]
    fn distinct_samples_differ() {
        let ds = SynthNet::new(1, 4, 100, 8, 0.3);
        let mut a = vec![0.0; 3 * 64];
        let mut b = vec![0.0; 3 * 64];
        // Same class (4 apart), different sample → different pixels.
        ds.sample_into(3, &mut a);
        ds.sample_into(7, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_balanced() {
        let ds = SynthNet::new(2, 5, 100, 8, 0.1);
        let mut counts = [0usize; 5];
        let mut buf = vec![0.0; 3 * 64];
        for i in 0..100 {
            counts[ds.sample_into(i, &mut buf)] += 1;
        }
        assert_eq!(counts, [20; 5]);
    }

    #[test]
    fn classes_are_separable_by_template() {
        // Noise-free samples of different classes must differ a lot more
        // than same-class samples — the signal a classifier learns.
        let ds = SynthNet::new(3, 2, 100, 16, 0.0);
        let img = |i: usize| {
            let mut v = vec![0.0; 3 * 256];
            ds.sample_into(i, &mut v);
            v
        };
        let d = |a: &[f32], b: &[f32]| {
            a.iter()
                .zip(b)
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum::<f32>()
        };
        let same = d(&img(0), &img(2)); // class 0 vs class 0
        let diff = d(&img(0), &img(1)); // class 0 vs class 1
        assert!(
            diff > 3.0 * same,
            "between-class {diff} should dwarf within-class {same}"
        );
    }

    #[test]
    fn train_eval_disjoint_but_same_classes() {
        let (train, eval) = SynthNet::train_eval_pair(9, 3, 30, 12, 8, 0.2);
        let mut a = vec![0.0; 3 * 64];
        let mut b = vec![0.0; 3 * 64];
        let la = train.sample_into(0, &mut a);
        let lb = eval.sample_into(0, &mut b);
        assert_eq!(la, lb, "index→label mapping shared");
        assert_ne!(a, b, "pixels must differ between train and eval streams");
        assert_eq!(eval.len(), 12);
    }

    #[test]
    fn batch_shapes() {
        let ds = SynthNet::new(4, 10, 1000, 8, 0.3);
        let (batch, labels) = materialize_batch(&ds, &[0, 1, 2, 3]);
        assert_eq!(batch.shape().dims(), &[4, 3, 8, 8]);
        assert_eq!(labels, vec![0, 1, 2, 3]);
        assert!(!batch.has_non_finite());
    }
}
