//! Deterministic epoch shuffling and per-replica sharding.
//!
//! All replicas derive the *same* epoch permutation from `(seed, epoch)`
//! and then take strided slices of it, so the global batch is an exact
//! partition of the shuffled dataset — no duplication, no gaps, no
//! coordination.

use ets_tensor::Rng;

/// The index plan for one epoch.
pub struct EpochPlan {
    perm: Vec<usize>,
}

impl EpochPlan {
    /// Builds the shared shuffle for `(seed, epoch)` over `len` samples.
    pub fn new(seed: u64, epoch: u64, len: usize) -> Self {
        let mut rng = Rng::new(seed).split(0x_EF0C_0000 ^ epoch);
        EpochPlan {
            perm: rng.permutation(len),
        }
    }

    /// Identity plan (no shuffling) — used by evaluation.
    pub fn sequential(len: usize) -> Self {
        EpochPlan {
            perm: (0..len).collect(),
        }
    }

    /// Dataset size.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The indices replica `r` of `n` processes for global step `step`,
    /// given `per_replica_batch`. The global batch for a step is the
    /// contiguous permutation window
    /// `step·B_global .. (step+1)·B_global`, split contiguously among
    /// replicas; the last window of an epoch may be short (and is dropped
    /// when fewer than one sample per replica remains, matching
    /// drop-remainder semantics on TPUs).
    pub fn replica_batch(
        &self,
        step: usize,
        replica: usize,
        num_replicas: usize,
        per_replica_batch: usize,
    ) -> Vec<usize> {
        let global = per_replica_batch * num_replicas;
        self.batch_at(step * global, replica, num_replicas, per_replica_batch)
    }

    /// Like [`EpochPlan::replica_batch`] but addressed by *sample offset*
    /// into the epoch permutation instead of step index. This is what the
    /// elastic trainer uses: after a mid-epoch world resize the surviving
    /// replicas continue from the exact sample offset the old world
    /// reached, so every sample is still visited exactly once per epoch
    /// regardless of how the global batch size changed underneath.
    pub fn batch_at(
        &self,
        offset: usize,
        replica: usize,
        num_replicas: usize,
        per_replica_batch: usize,
    ) -> Vec<usize> {
        assert!(replica < num_replicas);
        let start = offset + replica * per_replica_batch;
        let end = (start + per_replica_batch).min(self.perm.len());
        if start >= self.perm.len() {
            return Vec::new();
        }
        self.perm[start..end].to_vec()
    }

    /// Steps per epoch with drop-remainder semantics.
    pub fn steps(&self, num_replicas: usize, per_replica_batch: usize) -> usize {
        self.perm.len() / (num_replicas * per_replica_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_epoch_same_plan() {
        let a = EpochPlan::new(7, 3, 100);
        let b = EpochPlan::new(7, 3, 100);
        assert_eq!(a.perm, b.perm);
    }

    #[test]
    fn different_epochs_differ() {
        let a = EpochPlan::new(7, 0, 100);
        let b = EpochPlan::new(7, 1, 100);
        assert_ne!(a.perm, b.perm);
    }

    #[test]
    fn replica_batches_partition_the_global_batch() {
        let plan = EpochPlan::new(1, 0, 64);
        let mut seen = HashSet::new();
        for step in 0..plan.steps(4, 4) {
            for r in 0..4 {
                for idx in plan.replica_batch(step, r, 4, 4) {
                    assert!(seen.insert(idx), "index {idx} duplicated");
                }
            }
        }
        assert_eq!(seen.len(), 64, "all samples covered once");
    }

    #[test]
    fn drop_remainder() {
        let plan = EpochPlan::new(1, 0, 70);
        // 70 / (4·4) = 4 full steps; 6 leftovers dropped.
        assert_eq!(plan.steps(4, 4), 4);
    }

    #[test]
    fn batch_at_agrees_with_replica_batch() {
        let plan = EpochPlan::new(3, 2, 96);
        for step in 0..plan.steps(4, 4) {
            for r in 0..4 {
                assert_eq!(
                    plan.replica_batch(step, r, 4, 4),
                    plan.batch_at(step * 16, r, 4, 4)
                );
            }
        }
    }

    #[test]
    fn batch_at_partitions_across_a_world_resize() {
        // Old world 4 consumes the first two steps; new world 3 resumes at
        // the same offset. Together they must cover a prefix exactly once.
        let plan = EpochPlan::new(9, 0, 96);
        let mut seen = HashSet::new();
        let mut offset = 0;
        for _ in 0..2 {
            for r in 0..4 {
                for idx in plan.batch_at(offset, r, 4, 4) {
                    assert!(seen.insert(idx), "index {idx} duplicated");
                }
            }
            offset += 16;
        }
        while offset + 12 <= plan.len() {
            for r in 0..3 {
                for idx in plan.batch_at(offset, r, 3, 4) {
                    assert!(seen.insert(idx), "index {idx} duplicated post-resize");
                }
            }
            offset += 12;
        }
        assert_eq!(seen.len(), offset, "prefix covered exactly once");
    }

    #[test]
    fn sequential_is_identity() {
        let plan = EpochPlan::sequential(10);
        assert_eq!(plan.replica_batch(0, 0, 2, 3), vec![0, 1, 2]);
        assert_eq!(plan.replica_batch(0, 1, 2, 3), vec![3, 4, 5]);
        assert_eq!(plan.replica_batch(1, 0, 2, 3), vec![6, 7, 8]);
        // Tail clamps instead of panicking.
        assert_eq!(plan.replica_batch(1, 1, 2, 3), vec![9]);
        assert_eq!(plan.replica_batch(2, 0, 2, 3), Vec::<usize>::new());
    }
}
