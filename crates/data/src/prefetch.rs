//! Background batch prefetching.
//!
//! TPU training keeps the accelerator fed by preparing the next batches on
//! the host while the current step computes. This mirrors that structure:
//! a worker thread materializes and augments batches ahead of the consumer
//! through a bounded crossbeam channel (the bound is the "prefetch depth";
//! backpressure stops the worker from racing arbitrarily far ahead).
//!
//! Determinism is preserved: the worker owns the augmentation RNG and
//! produces batches in plan order, so the consumed stream is identical to
//! the non-prefetched one.

use crate::dataset::Dataset;
use crate::pipeline::{load_batch, AugmentConfig};
use crossbeam::channel::{bounded, Receiver};
use ets_tensor::{Rng, Tensor};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A prefetched (input, labels) pair.
pub type Batch = (Tensor, Vec<usize>);

/// Handle to a background prefetch worker.
pub struct Prefetcher {
    rx: Receiver<Batch>,
    worker: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns a worker that loads `index_batches` in order with `aug`
    /// applied, keeping up to `depth` batches queued.
    pub fn spawn<D>(
        dataset: Arc<D>,
        index_batches: Vec<Vec<usize>>,
        aug: AugmentConfig,
        rng: Rng,
        depth: usize,
    ) -> Self
    where
        D: Dataset + 'static,
    {
        assert!(depth >= 1, "prefetch depth must be positive");
        let (tx, rx) = bounded::<Batch>(depth);
        let worker = std::thread::spawn(move || {
            let mut rng = rng;
            for indices in index_batches {
                let batch = load_batch(dataset.as_ref(), &indices, aug, &mut rng);
                // Consumer hung up: stop quietly.
                if tx.send(batch).is_err() {
                    return;
                }
            }
        });
        Prefetcher {
            rx,
            worker: Some(worker),
        }
    }

    /// Receives the next batch; `None` when the plan is exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Batch> {
        self.rx.recv().ok()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Unblock the worker by dropping the receiver first, then join.
        let (_tx, rx) = bounded::<Batch>(1);
        self.rx = rx;
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Iterator for Prefetcher {
    type Item = Batch;
    fn next(&mut self) -> Option<Batch> {
        Prefetcher::next(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthNet;

    fn plan(n_batches: usize, batch: usize) -> Vec<Vec<usize>> {
        (0..n_batches)
            .map(|b| (0..batch).map(|i| b * batch + i).collect())
            .collect()
    }

    #[test]
    fn produces_all_batches_in_order() {
        let ds = Arc::new(SynthNet::new(1, 4, 64, 8, 0.3));
        let mut pf = Prefetcher::spawn(
            Arc::clone(&ds),
            plan(8, 8),
            AugmentConfig::eval(),
            Rng::new(0),
            2,
        );
        let mut count = 0;
        let mut expected_label = 0usize;
        while let Some((x, labels)) = pf.next() {
            assert_eq!(x.shape().dims(), &[8, 3, 8, 8]);
            assert_eq!(labels[0], expected_label % 4);
            expected_label += 8;
            count += 1;
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn stream_matches_synchronous_loading() {
        let ds = Arc::new(SynthNet::new(2, 4, 64, 8, 0.3));
        let batches = plan(4, 4);
        let mut pf = Prefetcher::spawn(
            Arc::clone(&ds),
            batches.clone(),
            AugmentConfig::train(),
            Rng::new(7),
            3,
        );
        let mut sync_rng = Rng::new(7);
        for indices in &batches {
            let (want_x, want_l) =
                load_batch(ds.as_ref(), indices, AugmentConfig::train(), &mut sync_rng);
            let (got_x, got_l) = pf.next().expect("batch available");
            assert_eq!(got_l, want_l);
            assert_eq!(
                got_x.max_abs_diff(&want_x),
                0.0,
                "prefetch must not change the stream"
            );
        }
        assert!(pf.next().is_none());
    }

    #[test]
    fn early_drop_does_not_hang() {
        let ds = Arc::new(SynthNet::new(3, 4, 512, 8, 0.3));
        let mut pf = Prefetcher::spawn(ds, plan(64, 8), AugmentConfig::eval(), Rng::new(0), 1);
        let _ = pf.next();
        drop(pf); // must not deadlock on the blocked worker
    }

    #[test]
    fn iterator_interface() {
        let ds = Arc::new(SynthNet::new(4, 4, 32, 8, 0.3));
        let pf = Prefetcher::spawn(ds, plan(4, 8), AugmentConfig::eval(), Rng::new(0), 2);
        assert_eq!(pf.count(), 4);
    }
}
