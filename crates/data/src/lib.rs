//! # ets-data
//!
//! Data substrate: the deterministic SynthNet dataset (ImageNet stand-in;
//! see DESIGN.md's substitution table), ImageNet cardinality metadata for
//! epoch/step arithmetic, deterministic epoch shuffling with exact
//! per-replica sharding, and a miniature augmentation pipeline.

pub mod dataset;
pub mod pipeline;
pub mod prefetch;
pub mod shard;
pub mod synth;

pub use dataset::{imagenet, materialize_batch, Dataset};
pub use pipeline::{load_batch, AugmentConfig};
pub use prefetch::{Batch, Prefetcher};
pub use shard::EpochPlan;
pub use synth::SynthNet;
