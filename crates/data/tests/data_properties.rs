//! Property tests of the data substrate: dataset purity, shard exactness
//! under arbitrary replica/batch geometry, and augmentation invariants.
//!
//! The offline proptest stub swallows `proptest!` bodies, so imports and
//! helpers used only inside them look unused to clippy under the stub;
//! with the real proptest they are all exercised.
#![allow(unused_imports, dead_code)]

use ets_data::{load_batch, materialize_batch, AugmentConfig, Dataset, EpochPlan, SynthNet};
use ets_tensor::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthnet_labels_cycle_through_classes(
        seed in 0u64..100,
        classes in 2usize..12,
        len_mult in 1usize..10,
    ) {
        let len = classes * len_mult;
        let ds = SynthNet::new(seed, classes, len, 8, 0.5);
        let mut buf = vec![0.0f32; 3 * 64];
        let mut counts = vec![0usize; classes];
        for i in 0..len {
            counts[ds.sample_into(i, &mut buf)] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == len_mult), "balanced classes");
    }

    #[test]
    fn noise_zero_makes_same_class_samples_identical_templates(
        seed in 0u64..100,
        classes in 2usize..6,
    ) {
        let ds = SynthNet::new(seed, classes, 4 * classes, 8, 0.0);
        let img = |i: usize| {
            let mut v = vec![0.0f32; 3 * 64];
            ds.sample_into(i, &mut v);
            v
        };
        // With noise 0, samples of the same class are pure templates.
        let a = img(0);
        let b = img(classes); // same class, different index
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn epoch_plans_differ_between_epochs_but_not_replicas(
        seed in 0u64..100,
        len_mult in 2usize..8,
    ) {
        let len = len_mult * 8;
        let e0 = EpochPlan::new(seed, 0, len);
        let e1 = EpochPlan::new(seed, 1, len);
        // Same epoch, independently constructed: identical batches.
        let e0b = EpochPlan::new(seed, 0, len);
        prop_assert_eq!(
            e0.replica_batch(0, 0, 2, 4),
            e0b.replica_batch(0, 0, 2, 4)
        );
        // Different epochs shuffle differently (overwhelmingly likely).
        let all0: Vec<usize> = (0..e0.steps(1, 8)).flat_map(|s| e0.replica_batch(s, 0, 1, 8)).collect();
        let all1: Vec<usize> = (0..e1.steps(1, 8)).flat_map(|s| e1.replica_batch(s, 0, 1, 8)).collect();
        prop_assert_ne!(all0, all1);
    }

    #[test]
    fn eval_pipeline_pure_under_any_rng(
        seed in 0u64..100,
        rng_seed_a in 0u64..1000,
        rng_seed_b in 0u64..1000,
    ) {
        let ds = SynthNet::new(seed, 4, 32, 8, 0.4);
        let (a, la) = load_batch(&ds, &[1, 5, 9], AugmentConfig::eval(), &mut Rng::new(rng_seed_a));
        let (b, lb) = load_batch(&ds, &[1, 5, 9], AugmentConfig::eval(), &mut Rng::new(rng_seed_b));
        prop_assert_eq!(la, lb);
        prop_assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn train_pipeline_preserves_labels_and_shape(
        seed in 0u64..100,
        batch in 1usize..12,
    ) {
        let ds = SynthNet::new(seed, 4, 64, 8, 0.4);
        let indices: Vec<usize> = (0..batch).map(|i| (i * 7) % 64).collect();
        let expected: Vec<usize> = indices.iter().map(|&i| i % 4).collect();
        let (x, labels) = load_batch(&ds, &indices, AugmentConfig::train(), &mut Rng::new(seed));
        prop_assert_eq!(labels, expected, "augmentation must not touch labels");
        prop_assert_eq!(x.shape().dims(), &[batch, 3, 8, 8]);
        prop_assert!(!x.has_non_finite());
    }

    #[test]
    fn materialize_matches_sample_into(
        seed in 0u64..100,
        idx in 0usize..64,
    ) {
        let ds = SynthNet::new(seed, 4, 64, 8, 0.4);
        let (batch, labels) = materialize_batch(&ds, &[idx]);
        let mut direct = vec![0.0f32; 3 * 64];
        let label = ds.sample_into(idx, &mut direct);
        prop_assert_eq!(labels[0], label);
        prop_assert_eq!(batch.data(), &direct[..]);
    }
}
