//! A tiny hand-rolled JSON writer.
//!
//! The workspace treats `serde_json` as an optional luxury: in hermetic build
//! environments it may be replaced by a stub that serializes placeholders (see
//! `serde_json_is_functional()` in `ets-train`). Every artifact that *must* be
//! machine-readable — Chrome traces, `BENCH_step_time.json`, bench `--json`
//! output — is therefore emitted through this writer, which depends on nothing
//! but `core::fmt`.
//!
//! Properties:
//! - valid UTF-8 JSON output (strings escaped per RFC 8259),
//! - floats printed via Rust's `Display`, which never uses exponent notation,
//!   so every number is a valid JSON literal,
//! - non-finite floats are sanitized (`NaN`/`±inf` → `null`) instead of
//!   producing invalid JSON,
//! - comma placement is tracked by a small container stack, so callers cannot
//!   produce `,]` or `[,` by construction.

use std::fmt::Write as _;

/// Streaming JSON writer with automatic comma management.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once the container has at least
    /// one element (so the next element needs a leading comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: String::with_capacity(cap),
            stack: Vec::with_capacity(16),
        }
    }

    /// Finish and return the JSON text. Panics if containers are unbalanced.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty(),
            "JsonWriter::finish with {} open container(s)",
            self.stack.len()
        );
        self.buf
    }

    fn elem_prefix(&mut self) {
        if let Some(has_prev) = self.stack.last_mut() {
            if *has_prev {
                self.buf.push(',');
            }
            *has_prev = true;
        }
    }

    pub fn begin_object(&mut self) -> &mut Self {
        self.elem_prefix();
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop().expect("end_object without begin_object");
        self.buf.push('}');
        self
    }

    pub fn begin_array(&mut self) -> &mut Self {
        self.elem_prefix();
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop().expect("end_array without begin_array");
        self.buf.push(']');
        self
    }

    /// Write an object key; the next value call supplies its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem_prefix();
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
        // The value that follows must not emit its own comma.
        if let Some(top) = self.stack.last_mut() {
            *top = false;
        }
        self
    }

    pub fn str_value(&mut self, v: &str) -> &mut Self {
        self.elem_prefix();
        write_escaped(&mut self.buf, v);
        self
    }

    pub fn u64_value(&mut self, v: u64) -> &mut Self {
        self.elem_prefix();
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn i64_value(&mut self, v: i64) -> &mut Self {
        self.elem_prefix();
        let _ = write!(self.buf, "{v}");
        self
    }

    pub fn f64_value(&mut self, v: f64) -> &mut Self {
        self.elem_prefix();
        if v.is_finite() {
            // Rust's `Display` for floats never uses exponent notation and
            // always includes at least one digit, so this is a valid JSON
            // number literal.
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool_value(&mut self, v: bool) -> &mut Self {
        self.elem_prefix();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub fn null_value(&mut self) -> &mut Self {
        self.elem_prefix();
        self.buf.push_str("null");
        self
    }

    /// Convenience: `"k": "v"` field.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str_value(v)
    }

    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64_value(v)
    }

    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64_value(v)
    }

    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool_value(v)
    }
}

/// Escape `s` per RFC 8259 and append it, quoted, to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_mixed_values() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("name", "step")
            .field_u64("ts", 12)
            .field_f64("dur", 1.5)
            .field_bool("ok", true)
            .key("tags")
            .begin_array()
            .str_value("a")
            .str_value("b")
            .end_array()
            .end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"step","ts":12,"dur":1.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut w = JsonWriter::new();
        w.begin_array().str_value("a\"b\\c\nd\u{1}").end_array();
        assert_eq!(w.finish(), "[\"a\\\"b\\\\c\\nd\\u0001\"]");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array()
            .f64_value(f64::NAN)
            .f64_value(f64::INFINITY)
            .f64_value(2.0)
            .end_array();
        assert_eq!(w.finish(), "[null,null,2]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("a")
            .begin_array()
            .end_array()
            .key("b")
            .begin_object()
            .end_object()
            .end_object();
        assert_eq!(w.finish(), r#"{"a":[],"b":{}}"#);
    }

    #[test]
    #[should_panic]
    fn unbalanced_containers_panic() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }

    #[test]
    fn float_display_has_no_exponent() {
        // Guard the assumption the writer relies on.
        for v in [1e-9_f64, 1e12, 0.1 + 0.2, f64::MIN_POSITIVE] {
            let s = format!("{v}");
            assert!(!s.contains('e') && !s.contains('E'), "{s}");
        }
    }
}
