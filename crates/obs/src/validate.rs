//! A small recursive-descent JSON parser plus a Chrome trace-event schema
//! validator.
//!
//! The parser exists because the hermetic build may substitute a stub
//! `serde_json` that cannot parse (see `serde_json_is_functional()` in
//! `ets-train`); CI still needs to *prove* that our exported artifacts are
//! well-formed JSON and that traces obey the trace-event contract
//! (well-formed events, monotone timestamps per `(pid, tid)` track).
//!
//! It parses standard RFC 8259 JSON (objects, arrays, strings with escapes,
//! numbers incl. exponents, `true`/`false`/`null`) — a superset of what
//! [`crate::json::JsonWriter`] emits.

use std::collections::BTreeMap;

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}' at end of input", b as char)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos - 1)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(arr));
        }
        loop {
            arr.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(arr)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: accept and combine if a low
                        // surrogate follows; lone surrogates are replaced.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bytes[self.pos..].starts_with(b"\\u") {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                } else {
                                    out.push('\u{FFFD}');
                                    out.push(char::from_u32(lo).unwrap_or('\u{FFFD}'));
                                }
                            } else {
                                out.push('\u{FFFD}');
                            }
                        } else {
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos - 1))
                }
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences byte by byte.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(format!("invalid UTF-8 at byte {start}")),
                        };
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(format!("truncated UTF-8 at byte {start}"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            let d = (c as char)
                .to_digit(16)
                .ok_or(format!("bad hex digit at byte {}", self.pos - 1))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

/// Statistics returned by a successful [`validate_chrome_trace`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total number of trace events.
    pub events: usize,
    /// Number of distinct `(pid, tid)` tracks.
    pub tracks: usize,
    /// Number of distinct pids (one per rank by convention).
    pub pids: usize,
    /// Count of "X" (complete span) events.
    pub spans: usize,
    /// Count of "i"/"I" (instant) events.
    pub instants: usize,
}

/// Validate Chrome trace-event JSON as exported by [`crate::chrome`]:
///
/// 1. the document parses as JSON,
/// 2. the top level is an object with a `traceEvents` array,
/// 3. every event carries `name` (string), `ph` (string), `pid`, `tid`, `ts`
///    (finite numbers); `"X"` events also carry a finite `dur >= 0`,
/// 4. within every `(pid, tid)` track, `ts` is monotone non-decreasing in
///    array order.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let doc = parse_json(json)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;

    let mut stats = TraceStats::default();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_obj().ok_or(format!("event {i} is not an object"))?;
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing string 'name'"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i} ({name}): missing string 'ph'"))?;
        let num_field = |k: &str| -> Result<f64, String> {
            let v = obj
                .get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("event {i} ({name}): missing number '{k}'"))?;
            if !v.is_finite() {
                return Err(format!("event {i} ({name}): non-finite '{k}'"));
            }
            Ok(v)
        };
        let pid = num_field("pid")? as u64;
        let tid = num_field("tid")? as u64;
        let ts = num_field("ts")?;
        match ph {
            "X" => {
                let dur = num_field("dur")?;
                if dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative dur"));
                }
                stats.spans += 1;
            }
            "i" | "I" => stats.instants += 1,
            "M" => {} // metadata events (process_name etc.) carry no dur
            other => return Err(format!("event {i} ({name}): unsupported ph '{other}'")),
        }
        if ph != "M" {
            let slot = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            if ts < *slot {
                return Err(format!(
                    "event {i} ({name}): ts {ts} < previous ts {} on track pid={pid} tid={tid}",
                    *slot
                ));
            }
            *slot = ts;
        }
        stats.events += 1;
    }
    stats.tracks = last_ts.len();
    stats.pids = last_ts
        .keys()
        .map(|(p, _)| *p)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    Ok(stats)
}

/// Validate a `BENCH_step_time.json` document against the v2 schema
/// (see [`crate::summary::STEP_TIME_SCHEMA`]), returning the run count:
///
/// 1. the document parses as JSON with a matching top-level `schema` tag,
/// 2. `runs` is a non-empty array of objects,
/// 3. every run carries a non-empty `label`, a `backend` string, finite
///    non-negative `step_ms` / `all_reduce_pct` / `overlap_pct` /
///    `bn_sync_pct` / `images_per_sec`, percentages within [0, 100], and
///    numeric `cores` / `global_batch` / `steps`.
pub fn validate_step_time_json(json: &str) -> Result<usize, String> {
    let doc = parse_json(json)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing top-level 'schema'")?;
    if schema != crate::summary::STEP_TIME_SCHEMA {
        return Err(format!(
            "schema '{schema}' != expected '{}'",
            crate::summary::STEP_TIME_SCHEMA
        ));
    }
    let runs = doc
        .get("runs")
        .ok_or("missing top-level 'runs'")?
        .as_arr()
        .ok_or("'runs' is not an array")?;
    if runs.is_empty() {
        return Err("'runs' is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        let obj = run.as_obj().ok_or(format!("run {i} is not an object"))?;
        let label = obj
            .get("label")
            .and_then(Value::as_str)
            .ok_or(format!("run {i}: missing string 'label'"))?;
        if label.is_empty() {
            return Err(format!("run {i}: empty label"));
        }
        obj.get("backend")
            .and_then(Value::as_str)
            .ok_or(format!("run {i} ({label}): missing string 'backend'"))?;
        let num = |k: &str| -> Result<f64, String> {
            let v = obj
                .get(k)
                .and_then(Value::as_f64)
                .ok_or(format!("run {i} ({label}): missing number '{k}'"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("run {i} ({label}): bad '{k}' = {v}"));
            }
            Ok(v)
        };
        for k in [
            "cores",
            "global_batch",
            "steps",
            "step_ms",
            "images_per_sec",
        ] {
            num(k)?;
        }
        for k in ["all_reduce_pct", "overlap_pct", "bn_sync_pct"] {
            let v = num(k)?;
            if v > 100.0 {
                return Err(format!("run {i} ({label}): '{k}' = {v} > 100"));
            }
        }
    }
    Ok(runs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_of_writer_output() {
        let mut w = crate::json::JsonWriter::new();
        w.begin_object()
            .field_str("name", "fwd \"quoted\"")
            .field_f64("dur", 0.125)
            .field_u64("step", 7)
            .key("xs")
            .begin_array()
            .f64_value(1.5)
            .null_value()
            .bool_value(false)
            .end_array()
            .end_object();
        let v = parse_json(&w.finish()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "fwd \"quoted\"");
        assert_eq!(v.get("dur").unwrap().as_f64().unwrap(), 0.125);
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1], Value::Null);
    }

    #[test]
    fn parses_numbers_with_exponents() {
        let v = parse_json("[1e3, -2.5E-2, 0.0, -0]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_f64().unwrap(), 1000.0);
        assert_eq!(a[1].as_f64().unwrap(), -0.025);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} x").is_err());
        assert!(parse_json("nul").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_json(r#""Aé😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé😀");
    }

    #[test]
    fn trace_validator_accepts_minimal_trace() {
        let json = r#"{"traceEvents":[
            {"name":"proc","ph":"M","pid":0,"tid":0,"ts":0,"args":{"name":"rank0"}},
            {"name":"step","ph":"X","pid":0,"tid":1,"ts":0,"dur":10},
            {"name":"fwd","ph":"X","pid":0,"tid":1,"ts":2,"dur":3},
            {"name":"mark","ph":"i","pid":0,"tid":2,"ts":5}
        ]}"#;
        let stats = validate_chrome_trace(json).unwrap();
        assert_eq!(stats.events, 4);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.pids, 1);
    }

    #[test]
    fn trace_validator_rejects_non_monotone_track() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":1,"ts":10,"dur":1},
            {"name":"b","ph":"X","pid":0,"tid":1,"ts":5,"dur":1}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("ts 5"), "{err}");
    }

    #[test]
    fn trace_validator_allows_same_ts_on_different_tracks() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"X","pid":0,"tid":1,"ts":10,"dur":1},
            {"name":"b","ph":"X","pid":1,"tid":1,"ts":0,"dur":1}
        ]}"#;
        assert!(validate_chrome_trace(json).is_ok());
    }

    #[test]
    fn trace_validator_rejects_missing_fields() {
        let json = r#"{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":1,"ts":10}]}"#;
        assert!(validate_chrome_trace(json).unwrap_err().contains("dur"));
        let json = r#"{"traceEvents":[{"ph":"X","pid":0,"tid":1,"ts":10,"dur":1}]}"#;
        assert!(validate_chrome_trace(json).unwrap_err().contains("name"));
    }

    #[test]
    fn step_time_validator_accepts_own_writer_output() {
        use crate::summary::{summaries_to_json, RunSummary};
        let mut run = RunSummary {
            label: "EfficientNet-B2 @ 1024 cores".into(),
            backend: "torus2d".into(),
            cores: 1024,
            global_batch: 32768,
            steps: 13_685,
            step_ms: 71.0,
            all_reduce_pct: 1.0,
            overlap_pct: 88.9,
            bn_sync_pct: 0.2,
            images_per_sec: 450_000.0,
            total_virtual_s: 71.0e-3,
            ..Default::default()
        };
        let doc = summaries_to_json(std::slice::from_ref(&run));
        assert_eq!(validate_step_time_json(&doc).unwrap(), 1);
        run.overlap_pct = 120.0;
        let doc = summaries_to_json(std::slice::from_ref(&run));
        assert!(validate_step_time_json(&doc)
            .unwrap_err()
            .contains("overlap_pct"));
    }

    #[test]
    fn step_time_validator_rejects_old_schema_and_missing_fields() {
        assert!(validate_step_time_json(r#"{"runs":[]}"#)
            .unwrap_err()
            .contains("schema"));
        let v1 = r#"{"schema":"bench_step_time_v1","runs":[{"label":"x"}]}"#;
        assert!(validate_step_time_json(v1).unwrap_err().contains("schema"));
        let empty = format!(
            r#"{{"schema":"{}","runs":[]}}"#,
            crate::summary::STEP_TIME_SCHEMA
        );
        assert!(validate_step_time_json(&empty)
            .unwrap_err()
            .contains("empty"));
        let no_backend = format!(
            r#"{{"schema":"{}","runs":[{{"label":"x","cores":1,"global_batch":1,"steps":0,"step_ms":1,"images_per_sec":1,"all_reduce_pct":1,"overlap_pct":0,"bn_sync_pct":0}}]}}"#,
            crate::summary::STEP_TIME_SCHEMA
        );
        assert!(validate_step_time_json(&no_backend)
            .unwrap_err()
            .contains("backend"));
    }
}
