//! The flight recorder: hierarchical spans on two clocks plus a zero-alloc
//! metrics registry.
//!
//! # Two-clock model
//!
//! Every event lives on exactly one of two clocks:
//!
//! - **Virtual seconds** — the deterministic simulated-pod clock that
//!   `StepTimeline` in `ets-train` accumulates. Virtual events are produced
//!   from the *same* `f64` values on every rank, in the same order, so the
//!   full virtual event stream is bit-identical across ranks and across
//!   collective backends. [`Recorder::virtual_fingerprint`] hashes exactly
//!   this stream (names, `f64` bit patterns, steps, aux payloads) so tests
//!   can assert the invariant cheaply.
//! - **Wall clock** — `Instant`-based measurements of where real host time
//!   goes (per-bucket all-reduce, checkpoint serialization, …). Wall events
//!   are inherently non-deterministic and are *excluded* from the
//!   fingerprint.
//!
//! # Cost discipline
//!
//! A **disabled** recorder must cost approximately nothing: every recording
//! entry point checks `enabled` first and returns before taking any lock,
//! reading any clock, or touching any buffer — no allocation, no formatting.
//! An **enabled** recorder follows the same pooled-scratch discipline as
//! `GradBucket`: the event buffer and metric slots are preallocated, and any
//! growth past the initial capacity is tallied in self-check counters
//! ([`Recorder::events_reallocs`], [`Recorder::registry_reallocs`]) that
//! tests pin to zero in steady state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// Which clock an event was recorded against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Deterministic simulated seconds (bit-identical across ranks).
    Virtual,
    /// Host wall clock (non-deterministic; excluded from fingerprints).
    Wall,
}

/// Span (has a duration) or instant (a point marker).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    Span,
    Instant,
}

/// A track within a rank's trace. Each lane maps to one Chrome `tid` and is
/// bound to a single clock; the numeric value *is* the tid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Lane {
    /// Virtual clock: per-step spans (`step`, `eval`).
    VirtualStep = 1,
    /// Virtual clock: control-plane spans (retry backoff, restart,
    /// straggler, checkpoint, resize) and rewind markers.
    VirtualControl = 2,
    /// Virtual clock: pod-simulator spans (`simulate_chaos` decomposition).
    VirtualSim = 3,
    /// Wall clock: coarse training phases (data/fwd/bwd/all-reduce/opt).
    WallPhase = 10,
    /// Wall clock: per-bucket all-reduce timings from `GradBucket`.
    WallBucket = 11,
    /// Wall clock: collective retry attempts (`FaultyCollective`).
    WallCollective = 12,
    /// Wall clock: durable checkpoint store I/O.
    WallCkpt = 13,
    /// Wall clock: evaluation passes.
    WallEval = 14,
}

impl Lane {
    /// The clock this lane records on.
    pub fn clock(self) -> Clock {
        if (self as u32) < 10 {
            Clock::Virtual
        } else {
            Clock::Wall
        }
    }

    /// Chrome trace `tid` for this lane.
    pub fn tid(self) -> u32 {
        self as u32
    }

    /// Human-readable thread name for trace metadata.
    pub fn label(self) -> &'static str {
        match self {
            Lane::VirtualStep => "virtual/steps",
            Lane::VirtualControl => "virtual/control",
            Lane::VirtualSim => "virtual/sim",
            Lane::WallPhase => "wall/phases",
            Lane::WallBucket => "wall/buckets",
            Lane::WallCollective => "wall/collective",
            Lane::WallCkpt => "wall/ckpt",
            Lane::WallEval => "wall/eval",
        }
    }
}

/// Canonical span/phase names shared by all producers, so exporters and
/// tests never compare against ad-hoc strings.
pub mod phase {
    pub const STEP: &str = "step";
    pub const DATA: &str = "data";
    pub const FORWARD: &str = "forward";
    pub const BACKWARD: &str = "backward";
    pub const ALL_REDUCE: &str = "all_reduce";
    pub const BUCKET: &str = "bucket";
    pub const OPTIMIZER: &str = "optimizer";
    pub const BN_SYNC: &str = "bn_sync";
    pub const EVAL: &str = "eval";
    pub const CHECKPOINT: &str = "checkpoint";
    pub const DURABLE_CHECKPOINT: &str = "durable_checkpoint";
    pub const RESIZE: &str = "resize";
    pub const RETRY_BACKOFF: &str = "retry_backoff";
    pub const RESTART: &str = "restart";
    pub const STRAGGLER: &str = "straggler";
    pub const DEGRADE: &str = "degrade";
    pub const REWIND: &str = "rewind";
    pub const RETRY_ATTEMPT: &str = "retry_attempt";
    pub const COLLECTIVE_FAULT: &str = "collective_fault";
}

/// One recorded event. `name` is `&'static str` by design: recording never
/// allocates or formats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    pub name: &'static str,
    pub kind: EventKind,
    pub lane: Lane,
    /// Start time in seconds on the lane's clock (virtual seconds, or wall
    /// seconds since the recorder's epoch).
    pub ts_s: f64,
    /// Duration in seconds; `0.0` for instants.
    pub dur_s: f64,
    /// Training/sim step the event belongs to.
    pub step: u64,
    /// Free payload slot (bucket index, retry attempt, world size, …).
    pub aux: u64,
}

struct EventBuf {
    events: Vec<Event>,
    /// Initial capacity; growth past it is a self-check violation tallied in
    /// `reallocs`.
    initial_capacity: usize,
    reallocs: u64,
}

/// A named atomic slot. Gauges store `f64` bit patterns.
struct Slot {
    name: &'static str,
    value: AtomicU64,
}

/// Fixed-bucket histogram: bounds are `1µs · 2^i` for `i in 0..BUCKETS-1`,
/// plus a final +inf bucket. Values are seconds.
pub const HISTOGRAM_BUCKETS: usize = 24;

struct HistSlot {
    name: &'static str,
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of observed values, stored as f64 bits (CAS loop).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Upper bound (in seconds) of histogram bucket `i`.
pub fn histogram_bound(i: usize) -> f64 {
    if i + 1 >= HISTOGRAM_BUCKETS {
        f64::INFINITY
    } else {
        1e-6 * (1u64 << i) as f64
    }
}

struct MetricsRegistry {
    counters: RwLock<Vec<Slot>>,
    gauges: RwLock<Vec<Slot>>,
    histograms: RwLock<Vec<HistSlot>>,
    /// Registrations that grew a registry vec past its preallocated
    /// capacity (self-check; should stay 0).
    reallocs: AtomicU64,
}

const REGISTRY_CAPACITY: usize = 64;

impl MetricsRegistry {
    fn new() -> Self {
        Self {
            counters: RwLock::new(Vec::with_capacity(REGISTRY_CAPACITY)),
            gauges: RwLock::new(Vec::with_capacity(REGISTRY_CAPACITY)),
            histograms: RwLock::new(Vec::with_capacity(REGISTRY_CAPACITY)),
            reallocs: AtomicU64::new(0),
        }
    }
}

/// The flight recorder. Shared across producers as `Arc<Recorder>`; all
/// methods take `&self`.
pub struct Recorder {
    enabled: bool,
    rank: u32,
    epoch: Instant,
    buf: Mutex<EventBuf>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("rank", &self.rank)
            .field("events", &self.buf.lock().events.len())
            .finish()
    }
}

/// Default preallocated event capacity (events, not bytes).
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

impl Recorder {
    /// An enabled recorder for `rank` with the default event capacity.
    pub fn enabled(rank: u32) -> Self {
        Self::with_capacity(rank, true, DEFAULT_EVENT_CAPACITY)
    }

    /// A disabled recorder: every recording entry point is a cheap
    /// early-return; no events are stored, no locks taken, no allocation.
    pub fn disabled() -> Self {
        Self::with_capacity(0, false, 0)
    }

    pub fn with_capacity(rank: u32, enabled: bool, capacity: usize) -> Self {
        Self {
            enabled,
            rank,
            epoch: Instant::now(),
            buf: Mutex::new(EventBuf {
                events: Vec::with_capacity(if enabled { capacity } else { 0 }),
                initial_capacity: if enabled { capacity } else { 0 },
                reallocs: 0,
            }),
            metrics: MetricsRegistry::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    // ---------------------------------------------------------------- spans

    /// Record a span on the **virtual** clock. `start_s`/`dur_s` must be the
    /// same deterministic values `StepTimeline` charges, so the stream stays
    /// bit-identical across ranks; callers never pass wall measurements here.
    pub fn virtual_span(
        &self,
        lane: Lane,
        name: &'static str,
        start_s: f64,
        dur_s: f64,
        step: u64,
        aux: u64,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(lane.clock(), Clock::Virtual);
        self.push(Event {
            name,
            kind: EventKind::Span,
            lane,
            ts_s: start_s,
            dur_s,
            step,
            aux,
        });
    }

    /// Record an instant marker on the **virtual** clock (e.g. a preemption
    /// rewind). The trace exporter re-sorts per track, so markers emitted
    /// out of order (rewinds revisit earlier virtual times) still export as
    /// monotone tracks.
    pub fn virtual_instant(&self, lane: Lane, name: &'static str, ts_s: f64, step: u64, aux: u64) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(lane.clock(), Clock::Virtual);
        self.push(Event {
            name,
            kind: EventKind::Instant,
            lane,
            ts_s,
            dur_s: 0.0,
            step,
            aux,
        });
    }

    /// Open a wall-clock span; the span closes (and is recorded) when the
    /// returned guard drops. On a disabled recorder the guard is inert and
    /// the clock is never read.
    #[must_use]
    pub fn wall_span(&self, lane: Lane, name: &'static str, step: u64, aux: u64) -> WallSpan<'_> {
        debug_assert_eq!(lane.clock(), Clock::Wall);
        WallSpan {
            rec: self,
            lane,
            name,
            step,
            aux,
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Record an already-measured wall duration (seconds). Used where a
    /// guard is awkward (e.g. durations measured by an existing stopwatch).
    pub fn wall_span_measured(
        &self,
        lane: Lane,
        name: &'static str,
        start_s: f64,
        dur_s: f64,
        step: u64,
        aux: u64,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(lane.clock(), Clock::Wall);
        self.push(Event {
            name,
            kind: EventKind::Span,
            lane,
            ts_s: start_s,
            dur_s,
            step,
            aux,
        });
    }

    /// Seconds since this recorder's wall epoch. `0.0` when disabled (the
    /// clock is not read).
    pub fn wall_now_s(&self) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        self.epoch.elapsed().as_secs_f64()
    }

    fn push(&self, ev: Event) {
        let mut buf = self.buf.lock();
        if buf.events.len() == buf.events.capacity()
            && buf.events.capacity() >= buf.initial_capacity
        {
            buf.reallocs += 1;
        }
        buf.events.push(ev);
    }

    // -------------------------------------------------------------- metrics

    /// Add `delta` to the named counter, registering it on first touch.
    /// Steady state (name already registered) is lock-read + atomic add —
    /// no allocation.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        slot_update(&self.metrics, &self.metrics.counters, name, |v| {
            v.fetch_add(delta, Ordering::Relaxed);
        });
    }

    /// Set the named gauge to `value` (f64, stored as bits).
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        slot_update(&self.metrics, &self.metrics.gauges, name, |v| {
            v.store(value.to_bits(), Ordering::Relaxed);
        });
    }

    /// Observe `value` (seconds) into the named histogram.
    pub fn histogram_observe(&self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        let bucket = bucket_index(value);
        {
            let hists = self.metrics.histograms.read();
            if let Some(h) = hists.iter().find(|h| h.name == name) {
                observe_into(h, bucket, value);
                return;
            }
        }
        let mut hists = self.metrics.histograms.write();
        if !hists.iter().any(|h| h.name == name) {
            if hists.len() == hists.capacity() {
                self.metrics.reallocs.fetch_add(1, Ordering::Relaxed);
            }
            hists.push(HistSlot {
                name,
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                count: AtomicU64::new(0),
            });
        }
        let h = hists.iter().find(|h| h.name == name).unwrap();
        observe_into(h, bucket, value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics
            .counters
            .read()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Current value of a gauge (None if never set).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.metrics
            .gauges
            .read()
            .iter()
            .find(|s| s.name == name)
            .map(|s| f64::from_bits(s.value.load(Ordering::Relaxed)))
    }

    /// `(count, sum)` of a histogram (zeros if never observed).
    pub fn histogram_stats(&self, name: &str) -> (u64, f64) {
        self.metrics
            .histograms
            .read()
            .iter()
            .find(|h| h.name == name)
            .map(|h| {
                (
                    h.count.load(Ordering::Relaxed),
                    f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                )
            })
            .unwrap_or((0, 0.0))
    }

    // ----------------------------------------------------------- self-check

    /// Times the event buffer grew past its preallocated capacity. Steady
    /// state must keep this at 0 (mirrors `scratch_reallocs` on the ring
    /// collective).
    pub fn events_reallocs(&self) -> u64 {
        self.buf.lock().reallocs
    }

    /// Times a metric registration grew a registry vec past capacity.
    pub fn registry_reallocs(&self) -> u64 {
        self.metrics.reallocs.load(Ordering::Relaxed)
    }

    /// Number of recorded events (all clocks).
    pub fn event_count(&self) -> usize {
        self.buf.lock().events.len()
    }

    // ------------------------------------------------------------ snapshots

    /// Clone out the event log (exporters and tests; not a hot path).
    pub fn events_snapshot(&self) -> Vec<Event> {
        self.buf.lock().events.clone()
    }

    /// FNV-1a over the **virtual** event stream in recorded order: names,
    /// `f64` bit patterns of ts/dur, lane, kind, step, aux. Wall events are
    /// skipped, so the fingerprint is identical across ranks and backends
    /// whenever the deterministic trajectory is.
    pub fn virtual_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        };
        let buf = self.buf.lock();
        for ev in buf
            .events
            .iter()
            .filter(|e| e.lane.clock() == Clock::Virtual)
        {
            for b in ev.name.as_bytes() {
                eat(*b);
            }
            eat(match ev.kind {
                EventKind::Span => 1,
                EventKind::Instant => 2,
            });
            eat(ev.lane.tid() as u8);
            for b in ev.ts_s.to_bits().to_le_bytes() {
                eat(b);
            }
            for b in ev.dur_s.to_bits().to_le_bytes() {
                eat(b);
            }
            for b in ev.step.to_le_bytes() {
                eat(b);
            }
            for b in ev.aux.to_le_bytes() {
                eat(b);
            }
        }
        h
    }

    /// Iterate metric snapshots for exporters: `(kind, name, value)`.
    pub(crate) fn counters_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.metrics
            .counters
            .read()
            .iter()
            .map(|s| (s.name, s.value.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn gauges_snapshot(&self) -> Vec<(&'static str, f64)> {
        self.metrics
            .gauges
            .read()
            .iter()
            .map(|s| (s.name, f64::from_bits(s.value.load(Ordering::Relaxed))))
            .collect()
    }

    pub(crate) fn histograms_snapshot(
        &self,
    ) -> Vec<(&'static str, [u64; HISTOGRAM_BUCKETS], u64, f64)> {
        self.metrics
            .histograms
            .read()
            .iter()
            .map(|h| {
                (
                    h.name,
                    std::array::from_fn(|i| h.counts[i].load(Ordering::Relaxed)),
                    h.count.load(Ordering::Relaxed),
                    f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                )
            })
            .collect()
    }
}

fn bucket_index(value: f64) -> usize {
    (0..HISTOGRAM_BUCKETS - 1)
        .find(|&i| value <= histogram_bound(i))
        .unwrap_or(HISTOGRAM_BUCKETS - 1)
}

fn observe_into(h: &HistSlot, bucket: usize, value: f64) {
    h.counts[bucket].fetch_add(1, Ordering::Relaxed);
    h.count.fetch_add(1, Ordering::Relaxed);
    let mut cur = h.sum_bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + value).to_bits();
        match h
            .sum_bits
            .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

/// Shared lookup-or-register for counter/gauge slots.
fn slot_update(
    reg: &MetricsRegistry,
    slots: &RwLock<Vec<Slot>>,
    name: &'static str,
    apply: impl Fn(&AtomicU64),
) {
    {
        let read = slots.read();
        if let Some(s) = read.iter().find(|s| s.name == name) {
            apply(&s.value);
            return;
        }
    }
    let mut write = slots.write();
    if !write.iter().any(|s| s.name == name) {
        if write.len() == write.capacity() {
            reg.reallocs.fetch_add(1, Ordering::Relaxed);
        }
        write.push(Slot {
            name,
            value: AtomicU64::new(0),
        });
    }
    let s = write.iter().find(|s| s.name == name).unwrap();
    apply(&s.value);
}

/// RAII wall-clock span; records on drop. Inert (clock never read) when the
/// recorder is disabled.
pub struct WallSpan<'a> {
    rec: &'a Recorder,
    lane: Lane,
    name: &'static str,
    step: u64,
    aux: u64,
    start: Option<Instant>,
}

impl WallSpan<'_> {
    /// Update the step/aux payload after opening (e.g. once the bucket
    /// index is known).
    pub fn set_aux(&mut self, aux: u64) {
        self.aux = aux;
    }
}

impl Drop for WallSpan<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ts_s = start.duration_since(self.rec.epoch).as_secs_f64();
            let dur_s = start.elapsed().as_secs_f64();
            self.rec.push(Event {
                name: self.name,
                kind: EventKind::Span,
                lane: self.lane,
                ts_s,
                dur_s,
                step: self.step,
                aux: self.aux,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing_and_never_allocates() {
        let r = Recorder::disabled();
        r.virtual_span(Lane::VirtualStep, phase::STEP, 0.0, 1.0, 0, 0);
        r.virtual_instant(Lane::VirtualControl, phase::REWIND, 0.5, 1, 0);
        {
            let _g = r.wall_span(Lane::WallPhase, phase::FORWARD, 0, 0);
        }
        r.counter_add("steps", 1);
        r.gauge_set("lr", 0.1);
        r.histogram_observe("step_s", 0.01);
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.events_reallocs(), 0);
        assert_eq!(r.registry_reallocs(), 0);
        assert_eq!(r.counter_value("steps"), 0);
        assert_eq!(r.gauge_value("lr"), None);
        assert_eq!(r.histogram_stats("step_s"), (0, 0.0));
    }

    #[test]
    fn enabled_recorder_within_capacity_never_reallocates() {
        let r = Recorder::with_capacity(0, true, 128);
        for step in 0..64 {
            r.virtual_span(Lane::VirtualStep, phase::STEP, step as f64, 1.0, step, 0);
            r.counter_add("steps", 1);
            r.histogram_observe("step_s", 1.0);
        }
        assert_eq!(r.event_count(), 64);
        assert_eq!(r.events_reallocs(), 0);
        assert_eq!(r.registry_reallocs(), 0);
        assert_eq!(r.counter_value("steps"), 64);
        assert_eq!(r.histogram_stats("step_s"), (64, 64.0));
    }

    #[test]
    fn overflow_past_capacity_is_tallied() {
        let r = Recorder::with_capacity(0, true, 4);
        for step in 0..10 {
            r.virtual_span(Lane::VirtualStep, phase::STEP, step as f64, 1.0, step, 0);
        }
        assert_eq!(r.event_count(), 10);
        assert!(r.events_reallocs() > 0);
    }

    #[test]
    fn fingerprint_covers_virtual_stream_only() {
        let mk = || {
            let r = Recorder::enabled(0);
            r.virtual_span(Lane::VirtualStep, phase::STEP, 0.0, 1.25, 0, 0);
            r.virtual_span(Lane::VirtualControl, phase::RESTART, 1.25, 5.0, 1, 2);
            r
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.virtual_fingerprint(), b.virtual_fingerprint());
        // Wall events must not perturb the fingerprint.
        {
            let _g = b.wall_span(Lane::WallPhase, phase::FORWARD, 0, 0);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(a.virtual_fingerprint(), b.virtual_fingerprint());
        // Virtual differences must.
        b.virtual_span(Lane::VirtualStep, phase::STEP, 6.25, 1.0, 2, 0);
        assert_ne!(a.virtual_fingerprint(), b.virtual_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_f64_bit_patterns() {
        let a = Recorder::enabled(0);
        let b = Recorder::enabled(0);
        a.virtual_span(Lane::VirtualStep, phase::STEP, 0.0, 0.1 + 0.2, 0, 0);
        b.virtual_span(Lane::VirtualStep, phase::STEP, 0.0, 0.3, 0, 0);
        // 0.1 + 0.2 != 0.3 bitwise; the fingerprint must see that.
        assert_ne!(a.virtual_fingerprint(), b.virtual_fingerprint());
    }

    #[test]
    fn wall_span_guard_records_on_drop() {
        let r = Recorder::enabled(3);
        {
            let mut g = r.wall_span(Lane::WallBucket, phase::BUCKET, 7, 0);
            g.set_aux(2);
        }
        let evs = r.events_snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, phase::BUCKET);
        assert_eq!(evs[0].step, 7);
        assert_eq!(evs[0].aux, 2);
        assert!(evs[0].dur_s >= 0.0);
        assert_eq!(evs[0].lane.clock(), Clock::Wall);
    }

    #[test]
    fn gauge_overwrites_and_counter_accumulates() {
        let r = Recorder::enabled(0);
        r.gauge_set("lr", 0.1);
        r.gauge_set("lr", 0.2);
        assert_eq!(r.gauge_value("lr"), Some(0.2));
        r.counter_add("retries", 2);
        r.counter_add("retries", 3);
        assert_eq!(r.counter_value("retries"), 5);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_capture_value() {
        assert!(histogram_bound(0) < histogram_bound(1));
        assert!(histogram_bound(HISTOGRAM_BUCKETS - 1).is_infinite());
        let r = Recorder::enabled(0);
        r.histogram_observe("d", 1e9); // lands in +inf bucket, no panic
        r.histogram_observe("d", 0.0);
        assert_eq!(r.histogram_stats("d").0, 2);
    }

    #[test]
    fn lane_clock_partition() {
        for lane in [Lane::VirtualStep, Lane::VirtualControl, Lane::VirtualSim] {
            assert_eq!(lane.clock(), Clock::Virtual);
        }
        for lane in [
            Lane::WallPhase,
            Lane::WallBucket,
            Lane::WallCollective,
            Lane::WallCkpt,
            Lane::WallEval,
        ] {
            assert_eq!(lane.clock(), Clock::Wall);
        }
    }
}
