//! Prometheus text-format exporter (exposition format 0.0.4).
//!
//! Dumps the recorder's counters, gauges and histograms as
//! `ets_<name>{rank="<r>"} <value>` lines. Metric names are sanitized to
//! `[a-zA-Z0-9_]`; histograms emit the conventional `_bucket{le=...}`,
//! `_sum`, `_count` triple with cumulative bucket counts.

use std::fmt::Write as _;

use crate::recorder::{histogram_bound, Recorder, HISTOGRAM_BUCKETS};

fn sanitize(name: &str, out: &mut String) {
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Render all metrics of `rec` in Prometheus text format.
pub fn prometheus_text(rec: &Recorder) -> String {
    prometheus_text_multi(&[rec])
}

/// Render metrics of several recorders (one `rank` label value each).
pub fn prometheus_text_multi(recs: &[&Recorder]) -> String {
    let mut out = String::with_capacity(4096);
    // Group by metric name so each # TYPE header appears once.
    let mut counter_names: Vec<&'static str> = Vec::new();
    let mut gauge_names: Vec<&'static str> = Vec::new();
    let mut hist_names: Vec<&'static str> = Vec::new();
    for rec in recs {
        for (n, _) in rec.counters_snapshot() {
            if !counter_names.contains(&n) {
                counter_names.push(n);
            }
        }
        for (n, _) in rec.gauges_snapshot() {
            if !gauge_names.contains(&n) {
                gauge_names.push(n);
            }
        }
        for (n, ..) in rec.histograms_snapshot() {
            if !hist_names.contains(&n) {
                hist_names.push(n);
            }
        }
    }

    for name in counter_names {
        let mut m = String::from("ets_");
        sanitize(name, &mut m);
        let _ = writeln!(out, "# TYPE {m} counter");
        for rec in recs {
            if let Some((_, v)) = rec
                .counters_snapshot()
                .into_iter()
                .find(|(n, _)| *n == name)
            {
                let _ = writeln!(out, "{m}{{rank=\"{}\"}} {v}", rec.rank());
            }
        }
    }
    for name in gauge_names {
        let mut m = String::from("ets_");
        sanitize(name, &mut m);
        let _ = writeln!(out, "# TYPE {m} gauge");
        for rec in recs {
            if let Some((_, v)) = rec.gauges_snapshot().into_iter().find(|(n, _)| *n == name) {
                let _ = writeln!(out, "{m}{{rank=\"{}\"}} {}", rec.rank(), fmt_f64(v));
            }
        }
    }
    for name in hist_names {
        let mut m = String::from("ets_");
        sanitize(name, &mut m);
        let _ = writeln!(out, "# TYPE {m} histogram");
        for rec in recs {
            if let Some((_, counts, count, sum)) = rec
                .histograms_snapshot()
                .into_iter()
                .find(|(n, ..)| *n == name)
            {
                let rank = rec.rank();
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate().take(HISTOGRAM_BUCKETS) {
                    cumulative += c;
                    let le = fmt_f64(histogram_bound(i));
                    let _ = writeln!(
                        out,
                        "{m}_bucket{{rank=\"{rank}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(out, "{m}_sum{{rank=\"{rank}\"}} {}", fmt_f64(sum));
                let _ = writeln!(out, "{m}_count{{rank=\"{rank}\"}} {count}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn counters_gauges_histograms_render() {
        let r = Recorder::enabled(2);
        r.counter_add("steps_total", 5);
        r.gauge_set("lr", 0.125);
        r.histogram_observe("step_seconds", 0.001);
        r.histogram_observe("step_seconds", 0.002);
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE ets_steps_total counter"), "{text}");
        assert!(text.contains("ets_steps_total{rank=\"2\"} 5"), "{text}");
        assert!(text.contains("ets_lr{rank=\"2\"} 0.125"), "{text}");
        assert!(text.contains("# TYPE ets_step_seconds histogram"), "{text}");
        assert!(
            text.contains("ets_step_seconds_count{rank=\"2\"} 2"),
            "{text}"
        );
        assert!(text.contains("le=\"+Inf\""), "{text}");
    }

    #[test]
    fn cumulative_bucket_counts_are_monotone() {
        let r = Recorder::enabled(0);
        for v in [1e-6, 1e-3, 1e-1, 10.0] {
            r.histogram_observe("d", v);
        }
        let text = prometheus_text(&r);
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("ets_d_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
        assert_eq!(last, 4);
    }

    #[test]
    fn disabled_recorder_renders_empty() {
        let r = Recorder::disabled();
        r.counter_add("x", 1);
        assert!(prometheus_text(&r).is_empty());
    }
}
