//! Chrome trace-event JSON exporter.
//!
//! Output loads in `chrome://tracing` / Perfetto. Layout:
//!
//! - one **pid per rank** (the recorder's rank),
//! - one **tid per [`Lane`]** (`Lane::tid`), named via `M` metadata events,
//! - spans exported as `"X"` complete events, instants as `"i"`,
//! - timestamps in **microseconds** (`ts_s * 1e6`), durations likewise.
//!
//! Events are sorted by `(pid, tid, ts, original order)` before emission, so
//! every `(pid, tid)` track is monotone even when the producer revisited
//! earlier virtual times (preemption rewind, divergence rollback). The
//! rewind itself stays visible as an `"i"` instant on the control lane.

use crate::json::JsonWriter;
use crate::recorder::{Event, EventKind, Lane, Recorder};

/// Export one recorder (one rank / one pid).
pub fn chrome_trace(rec: &Recorder) -> String {
    chrome_trace_multi(&[rec])
}

/// Export several recorders into one trace, one pid per rank.
pub fn chrome_trace_multi(recs: &[&Recorder]) -> String {
    let mut w = JsonWriter::with_capacity(64 * 1024);
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    for rec in recs {
        let pid = rec.rank();
        // Process metadata.
        w.begin_object()
            .field_str("name", "process_name")
            .field_str("ph", "M")
            .field_u64("pid", pid as u64)
            .field_u64("tid", 0)
            .field_u64("ts", 0)
            .key("args")
            .begin_object();
        // The process label; allocate once per rank, not per event.
        let label = format!("rank {pid}");
        w.field_str("name", &label).end_object().end_object();

        let mut events = rec.events_snapshot();
        let used_lanes = lanes_used(&events);
        for lane in used_lanes {
            w.begin_object()
                .field_str("name", "thread_name")
                .field_str("ph", "M")
                .field_u64("pid", pid as u64)
                .field_u64("tid", lane.tid() as u64)
                .field_u64("ts", 0)
                .key("args")
                .begin_object()
                .field_str("name", lane.label())
                .end_object()
                .end_object();
        }

        // Stable sort by (tid, ts); original order breaks ties, which keeps
        // nested spans (same start) in emission order.
        events.sort_by(|a, b| {
            (a.lane.tid(), a.ts_s)
                .partial_cmp(&(b.lane.tid(), b.ts_s))
                .expect("finite ts")
        });
        for ev in &events {
            emit_event(&mut w, pid, ev);
        }
    }

    w.end_array();
    w.field_str("displayTimeUnit", "ms");
    w.end_object();
    w.finish()
}

fn lanes_used(events: &[Event]) -> Vec<Lane> {
    let mut lanes: Vec<Lane> = Vec::new();
    for ev in events {
        if !lanes.contains(&ev.lane) {
            lanes.push(ev.lane);
        }
    }
    lanes.sort_by_key(|l| l.tid());
    lanes
}

fn emit_event(w: &mut JsonWriter, pid: u32, ev: &Event) {
    let ts_us = ev.ts_s * 1e6;
    w.begin_object()
        .field_str("name", ev.name)
        .field_u64("pid", pid as u64)
        .field_u64("tid", ev.lane.tid() as u64)
        .field_f64("ts", ts_us);
    match ev.kind {
        EventKind::Span => {
            w.field_str("ph", "X").field_f64("dur", ev.dur_s * 1e6);
        }
        EventKind::Instant => {
            w.field_str("ph", "i").field_str("s", "t");
        }
    }
    w.key("args")
        .begin_object()
        .field_u64("step", ev.step)
        .field_u64("aux", ev.aux)
        .end_object()
        .end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{phase, Lane, Recorder};
    use crate::validate::validate_chrome_trace;

    fn sample_recorder(rank: u32) -> Recorder {
        let r = Recorder::enabled(rank);
        r.virtual_span(Lane::VirtualStep, phase::STEP, 0.0, 1.0, 0, 0);
        r.virtual_span(Lane::VirtualStep, phase::STEP, 1.0, 1.0, 1, 0);
        r.virtual_span(Lane::VirtualControl, phase::RESTART, 2.0, 5.0, 2, 0);
        // Rewind: control lane revisits an earlier virtual time.
        r.virtual_instant(Lane::VirtualControl, phase::REWIND, 0.5, 2, 0);
        {
            let _g = r.wall_span(Lane::WallBucket, phase::BUCKET, 0, 1);
        }
        r
    }

    #[test]
    fn trace_validates_and_counts_tracks() {
        let r = sample_recorder(0);
        let json = chrome_trace(&r);
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.pids, 1);
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.tracks, 3); // VirtualStep, VirtualControl, WallBucket
    }

    #[test]
    fn multi_rank_trace_has_one_pid_per_rank() {
        let r0 = sample_recorder(0);
        let r1 = sample_recorder(1);
        let json = chrome_trace_multi(&[&r0, &r1]);
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.pids, 2);
    }

    #[test]
    fn out_of_order_emission_still_yields_monotone_tracks() {
        let r = Recorder::enabled(0);
        // Emit wildly out of order on one lane.
        r.virtual_span(Lane::VirtualStep, phase::STEP, 5.0, 1.0, 5, 0);
        r.virtual_span(Lane::VirtualStep, phase::STEP, 1.0, 1.0, 1, 0);
        r.virtual_instant(Lane::VirtualStep, phase::REWIND, 0.0, 0, 0);
        let json = chrome_trace(&r);
        validate_chrome_trace(&json).unwrap();
    }

    #[test]
    fn disabled_recorder_exports_empty_but_valid_trace() {
        let r = Recorder::disabled();
        let json = chrome_trace(&r);
        let stats = validate_chrome_trace(&json).unwrap();
        assert_eq!(stats.spans, 0);
    }
}
