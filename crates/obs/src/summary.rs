//! Table-1-style per-run summary.
//!
//! One [`RunSummary`] per operating point / training run: step time,
//! all-reduce share, throughput, and the recovery/resize overhead
//! decomposition that Table 1 and Figure 1 of the paper report. Summaries
//! serialize through the crate's own [`JsonWriter`](crate::json::JsonWriter)
//! so the output is valid JSON even where `serde_json` is stubbed; the
//! `serde` derives exist for API compatibility with the rest of the
//! workspace's report structs.

use serde::{Deserialize, Serialize};

use crate::json::JsonWriter;

/// Virtual-seconds overhead decomposition of a (possibly faulted) run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OverheadDecomposition {
    /// Collective retry exponential backoff.
    pub retry_backoff_s: f64,
    /// Preemption restart delays (incl. replayed steps charged by restarts).
    pub restart_s: f64,
    /// Straggler stalls.
    pub straggler_s: f64,
    /// Link-degradation slowdown.
    pub degrade_s: f64,
    /// Elastic resize total (checkpoint + rebuild + restart + degraded steps).
    pub resize_s: f64,
}

impl OverheadDecomposition {
    pub fn total(&self) -> f64 {
        self.retry_backoff_s + self.restart_s + self.straggler_s + self.degrade_s + self.resize_s
    }
}

/// One row of a Table-1-style report.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Operating point label, e.g. `"EfficientNet-B2 @ 256 cores"`.
    pub label: String,
    /// Collective backend the row is priced for or was trained with
    /// (`"tree" | "ring" | "torus2d" | "auto"`; empty in rows predating
    /// the per-backend schema).
    #[serde(default)]
    pub backend: String,
    pub cores: u64,
    pub global_batch: u64,
    pub steps: u64,
    /// Mean step time in milliseconds.
    pub step_ms: f64,
    /// All-reduce share of step time, percent.
    pub all_reduce_pct: f64,
    /// Share of total per-bucket all-reduce time hidden behind backward
    /// compute by the overlapped exchange, percent (`0` when serialized).
    #[serde(default)]
    pub overlap_pct: f64,
    /// Batch-norm sync share of step time, percent.
    pub bn_sync_pct: f64,
    /// Throughput in images per second.
    pub images_per_sec: f64,
    /// Total virtual seconds of the run (fault-free + overhead).
    pub total_virtual_s: f64,
    /// Silent-data-corruption detections (ABFT tile checksums + gradient
    /// fingerprints). Zero in rows predating the corruption defense.
    #[serde(default)]
    pub corruptions_detected: u64,
    /// Corruptions healed in place (tile recompute / verified retry).
    #[serde(default)]
    pub corruptions_corrected: u64,
    /// Ranks quarantined by unhealable corruption.
    #[serde(default)]
    pub rank_quarantines: u64,
    pub overhead: OverheadDecomposition,
}

impl RunSummary {
    /// Write this summary as one JSON object into `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_str("label", &self.label)
            .field_str("backend", &self.backend)
            .field_u64("cores", self.cores)
            .field_u64("global_batch", self.global_batch)
            .field_u64("steps", self.steps)
            .field_f64("step_ms", self.step_ms)
            .field_f64("all_reduce_pct", self.all_reduce_pct)
            .field_f64("overlap_pct", self.overlap_pct)
            .field_f64("bn_sync_pct", self.bn_sync_pct)
            .field_f64("images_per_sec", self.images_per_sec)
            .field_f64("total_virtual_s", self.total_virtual_s)
            .field_u64("corruptions_detected", self.corruptions_detected)
            .field_u64("corruptions_corrected", self.corruptions_corrected)
            .field_u64("rank_quarantines", self.rank_quarantines)
            .key("overhead")
            .begin_object()
            .field_f64("retry_backoff_s", self.overhead.retry_backoff_s)
            .field_f64("restart_s", self.overhead.restart_s)
            .field_f64("straggler_s", self.overhead.straggler_s)
            .field_f64("degrade_s", self.overhead.degrade_s)
            .field_f64("resize_s", self.overhead.resize_s)
            .field_f64("total_s", self.overhead.total())
            .end_object()
            .end_object();
    }

    /// This summary alone as a JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Schema tag of the step-time benchmark document: v2 adds per-row
/// `backend` names and the per-backend scaling rows.
pub const STEP_TIME_SCHEMA: &str = "bench_step_time_v2";

/// Render a set of summaries as `{"schema": ..., "runs": [...]}` — the
/// shape of `BENCH_step_time.json` and the bench bins' `--json` output.
pub fn summaries_to_json(runs: &[RunSummary]) -> String {
    let mut w = JsonWriter::with_capacity(8192);
    w.begin_object()
        .field_str("schema", STEP_TIME_SCHEMA)
        .key("runs")
        .begin_array();
    for r in runs {
        r.write_json(&mut w);
    }
    w.end_array().end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::parse_json;

    fn sample() -> RunSummary {
        RunSummary {
            label: "EfficientNet-B2 @ 256 cores".into(),
            backend: "torus2d".into(),
            cores: 256,
            global_batch: 16384,
            steps: 100,
            step_ms: 123.4,
            all_reduce_pct: 7.5,
            overlap_pct: 42.0,
            bn_sync_pct: 1.25,
            images_per_sec: 132_000.0,
            total_virtual_s: 12.34,
            corruptions_detected: 3,
            corruptions_corrected: 2,
            rank_quarantines: 1,
            overhead: OverheadDecomposition {
                retry_backoff_s: 0.35,
                restart_s: 5.0,
                straggler_s: 1.5,
                degrade_s: 0.0,
                resize_s: 10.0,
            },
        }
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        let s = sample();
        let v = parse_json(&s.to_json()).unwrap();
        assert_eq!(v.get("label").unwrap().as_str().unwrap(), s.label);
        assert_eq!(v.get("cores").unwrap().as_f64().unwrap() as u64, 256);
        assert_eq!(v.get("step_ms").unwrap().as_f64().unwrap(), 123.4);
        assert_eq!(v.get("overlap_pct").unwrap().as_f64().unwrap(), 42.0);
        assert_eq!(
            v.get("corruptions_detected").unwrap().as_f64().unwrap() as u64,
            3
        );
        assert_eq!(
            v.get("rank_quarantines").unwrap().as_f64().unwrap() as u64,
            1
        );
        let ov = v.get("overhead").unwrap();
        assert_eq!(
            ov.get("total_s").unwrap().as_f64().unwrap(),
            s.overhead.total()
        );
    }

    #[test]
    fn summaries_document_shape() {
        let doc = summaries_to_json(&[sample(), sample()]);
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str().unwrap(), STEP_TIME_SCHEMA);
        assert_eq!(v.get("runs").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("runs").unwrap().as_arr().unwrap()[0]
                .get("backend")
                .unwrap()
                .as_str()
                .unwrap(),
            "torus2d"
        );
    }

    #[test]
    fn overhead_total_is_component_sum() {
        let s = sample();
        assert!((s.overhead.total() - 16.85).abs() < 1e-12);
    }
}
