//! `ets-obs` — the deterministic flight recorder.
//!
//! A unified tracing/metrics layer for the whole workspace, sitting at the
//! bottom of the dependency stack (beside `ets-collective`). Producers —
//! the trainer phase loop, `GradBucket`, `FaultyCollective`, the durable
//! checkpoint store, the pod chaos simulator, and the bench bins — record
//! into one [`Recorder`] instead of private ad-hoc structs.
//!
//! Three pieces:
//!
//! 1. [`recorder`] — hierarchical spans on **two clocks** (deterministic
//!    virtual seconds, asserted bit-identical across ranks/backends, and
//!    host wall clock) plus a counters/gauges/histograms registry that is
//!    zero-alloc in steady state with `scratch_reallocs`-style self-checks.
//! 2. Exporters — [`chrome`] (trace-event JSON, one pid per rank),
//!    [`summary`] (Table-1-style per-run rows), [`prom`] (Prometheus text).
//! 3. [`json`] / [`validate`] — a dependency-free JSON writer and a mini
//!    parser + trace-event schema validator, so artifacts stay valid and
//!    verifiable even where `serde_json` is stubbed out.

pub mod chrome;
pub mod json;
pub mod prom;
pub mod recorder;
pub mod summary;
pub mod validate;

pub use chrome::{chrome_trace, chrome_trace_multi};
pub use json::JsonWriter;
pub use prom::{prometheus_text, prometheus_text_multi};
pub use recorder::{phase, Clock, Event, EventKind, Lane, Recorder, WallSpan};
pub use summary::{summaries_to_json, OverheadDecomposition, RunSummary, STEP_TIME_SCHEMA};
pub use validate::{parse_json, validate_chrome_trace, validate_step_time_json, TraceStats, Value};
