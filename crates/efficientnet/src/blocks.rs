//! The MBConv block — EfficientNet's building unit.
//!
//! `x → [1×1 expand → BN → swish] → k×k depthwise → BN → swish → SE →
//! 1×1 project → BN → (+ drop-path residual when stride 1 and C_in = C_out)`
//!
//! The expansion stage is skipped when `expand_ratio == 1` (stage 1).
//! SE's bottleneck width is `max(1, se_ratio · in_filters)` — based on the
//! block's *input* filters, matching the reference implementation.

use ets_nn::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, DropPath, Layer, Mode, Param, Precision, SqueezeExcite,
    StatSync, Swish,
};
use ets_tensor::{same_pad, Rng, Tensor};
use std::sync::Arc;

/// One MBConv block.
pub struct MbConvBlock {
    expand: Option<(Conv2d, BatchNorm2d, Swish)>,
    depthwise: DepthwiseConv2d,
    dw_bn: BatchNorm2d,
    dw_act: Swish,
    se: SqueezeExcite,
    project: Conv2d,
    proj_bn: BatchNorm2d,
    drop_path: DropPath,
    residual: bool,
    cache_input: Option<Tensor>,
    label: String,
}

impl MbConvBlock {
    /// Builds a block.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        in_filters: usize,
        out_filters: usize,
        kernel: usize,
        stride: usize,
        expand_ratio: usize,
        se_ratio: f32,
        drop_connect: f32,
        precision: Precision,
        rng: &mut Rng,
    ) -> Self {
        let label = label.into();
        let expanded = in_filters * expand_ratio;
        let expand = (expand_ratio != 1).then(|| {
            (
                Conv2d::new(
                    format!("{label}.expand"),
                    in_filters,
                    expanded,
                    1,
                    1,
                    0,
                    precision,
                    rng,
                ),
                BatchNorm2d::new(format!("{label}.expand_bn"), expanded),
                Swish::new(),
            )
        });
        let se_dim = ((in_filters as f32 * se_ratio) as usize).max(1);
        MbConvBlock {
            expand,
            depthwise: DepthwiseConv2d::new(
                format!("{label}.dw"),
                expanded,
                kernel,
                stride,
                same_pad(kernel),
                precision,
                rng,
            ),
            dw_bn: BatchNorm2d::new(format!("{label}.dw_bn"), expanded),
            dw_act: Swish::new(),
            se: SqueezeExcite::new(
                format!("{label}.se"),
                expanded,
                se_dim,
                precision.policy(),
                rng,
            ),
            project: Conv2d::new(
                format!("{label}.project"),
                expanded,
                out_filters,
                1,
                1,
                0,
                precision,
                rng,
            ),
            proj_bn: BatchNorm2d::new(format!("{label}.proj_bn"), out_filters),
            drop_path: DropPath::new(drop_connect),
            residual: stride == 1 && in_filters == out_filters,
            cache_input: None,
            label,
        }
    }

    /// Whether the block carries an identity skip connection.
    pub fn has_residual(&self) -> bool {
        self.residual
    }

    /// Visits every batch-norm layer (for distributed-BN wiring).
    pub fn visit_bns(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        if let Some((_, bn, _)) = &mut self.expand {
            f(bn);
        }
        f(&mut self.dw_bn);
        f(&mut self.proj_bn);
    }

    /// Replaces the stat-sync on all BN layers in the block.
    pub fn set_bn_sync(&mut self, sync: Arc<dyn StatSync>) {
        self.visit_bns(&mut |bn| bn.set_sync(Arc::clone(&sync)));
    }
}

impl Layer for MbConvBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        self.cache_input = self.residual.then(|| x.clone());
        let mut cur = x.clone();
        if let Some((conv, bn, act)) = &mut self.expand {
            cur = conv.forward(&cur, mode, rng);
            cur = bn.forward(&cur, mode, rng);
            cur = act.forward(&cur, mode, rng);
        }
        cur = self.depthwise.forward(&cur, mode, rng);
        cur = self.dw_bn.forward(&cur, mode, rng);
        cur = self.dw_act.forward(&cur, mode, rng);
        cur = self.se.forward(&cur, mode, rng);
        cur = self.project.forward(&cur, mode, rng);
        cur = self.proj_bn.forward(&cur, mode, rng);
        if self.residual {
            cur = self.drop_path.forward(&cur, mode, rng);
            cur.add_assign(x);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        if self.residual {
            g = self.drop_path.backward(&g);
        }
        g = self.proj_bn.backward(&g);
        g = self.project.backward(&g);
        g = self.se.backward(&g);
        g = self.dw_act.backward(&g);
        g = self.dw_bn.backward(&g);
        g = self.depthwise.backward(&g);
        if let Some((conv, bn, act)) = &mut self.expand {
            g = act.backward(&g);
            g = bn.backward(&g);
            g = conv.backward(&g);
        }
        if self.residual {
            let _ = self.cache_input.take();
            g.add_assign(grad);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        if let Some((conv, bn, _)) = &mut self.expand {
            conv.visit_params(f);
            bn.visit_params(f);
        }
        self.depthwise.visit_params(f);
        self.dw_bn.visit_params(f);
        self.se.visit_params(f);
        self.project.visit_params(f);
        self.proj_bn.visit_params(f);
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_nn::zero_grads;

    fn block(in_f: usize, out_f: usize, stride: usize, expand: usize) -> MbConvBlock {
        let mut rng = Rng::new(7);
        MbConvBlock::new(
            "b",
            in_f,
            out_f,
            3,
            stride,
            expand,
            0.25,
            0.0,
            Precision::F32,
            &mut rng,
        )
    }

    #[test]
    fn shapes_stride1_residual() {
        let mut b = block(8, 8, 1, 6);
        assert!(b.has_residual());
        let mut rng = Rng::new(0);
        let mut x = Tensor::zeros([2, 8, 8, 8]);
        rng.fill_normal(x.data_mut(), 0.0, 1.0);
        let y = b.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape().dims(), x.shape().dims());
        let dx = b.backward(&Tensor::ones(y.shape().dims()));
        assert_eq!(dx.shape().dims(), x.shape().dims());
    }

    #[test]
    fn shapes_stride2_no_residual() {
        let mut b = block(8, 16, 2, 6);
        assert!(!b.has_residual());
        let mut rng = Rng::new(0);
        let x = Tensor::ones([1, 8, 8, 8]);
        let y = b.forward(&x, Mode::Train, &mut rng);
        assert_eq!(y.shape().dims(), &[1, 16, 4, 4]);
    }

    #[test]
    fn expand_ratio_one_skips_expansion() {
        let mut b = block(8, 8, 1, 1);
        let mut names = Vec::new();
        b.visit_params(&mut |p| names.push(p.name.clone()));
        // SE's `se_expand` is expected; the 1×1 channel-expansion conv is not.
        assert!(
            !names.iter().any(|n| n.starts_with("b.expand")),
            "no expansion params expected: {names:?}"
        );
    }

    #[test]
    fn bn_count() {
        let mut b = block(8, 16, 1, 6);
        let mut count = 0;
        b.visit_bns(&mut |_| count += 1);
        assert_eq!(count, 3);
        let mut b1 = block(8, 8, 1, 1);
        let mut count1 = 0;
        b1.visit_bns(&mut |_| count1 += 1);
        assert_eq!(count1, 2);
    }

    #[test]
    fn residual_gradient_includes_identity_path() {
        // With the branch effectively silenced (γ of proj BN at 0 makes the
        // branch output 0 and its input-gradient contribution 0 only through
        // BN's affine... simpler: numerically check total gradient flows).
        let mut b = block(4, 4, 1, 6);
        let mut rng = Rng::new(1);
        let mut x = Tensor::zeros([1, 4, 5, 5]);
        rng.fill_normal(x.data_mut(), 0.0, 1.0);
        let y = b.forward(&x, Mode::Train, &mut rng);
        // A constant upstream gradient dies in BN's backward (its centered
        // form annihilates constants), so perturb it.
        let mut g = Tensor::ones(y.shape().dims());
        rng.fill_uniform(g.data_mut(), 0.5, 1.5);
        let dx = b.backward(&g);
        // The identity path guarantees dx ⊇ grad: subtracting it leaves the
        // branch gradient, which must be much smaller than 1 in L∞ for a
        // freshly-initialized block but not exactly zero.
        let mut branch = dx.clone();
        branch.sub_assign(&g);
        assert!(branch.l2_norm() > 0.0);
    }

    #[test]
    fn finite_difference_through_whole_block() {
        let mut rng = Rng::new(2);
        let mut b = block(4, 4, 1, 2);
        let mut x = Tensor::zeros([1, 4, 4, 4]);
        rng.fill_uniform(x.data_mut(), -1.0, 1.0);
        let mut g = Tensor::zeros(x.shape().dims());
        rng.fill_uniform(g.data_mut(), -1.0, 1.0);
        let _y = b.forward(&x, Mode::Train, &mut rng);
        let dx = b.backward(&g);
        let loss = |b: &mut MbConvBlock, x: &Tensor| -> f64 {
            let mut r = Rng::new(0);
            let y = b.forward(x, Mode::Train, &mut r);
            zero_grads(b);
            // Drain caches so repeated forwards don't leak.
            let _ = b.backward(&Tensor::zeros(y.shape().dims()));
            y.data()
                .iter()
                .zip(g.data())
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };
        let eps = 1e-2f32;
        for &i in &[0usize, 15, 33, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = ((loss(&mut b, &xp) - loss(&mut b, &xm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.data()[i]).abs() < 5e-2 * (1.0 + num.abs()),
                "dx[{i}] numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
    }
}
