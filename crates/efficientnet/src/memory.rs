//! Activation-memory accounting.
//!
//! Training memory per core is what actually caps the per-core batch on
//! TPUs: B5 at 456² with batch 64/core (the paper's 65536 run) sits near
//! the 16 GiB-per-core HBM limit. This walk mirrors `model.rs` and counts
//! the activations a training step must keep alive for the backward pass.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Per-image memory footprint estimate, in f32 elements.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Activations cached for backward, per image (elements).
    pub activation_elems: u64,
}

/// XLA's effect on live activation memory: operator fusion (BN + swish
/// fold into the conv epilogue, so their "cached inputs" share one buffer)
/// and rematerialization of cheap elementwise ops shrink the naive
/// keep-everything estimate by roughly this factor on TPU.
pub const XLA_REMAT_FACTOR: f64 = 3.0;

impl MemoryStats {
    /// Naive activation bytes per image (every backward input kept).
    pub fn activation_bytes(&self, bytes_per_elem: f64) -> f64 {
        self.activation_elems as f64 * bytes_per_elem
    }

    /// Activation bytes per image after XLA fusion/rematerialization.
    pub fn effective_activation_bytes(&self, bytes_per_elem: f64) -> f64 {
        self.activation_bytes(bytes_per_elem) / XLA_REMAT_FACTOR
    }
}

fn same_out(extent: usize, stride: usize) -> usize {
    extent.div_ceil(stride)
}

/// Estimates activations cached per image for a training step.
///
/// Counts each layer's *input* (what its backward consumes) once: convs
/// and BNs cache full feature maps; activations cache masks/inputs of the
/// same size; SE adds only pooled vectors (negligible but counted).
pub fn memory_stats(cfg: &ModelConfig) -> MemoryStats {
    let mut elems = 0u64;
    let mut r = cfg.resolution;

    // Stem conv input (3×r²) + BN/act caches at stem resolution.
    elems += (3 * r * r) as u64;
    r = same_out(r, 2);
    let stem_f = cfg.stem_filters();
    elems += 3 * (stem_f * r * r) as u64; // conv out cached by BN, act, next layer

    for args in &cfg.blocks {
        let in_f0 = cfg.round_filters(args.in_filters);
        let out_f = cfg.round_filters(args.out_filters);
        for rep in 0..cfg.round_repeats(args.repeats) {
            let (in_f, stride) = if rep == 0 {
                (in_f0, args.stride)
            } else {
                (out_f, 1)
            };
            let expanded = in_f * args.expand_ratio;
            let r_out = same_out(r, stride);
            // Expansion stage caches at input resolution.
            if args.expand_ratio != 1 {
                elems += 3 * (expanded * r * r) as u64;
            }
            // Depthwise + BN + act at output resolution.
            elems += 3 * (expanded * r_out * r_out) as u64;
            // SE: cached gated input + pooled vectors.
            elems += (expanded * r_out * r_out) as u64;
            elems += 2 * expanded as u64;
            // Projection + BN.
            elems += 2 * (out_f * r_out * r_out) as u64;
            r = r_out;
        }
    }

    let head_f = cfg.head_filters();
    elems += 3 * (head_f * r * r) as u64;
    elems += 2 * head_f as u64; // pooled features + dropout mask

    MemoryStats {
        activation_elems: elems,
    }
}

/// Maximum per-core batch that fits in `hbm_bytes`, given the model's
/// parameters/gradients/optimizer state (3× params, f32) and activations
/// (stored at `act_bytes_per_elem` — 2.0 when convs keep bf16 copies).
pub fn max_per_core_batch(
    cfg: &ModelConfig,
    params: u64,
    hbm_bytes: f64,
    act_bytes_per_elem: f64,
) -> usize {
    let fixed = 3.0 * params as f64 * 4.0; // weights + grads + optimizer slot
    let per_image = memory_stats(cfg).effective_activation_bytes(act_bytes_per_elem);
    if fixed >= hbm_bytes {
        return 0;
    }
    ((hbm_bytes - fixed) / per_image) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::flops::model_stats;

    const HBM_PER_CORE: f64 = 16.0 * 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn b5_activation_memory_is_large() {
        let cfg = ModelConfig::variant(Variant::B5);
        let m = memory_stats(&cfg);
        let bytes_per_img = m.activation_bytes(2.0); // bf16 activations
                                                     // B5 at 456² runs hundreds of MB of activations per image.
        assert!(
            bytes_per_img > 100e6 && bytes_per_img < 2e9,
            "B5 activations {bytes_per_img:.2e} B/img"
        );
    }

    #[test]
    fn paper_batch_64_per_core_is_near_the_limit() {
        // The paper pushed B5 to 64 images/core; the estimate should say
        // that's within HBM for bf16 activations but within ~4× of the
        // ceiling (i.e., genuinely "large" for this chip).
        let cfg = ModelConfig::variant(Variant::B5);
        let params = model_stats(&cfg).params;
        let max = max_per_core_batch(&cfg, params, HBM_PER_CORE, 2.0);
        assert!(max >= 64, "batch 64 must fit, got max {max}");
        assert!(max < 64 * 4, "but not by miles: max {max}");
    }

    #[test]
    fn smaller_models_fit_bigger_batches() {
        let b2 = ModelConfig::variant(Variant::B2);
        let b5 = ModelConfig::variant(Variant::B5);
        let m2 = max_per_core_batch(&b2, model_stats(&b2).params, HBM_PER_CORE, 2.0);
        let m5 = max_per_core_batch(&b5, model_stats(&b5).params, HBM_PER_CORE, 2.0);
        assert!(m2 > 2 * m5, "B2 max {m2} vs B5 max {m5}");
    }

    #[test]
    fn higher_resolution_costs_memory() {
        let lo = ModelConfig::tiny(16, 10);
        let mut hi = ModelConfig::tiny(16, 10);
        hi.resolution = 32;
        assert!(
            memory_stats(&hi).activation_elems > 3 * memory_stats(&lo).activation_elems,
            "4× pixels should cost ~4× activations"
        );
    }

    #[test]
    fn zero_when_params_alone_overflow() {
        let cfg = ModelConfig::variant(Variant::B0);
        assert_eq!(max_per_core_batch(&cfg, 1 << 40, HBM_PER_CORE, 2.0), 0);
    }
}
