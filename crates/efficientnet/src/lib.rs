//! # ets-efficientnet
//!
//! The EfficientNet model family (Tan & Le 2019), implemented with explicit
//! backprop on `ets-nn`: MBConv blocks with squeeze-and-excite and
//! stochastic depth, compound-scaled configurations B0–B7, and analytic
//! parameter/FLOP accounting used by the TPU pod simulator.
//!
//! For actual CPU training, [`config::ModelConfig::tiny`] gives a reduced
//! configuration with the identical architecture; the full B0–B7 configs
//! drive the performance model at their native resolutions.

pub mod blocks;
pub mod config;
pub mod flops;
pub mod memory;
pub mod model;

pub use blocks::MbConvBlock;
pub use config::{round_filters, round_repeats, BlockArgs, ModelConfig, Variant, B0_BLOCKS};
pub use flops::{model_stats, ModelStats};
pub use memory::{max_per_core_batch, memory_stats, MemoryStats};
pub use model::EfficientNet;
