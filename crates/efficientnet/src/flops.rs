//! Analytic parameter and FLOP counts for any [`ModelConfig`].
//!
//! The pod simulator prices compute from these numbers, so they must track
//! the real architecture: the walk below mirrors `model.rs` layer-for-layer
//! and a unit test pins the two against each other on an instantiable
//! configuration.
//!
//! Conventions: `macs` counts multiply–accumulates of the *forward* pass at
//! the config's native resolution (Tan & Le's "FLOPs" column is MACs);
//! `flops_forward = 2·macs`; the backward pass costs ≈ 2× forward.

use crate::config::ModelConfig;
use serde::{Deserialize, Serialize};

/// Aggregate cost statistics for one model at its native resolution.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ModelStats {
    /// Trainable scalar count.
    pub params: u64,
    /// Forward multiply–accumulates per image.
    pub macs: u64,
}

impl ModelStats {
    /// Forward FLOPs per image (2 per MAC).
    pub fn flops_forward(&self) -> f64 {
        2.0 * self.macs as f64
    }

    /// Training-step FLOPs per image: forward + backward (≈ 2× forward).
    pub fn flops_train(&self) -> f64 {
        3.0 * self.flops_forward()
    }

    /// Gradient payload in bytes (f32).
    pub fn gradient_bytes(&self) -> f64 {
        self.params as f64 * 4.0
    }
}

/// "SAME"-padded output extent: `ceil(in / stride)`.
fn same_out(extent: usize, stride: usize) -> usize {
    extent.div_ceil(stride)
}

/// Computes parameter and MAC counts for `cfg`.
pub fn model_stats(cfg: &ModelConfig) -> ModelStats {
    let mut params = 0u64;
    let mut macs = 0u64;
    let mut r = cfg.resolution;

    let conv =
        |params: &mut u64, macs: &mut u64, cin: usize, cout: usize, k: usize, out_hw: usize| {
            *params += (cout * cin * k * k) as u64;
            *macs += (cout * out_hw * out_hw) as u64 * (cin * k * k) as u64;
        };
    let bn = |params: &mut u64, c: usize| *params += 2 * c as u64;

    // Stem: 3×3 stride-2 conv to stem_filters + BN.
    let stem_f = cfg.stem_filters();
    r = same_out(r, 2);
    conv(&mut params, &mut macs, 3, stem_f, 3, r);
    bn(&mut params, stem_f);

    // Blocks.
    for args in &cfg.blocks {
        let in_f0 = cfg.round_filters(args.in_filters);
        let out_f = cfg.round_filters(args.out_filters);
        let repeats = cfg.round_repeats(args.repeats);
        for rep in 0..repeats {
            let (in_f, stride) = if rep == 0 {
                (in_f0, args.stride)
            } else {
                (out_f, 1)
            };
            let expanded = in_f * args.expand_ratio;
            // Expansion 1×1 (skipped when ratio is 1) at input resolution.
            if args.expand_ratio != 1 {
                conv(&mut params, &mut macs, in_f, expanded, 1, r);
                bn(&mut params, expanded);
            }
            // Depthwise k×k at output resolution.
            let r_out = same_out(r, stride);
            params += (expanded * args.kernel * args.kernel) as u64;
            macs += (expanded * r_out * r_out) as u64 * (args.kernel * args.kernel) as u64;
            bn(&mut params, expanded);
            // Squeeze-excite: two dense layers on pooled features.
            let se_dim = ((in_f as f32 * args.se_ratio) as usize).max(1);
            params += (expanded * se_dim + se_dim) as u64; // reduce (w + b)
            params += (se_dim * expanded + expanded) as u64; // expand (w + b)
            macs += 2 * (expanded * se_dim) as u64;
            // Projection 1×1 at output resolution.
            conv(&mut params, &mut macs, expanded, out_f, 1, r_out);
            bn(&mut params, out_f);
            r = r_out;
        }
    }

    // Head: 1×1 conv + BN + FC.
    let last_f = cfg.round_filters(cfg.blocks.last().unwrap().out_filters);
    let head_f = cfg.head_filters();
    conv(&mut params, &mut macs, last_f, head_f, 1, r);
    bn(&mut params, head_f);
    params += (head_f * cfg.num_classes + cfg.num_classes) as u64;
    macs += (head_f * cfg.num_classes) as u64;

    ModelStats { params, macs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::model::EfficientNet;
    use ets_nn::{param_count, Precision};
    use ets_tensor::Rng;

    fn stats_for(v: Variant) -> ModelStats {
        model_stats(&ModelConfig::variant(v))
    }

    #[test]
    fn b0_matches_published_numbers() {
        let s = stats_for(Variant::B0);
        // Reference: 5.29 M params, 0.39 B MACs at 224².
        let p_rel = (s.params as f64 - 5.29e6).abs() / 5.29e6;
        assert!(p_rel < 0.02, "B0 params {}", s.params);
        let m_rel = (s.macs as f64 - 0.39e9).abs() / 0.39e9;
        assert!(m_rel < 0.08, "B0 MACs {}", s.macs);
    }

    #[test]
    fn b2_matches_published_numbers() {
        let s = stats_for(Variant::B2);
        // Reference: 9.2 M params, 1.0 B MACs at 260².
        let p_rel = (s.params as f64 - 9.2e6).abs() / 9.2e6;
        assert!(p_rel < 0.03, "B2 params {}", s.params);
        let m_rel = (s.macs as f64 - 1.0e9).abs() / 1.0e9;
        assert!(m_rel < 0.12, "B2 MACs {}", s.macs);
    }

    #[test]
    fn b5_matches_published_numbers() {
        let s = stats_for(Variant::B5);
        // Reference: 30 M params, 9.9 B MACs at 456².
        let p_rel = (s.params as f64 - 30.0e6).abs() / 30.0e6;
        assert!(p_rel < 0.04, "B5 params {}", s.params);
        let m_rel = (s.macs as f64 - 9.9e9).abs() / 9.9e9;
        assert!(m_rel < 0.12, "B5 MACs {}", s.macs);
    }

    #[test]
    fn analytic_params_match_instantiated_model() {
        let cfg = ModelConfig::tiny(32, 10);
        let analytic = model_stats(&cfg).params;
        let mut rng = Rng::new(0);
        let mut m = EfficientNet::new(cfg, Precision::F32, &mut rng);
        let actual = param_count(&mut m) as u64;
        assert_eq!(analytic, actual, "flops.rs walk diverged from model.rs");
    }

    #[test]
    fn scaling_monotone() {
        let variants = [
            Variant::B0,
            Variant::B1,
            Variant::B2,
            Variant::B3,
            Variant::B4,
            Variant::B5,
            Variant::B6,
            Variant::B7,
        ];
        let mut prev = ModelStats::default();
        for v in variants {
            let s = stats_for(v);
            assert!(s.params > prev.params, "{v:?} params must grow");
            assert!(s.macs > prev.macs, "{v:?} MACs must grow");
            prev = s;
        }
    }

    #[test]
    fn derived_quantities() {
        let s = ModelStats {
            params: 10,
            macs: 100,
        };
        assert_eq!(s.flops_forward(), 200.0);
        assert_eq!(s.flops_train(), 600.0);
        assert_eq!(s.gradient_bytes(), 40.0);
    }
}
