//! The EfficientNet model: stem → MBConv stages → head.

use crate::blocks::MbConvBlock;
use crate::config::ModelConfig;
use ets_nn::{
    BatchNorm2d, Conv2d, Dropout, GlobalAvgPool, HookedBackward, Layer, Linear, Mode, Param,
    Precision, StatSync, Swish,
};
use ets_tensor::{same_pad, Rng, Tensor};
use std::sync::Arc;

/// A full EfficientNet classifier.
pub struct EfficientNet {
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_act: Swish,
    blocks: Vec<MbConvBlock>,
    head_conv: Conv2d,
    head_bn: BatchNorm2d,
    head_act: Swish,
    gap: GlobalAvgPool,
    dropout: Dropout,
    fc: Linear,
    config: ModelConfig,
}

impl EfficientNet {
    /// Builds the model from a resolved configuration.
    pub fn new(config: ModelConfig, precision: Precision, rng: &mut Rng) -> Self {
        let stem_f = config.stem_filters();
        let head_f = config.head_filters();
        let total_blocks = config.total_blocks();

        let mut blocks = Vec::with_capacity(total_blocks);
        let mut block_idx = 0usize;
        for (stage, args) in config.blocks.iter().enumerate() {
            let in_f = config.round_filters(args.in_filters);
            let out_f = config.round_filters(args.out_filters);
            let repeats = config.round_repeats(args.repeats);
            for rep in 0..repeats {
                // Stochastic depth grows linearly with depth.
                let dc = config.drop_connect * block_idx as f32 / total_blocks as f32;
                let (bin, stride) = if rep == 0 {
                    (in_f, args.stride)
                } else {
                    (out_f, 1)
                };
                blocks.push(MbConvBlock::new(
                    format!("blocks.{stage}.{rep}"),
                    bin,
                    out_f,
                    args.kernel,
                    stride,
                    args.expand_ratio,
                    args.se_ratio,
                    dc,
                    precision,
                    rng,
                ));
                block_idx += 1;
            }
        }

        let last_f = config.round_filters(config.blocks.last().unwrap().out_filters);
        EfficientNet {
            stem_conv: Conv2d::new("stem.conv", 3, stem_f, 3, 2, same_pad(3), precision, rng),
            stem_bn: BatchNorm2d::new("stem.bn", stem_f),
            stem_act: Swish::new(),
            blocks,
            head_conv: Conv2d::new("head.conv", last_f, head_f, 1, 1, 0, precision, rng),
            head_bn: BatchNorm2d::new("head.bn", head_f),
            head_act: Swish::new(),
            gap: GlobalAvgPool::new(),
            dropout: Dropout::new(config.dropout),
            // The head receives the experiment policy; its MAC gate keeps
            // proxy-scale classifier GEMMs in f32 (§3.5 runs only the
            // convolutions in bf16 at small sizes) while letting genuinely
            // large head products use the narrow packed panels.
            fc: Linear::with_precision(
                "head.fc",
                head_f,
                config.num_classes,
                true,
                precision.policy(),
                rng,
            ),
            config,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of MBConv blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Visits every batch-norm layer in network order.
    pub fn visit_bns(&mut self, f: &mut dyn FnMut(&mut BatchNorm2d)) {
        f(&mut self.stem_bn);
        for b in &mut self.blocks {
            b.visit_bns(f);
        }
        f(&mut self.head_bn);
    }

    /// Wires a cross-replica statistics reducer into every BN layer —
    /// how the distributed trainer enables §3.4's distributed batch norm.
    pub fn set_bn_sync(&mut self, sync: Arc<dyn StatSync>) {
        self.visit_bns(&mut |bn| bn.set_sync(Arc::clone(&sync)));
    }
}

impl Layer for EfficientNet {
    fn forward(&mut self, x: &Tensor, mode: Mode, rng: &mut Rng) -> Tensor {
        assert_eq!(x.shape().c(), 3, "EfficientNet expects RGB input");
        let mut cur = self.stem_conv.forward(x, mode, rng);
        cur = self.stem_bn.forward(&cur, mode, rng);
        cur = self.stem_act.forward(&cur, mode, rng);
        for b in &mut self.blocks {
            cur = b.forward(&cur, mode, rng);
        }
        cur = self.head_conv.forward(&cur, mode, rng);
        cur = self.head_bn.forward(&cur, mode, rng);
        cur = self.head_act.forward(&cur, mode, rng);
        cur = self.gap.forward(&cur, mode, rng);
        cur = self.dropout.forward(&cur, mode, rng);
        self.fc.forward(&cur, mode, rng)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = self.fc.backward(grad);
        g = self.dropout.backward(&g);
        g = self.gap.backward(&g);
        g = self.head_act.backward(&g);
        g = self.head_bn.backward(&g);
        g = self.head_conv.backward(&g);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        g = self.stem_act.backward(&g);
        g = self.stem_bn.backward(&g);
        self.stem_conv.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem_conv.visit_params(f);
        self.stem_bn.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.head_conv.visit_params(f);
        self.head_bn.visit_params(f);
        self.fc.visit_params(f);
    }

    fn name(&self) -> String {
        format!(
            "efficientnet(w={},d={},r={})",
            self.config.width_mult, self.config.depth_mult, self.config.resolution
        )
    }
}

impl HookedBackward for EfficientNet {
    /// Same chain as [`Layer::backward`] — bitwise identical — with
    /// `ready` fired as each parameter-bearing unit finishes. Backward
    /// runs head→stem while `visit_params` walks stem→head, so the
    /// announcements cover the parameter list as strictly descending
    /// suffix segments: fc, head_bn, head_conv, blocks in reverse,
    /// stem_bn, stem_conv.
    fn backward_hooked(&mut self, grad: &Tensor, ready: &mut dyn FnMut(&mut dyn Layer)) -> Tensor {
        let mut g = self.fc.backward(grad);
        ready(&mut self.fc);
        g = self.dropout.backward(&g);
        g = self.gap.backward(&g);
        g = self.head_act.backward(&g);
        g = self.head_bn.backward(&g);
        ready(&mut self.head_bn);
        g = self.head_conv.backward(&g);
        ready(&mut self.head_conv);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
            ready(b);
        }
        g = self.stem_act.backward(&g);
        g = self.stem_bn.backward(&g);
        ready(&mut self.stem_bn);
        let dx = self.stem_conv.backward(&g);
        ready(&mut self.stem_conv);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use ets_nn::{cross_entropy, param_count, zero_grads};

    fn tiny() -> (EfficientNet, Rng) {
        let mut rng = Rng::new(42);
        let cfg = ModelConfig::tiny(32, 10);
        let m = EfficientNet::new(cfg, Precision::F32, &mut rng);
        (m, rng)
    }

    #[test]
    fn tiny_forward_shapes() {
        let (mut m, mut rng) = tiny();
        let mut x = Tensor::zeros([2, 3, 32, 32]);
        rng.fill_normal(x.data_mut(), 0.0, 1.0);
        let y = m.forward(&x, Mode::Eval, &mut rng);
        assert_eq!(y.shape().dims(), &[2, 10]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn tiny_backward_produces_gradients() {
        let (mut m, mut rng) = tiny();
        let mut x = Tensor::zeros([2, 3, 32, 32]);
        rng.fill_normal(x.data_mut(), 0.0, 1.0);
        zero_grads(&mut m);
        let y = m.forward(&x, Mode::Train, &mut rng);
        let out = cross_entropy(&y, &[1, 7], 0.1);
        let dx = m.backward(&out.dlogits);
        assert_eq!(dx.shape().dims(), x.shape().dims());
        let mut nonzero = 0usize;
        let mut total = 0usize;
        m.visit_params(&mut |p| {
            total += 1;
            if p.grad.l2_norm() > 0.0 {
                nonzero += 1;
            }
        });
        assert!(
            nonzero as f32 > 0.95 * total as f32,
            "{nonzero}/{total} params received gradient"
        );
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let (mut m, mut rng) = tiny();
        let mut x = Tensor::zeros([4, 3, 32, 32]);
        rng.fill_normal(x.data_mut(), 0.0, 1.0);
        let labels = [0usize, 1, 2, 3];
        let mut eval_rng = Rng::new(5);
        // Repeated small steps on one batch must reduce the training loss.
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..8 {
            zero_grads(&mut m);
            let y = m.forward(&x, Mode::Train, &mut eval_rng);
            let out = cross_entropy(&y, &labels, 0.0);
            m.backward(&out.dlogits);
            m.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.01, &g);
            });
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(
            last < first.unwrap(),
            "loss should fall: {first:?} → {last}"
        );
    }

    #[test]
    fn hooked_backward_is_bitwise_identical_and_covers_all_params() {
        // Two identically-seeded models, identical forward, then plain vs
        // hooked backward: gradients and dx must match bit for bit, and
        // the hook's suffix segments must tile visit_params exactly, in
        // strictly descending order.
        let run = |hooked: bool| -> (Vec<u32>, Vec<u32>, Vec<usize>) {
            let (mut m, mut rng) = tiny();
            let mut x = Tensor::zeros([2, 3, 32, 32]);
            rng.fill_normal(x.data_mut(), 0.0, 1.0);
            zero_grads(&mut m);
            let mut lrng = Rng::new(9);
            let y = m.forward(&x, Mode::Train, &mut lrng);
            let out = cross_entropy(&y, &[1, 7], 0.1);
            let mut seg_counts = Vec::new();
            let dx = if hooked {
                m.backward_hooked(&out.dlogits, &mut |seg| {
                    let mut n = 0usize;
                    seg.visit_params(&mut |_| n += 1);
                    seg_counts.push(n);
                })
            } else {
                m.backward(&out.dlogits)
            };
            let mut grads = Vec::new();
            m.visit_params(&mut |p| grads.extend(p.grad.data().iter().map(|v| v.to_bits())));
            let dxb = dx.data().iter().map(|v| v.to_bits()).collect();
            (grads, dxb, seg_counts)
        };
        let (g_plain, dx_plain, _) = run(false);
        let (g_hooked, dx_hooked, segs) = run(true);
        assert_eq!(g_plain, g_hooked, "parameter gradients diverged");
        assert_eq!(dx_plain, dx_hooked, "input gradient diverged");
        // Coverage: segment param counts sum to the total param count.
        let (mut m, _) = tiny();
        let mut total = 0usize;
        m.visit_params(&mut |_| total += 1);
        assert_eq!(segs.iter().sum::<usize>(), total);
        // fc + head_bn + head_conv + blocks + stem_bn + stem_conv.
        assert_eq!(segs.len(), 5 + m.num_blocks());
        assert!(segs.iter().all(|&n| n >= 1));
    }

    #[test]
    fn block_count_matches_config() {
        let (m, _) = tiny();
        assert_eq!(m.num_blocks(), m.config().total_blocks());
        // tiny depth 0.35: [1,1,1,2,2,2,1] = 10 blocks.
        assert_eq!(m.num_blocks(), 10);
    }

    #[test]
    fn bn_layer_count() {
        let (mut m, _) = tiny();
        let mut bns = 0;
        m.visit_bns(&mut |_| bns += 1);
        // stem + head + per-block (2 when expand==1, else 3).
        let expected = 2 + m
            .blocks
            .iter_mut()
            .map(|b| {
                let mut c = 0;
                b.visit_bns(&mut |_| c += 1);
                c
            })
            .sum::<usize>();
        assert_eq!(bns, expected);
    }

    #[test]
    fn full_b0_param_count_close_to_reference() {
        // Build the real B0 (no tensor allocation concern: params only
        // ~5.3M floats ≈ 21 MB plus grads).
        let mut rng = Rng::new(1);
        let cfg = ModelConfig::variant(Variant::B0);
        let mut m = EfficientNet::new(cfg, Precision::F32, &mut rng);
        let n = param_count(&mut m);
        let reference = 5_288_548usize; // TF reference B0 trainable params
        let rel = (n as f64 - reference as f64).abs() / reference as f64;
        assert!(rel < 0.02, "B0 params {n} vs reference {reference}");
    }
}
