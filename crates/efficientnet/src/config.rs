//! EfficientNet compound scaling configuration (Tan & Le 2019).
//!
//! A variant is `(width multiplier, depth multiplier, resolution, dropout)`;
//! filters scale by width (rounded to multiples of 8, never below 90% of
//! the unrounded value), repeats scale by depth (ceil). The seven-stage
//! MBConv layout is shared by every variant.

use serde::{Deserialize, Serialize};

/// One stage of MBConv blocks (before depth scaling).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockArgs {
    pub kernel: usize,
    pub repeats: usize,
    pub in_filters: usize,
    pub out_filters: usize,
    pub expand_ratio: usize,
    pub stride: usize,
    /// SE bottleneck = `se_ratio · in_filters` (0.25 for all EfficientNets).
    pub se_ratio: f32,
}

/// The EfficientNet-B0 backbone stages.
pub const B0_BLOCKS: [BlockArgs; 7] = [
    BlockArgs {
        kernel: 3,
        repeats: 1,
        in_filters: 32,
        out_filters: 16,
        expand_ratio: 1,
        stride: 1,
        se_ratio: 0.25,
    },
    BlockArgs {
        kernel: 3,
        repeats: 2,
        in_filters: 16,
        out_filters: 24,
        expand_ratio: 6,
        stride: 2,
        se_ratio: 0.25,
    },
    BlockArgs {
        kernel: 5,
        repeats: 2,
        in_filters: 24,
        out_filters: 40,
        expand_ratio: 6,
        stride: 2,
        se_ratio: 0.25,
    },
    BlockArgs {
        kernel: 3,
        repeats: 3,
        in_filters: 40,
        out_filters: 80,
        expand_ratio: 6,
        stride: 2,
        se_ratio: 0.25,
    },
    BlockArgs {
        kernel: 5,
        repeats: 3,
        in_filters: 80,
        out_filters: 112,
        expand_ratio: 6,
        stride: 1,
        se_ratio: 0.25,
    },
    BlockArgs {
        kernel: 5,
        repeats: 4,
        in_filters: 112,
        out_filters: 192,
        expand_ratio: 6,
        stride: 2,
        se_ratio: 0.25,
    },
    BlockArgs {
        kernel: 3,
        repeats: 1,
        in_filters: 192,
        out_filters: 320,
        expand_ratio: 6,
        stride: 1,
        se_ratio: 0.25,
    },
];

/// Stem filters before width scaling.
pub const STEM_FILTERS: usize = 32;
/// Head filters before width scaling.
pub const HEAD_FILTERS: usize = 1280;
/// Filter rounding divisor.
pub const DEPTH_DIVISOR: usize = 8;

/// A named variant of the family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    B0,
    B1,
    B2,
    B3,
    B4,
    B5,
    B6,
    B7,
}

impl Variant {
    /// `(width, depth, resolution, dropout)` per Tan & Le Table 8.
    pub fn coefficients(self) -> (f32, f32, usize, f32) {
        match self {
            Variant::B0 => (1.0, 1.0, 224, 0.2),
            Variant::B1 => (1.0, 1.1, 240, 0.2),
            Variant::B2 => (1.1, 1.2, 260, 0.3),
            Variant::B3 => (1.2, 1.4, 300, 0.3),
            Variant::B4 => (1.4, 1.8, 380, 0.4),
            Variant::B5 => (1.6, 2.2, 456, 0.4),
            Variant::B6 => (1.8, 2.6, 528, 0.5),
            Variant::B7 => (2.0, 3.1, 600, 0.5),
        }
    }

    /// Display name ("EfficientNet-B2").
    pub fn name(self) -> &'static str {
        match self {
            Variant::B0 => "EfficientNet-B0",
            Variant::B1 => "EfficientNet-B1",
            Variant::B2 => "EfficientNet-B2",
            Variant::B3 => "EfficientNet-B3",
            Variant::B4 => "EfficientNet-B4",
            Variant::B5 => "EfficientNet-B5",
            Variant::B6 => "EfficientNet-B6",
            Variant::B7 => "EfficientNet-B7",
        }
    }
}

/// A fully-resolved model configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    pub width_mult: f32,
    pub depth_mult: f32,
    pub resolution: usize,
    pub dropout: f32,
    /// Stochastic-depth (drop-connect) rate at the deepest block; shallower
    /// blocks scale linearly. 0.2 in the reference implementation.
    pub drop_connect: f32,
    pub num_classes: usize,
    pub blocks: Vec<BlockArgs>,
}

impl ModelConfig {
    /// The published variant at its native resolution with 1000 classes.
    pub fn variant(v: Variant) -> Self {
        let (w, d, r, dropout) = v.coefficients();
        ModelConfig {
            width_mult: w,
            depth_mult: d,
            resolution: r,
            dropout,
            drop_connect: 0.2,
            num_classes: 1000,
            blocks: B0_BLOCKS.to_vec(),
        }
    }

    /// A reduced configuration that trains in seconds on CPU: scaled-down
    /// width/depth, small resolution, few classes. Architecture (MBConv,
    /// SE, swish, BN placement) is identical to the full model.
    pub fn tiny(resolution: usize, num_classes: usize) -> Self {
        ModelConfig {
            width_mult: 0.25,
            depth_mult: 0.35,
            resolution,
            dropout: 0.1,
            drop_connect: 0.1,
            num_classes,
            blocks: B0_BLOCKS.to_vec(),
        }
    }

    /// Width-scaled, divisor-rounded filter count.
    pub fn round_filters(&self, filters: usize) -> usize {
        round_filters(filters, self.width_mult)
    }

    /// Depth-scaled repeat count.
    pub fn round_repeats(&self, repeats: usize) -> usize {
        round_repeats(repeats, self.depth_mult)
    }

    /// Stem output channels.
    pub fn stem_filters(&self) -> usize {
        self.round_filters(STEM_FILTERS)
    }

    /// Head conv output channels.
    pub fn head_filters(&self) -> usize {
        self.round_filters(HEAD_FILTERS)
    }

    /// Total MBConv block count after depth scaling.
    pub fn total_blocks(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| self.round_repeats(b.repeats))
            .sum()
    }
}

/// TF's `round_filters`: scale, round to the divisor, clamp at 90%.
pub fn round_filters(filters: usize, width_mult: f32) -> usize {
    if (width_mult - 1.0).abs() < 1e-9 {
        return filters;
    }
    let scaled = filters as f32 * width_mult;
    let mut new =
        ((scaled + DEPTH_DIVISOR as f32 / 2.0) / DEPTH_DIVISOR as f32) as usize * DEPTH_DIVISOR;
    new = new.max(DEPTH_DIVISOR);
    if (new as f32) < 0.9 * scaled {
        new += DEPTH_DIVISOR;
    }
    new
}

/// TF's `round_repeats`: ceil of the scaled repeat count.
pub fn round_repeats(repeats: usize, depth_mult: f32) -> usize {
    (repeats as f32 * depth_mult).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b0_filters_unchanged() {
        let cfg = ModelConfig::variant(Variant::B0);
        assert_eq!(cfg.stem_filters(), 32);
        assert_eq!(cfg.head_filters(), 1280);
        assert_eq!(cfg.round_filters(320), 320);
        assert_eq!(cfg.total_blocks(), 16);
    }

    #[test]
    fn b2_scaling_matches_reference() {
        // Known values from the reference implementation at width 1.1.
        assert_eq!(round_filters(32, 1.1), 32);
        assert_eq!(round_filters(16, 1.1), 16);
        assert_eq!(round_filters(24, 1.1), 24);
        assert_eq!(round_filters(40, 1.1), 48);
        assert_eq!(round_filters(80, 1.1), 88);
        assert_eq!(round_filters(112, 1.1), 120);
        assert_eq!(round_filters(192, 1.1), 208);
        assert_eq!(round_filters(320, 1.1), 352);
        assert_eq!(round_filters(1280, 1.1), 1408);
        // Depth 1.2: repeats [1,2,2,3,3,4,1] → [2,3,3,4,4,5,2] = 23 blocks.
        let cfg = ModelConfig::variant(Variant::B2);
        assert_eq!(cfg.total_blocks(), 23);
    }

    #[test]
    fn b5_scaling_matches_reference() {
        // Width 1.6.
        assert_eq!(round_filters(32, 1.6), 48);
        assert_eq!(round_filters(16, 1.6), 24);
        assert_eq!(round_filters(24, 1.6), 40);
        assert_eq!(round_filters(40, 1.6), 64);
        assert_eq!(round_filters(80, 1.6), 128);
        assert_eq!(round_filters(112, 1.6), 176);
        assert_eq!(round_filters(192, 1.6), 304);
        assert_eq!(round_filters(320, 1.6), 512);
        assert_eq!(round_filters(1280, 1.6), 2048);
        // Depth 2.2 → [3,5,5,7,7,9,3] = 39 blocks.
        let cfg = ModelConfig::variant(Variant::B5);
        assert_eq!(cfg.total_blocks(), 39);
        assert_eq!(cfg.resolution, 456);
    }

    #[test]
    fn ninety_percent_clamp() {
        // A case where naive rounding drops below 90% of the scaled value:
        // filters=88 (not typical, synthetic): 88·1.1=96.8 → rounds to 96,
        // 96 ≥ 87.1 so no bump. Construct one that does bump:
        // filters=10, width=1.25 → 12.5 → rounds to 8+... (12.5+4)/8=2 → 16.
        assert_eq!(round_filters(10, 1.25), 16);
        // And the minimum clamp.
        assert_eq!(round_filters(2, 1.0001), 8);
    }

    #[test]
    fn repeats_use_ceil() {
        assert_eq!(round_repeats(1, 1.2), 2);
        assert_eq!(round_repeats(4, 2.2), 9);
        assert_eq!(round_repeats(3, 1.0), 3);
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::B5.name(), "EfficientNet-B5");
    }
}
