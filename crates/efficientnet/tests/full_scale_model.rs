//! Integration: the *full-scale* published variants instantiate and run —
//! not just the tiny proxies. B0 executes a real forward pass at its
//! native 224² resolution on CPU; the bigger variants are exercised
//! through construction + analytic accounting (a B5 forward at 456² is
//! minutes of CPU, so its correctness rides on the shared block code).

use ets_efficientnet::{model_stats, EfficientNet, ModelConfig, Variant};
use ets_nn::{param_count, Layer, Mode, Precision};
use ets_tensor::{Rng, Tensor};

#[test]
fn b0_full_resolution_forward() {
    let mut rng = Rng::new(1);
    let cfg = ModelConfig::variant(Variant::B0);
    let mut model = EfficientNet::new(cfg, Precision::F32, &mut rng);
    let mut x = Tensor::zeros([1, 3, 224, 224]);
    rng.fill_normal(x.data_mut(), 0.0, 1.0);
    let logits = model.forward(&x, Mode::Eval, &mut rng);
    assert_eq!(logits.shape().dims(), &[1, 1000]);
    assert!(!logits.has_non_finite());
    // Softmax over the logits is a proper distribution.
    let p = ets_nn::softmax(&logits);
    let sum: f32 = p.data().iter().sum();
    assert!((sum - 1.0).abs() < 1e-4);
}

#[test]
fn b0_reduced_resolution_backward() {
    // Full architecture (16 blocks), reduced spatial size: a complete
    // training step through every published block shape.
    let mut rng = Rng::new(2);
    let mut cfg = ModelConfig::variant(Variant::B0);
    cfg.resolution = 64;
    cfg.num_classes = 10;
    let mut model = EfficientNet::new(cfg, Precision::F32, &mut rng);
    let mut x = Tensor::zeros([2, 3, 64, 64]);
    rng.fill_normal(x.data_mut(), 0.0, 1.0);
    ets_nn::zero_grads(&mut model);
    let logits = model.forward(&x, Mode::Train, &mut rng);
    let out = ets_nn::cross_entropy(&logits, &[3, 7], 0.1);
    let dx = model.backward(&out.dlogits);
    assert_eq!(dx.shape().dims(), x.shape().dims());
    let mut with_grad = 0usize;
    let mut total = 0usize;
    model.visit_params(&mut |p| {
        total += 1;
        if p.grad.l2_norm() > 0.0 {
            with_grad += 1;
        }
    });
    assert!(
        with_grad as f64 > 0.95 * total as f64,
        "{with_grad}/{total}"
    );
}

#[test]
fn all_variants_construct_with_matching_param_counts() {
    // Constructing B5+ allocates hundreds of MB; B0–B3 keeps the test fast
    // while still covering the scaling rules end-to-end.
    for v in [Variant::B0, Variant::B1, Variant::B2, Variant::B3] {
        let cfg = ModelConfig::variant(v);
        let analytic = model_stats(&cfg).params;
        let mut rng = Rng::new(3);
        let mut m = EfficientNet::new(cfg, Precision::F32, &mut rng);
        assert_eq!(
            param_count(&mut m) as u64,
            analytic,
            "{v:?} instantiated vs analytic"
        );
    }
}

#[test]
fn variant_block_counts() {
    let expect = [
        (Variant::B0, 16usize),
        (Variant::B1, 23),
        (Variant::B2, 23),
        (Variant::B3, 26),
        (Variant::B5, 39),
        (Variant::B7, 55),
    ];
    for (v, blocks) in expect {
        assert_eq!(
            ModelConfig::variant(v).total_blocks(),
            blocks,
            "{v:?} depth scaling"
        );
    }
}
