//! End-to-end step benchmarks: (a) the pod simulator pricing every Table-1
//! row (should be microseconds — it's analytic), and (b) a *real*
//! distributed training step of the tiny EfficientNet through the full
//! engine (forward, loss, backward, all-reduce, LARS step) at several
//! replica counts.
//!
//! `Criterion::default()` is the canonical constructor; the offline stub
//! models `Criterion` as a unit struct, which would otherwise trip
//! clippy's `default_constructed_unit_structs` under `-D warnings`.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ets_efficientnet::Variant;
use ets_tpu_sim::{step_time, StepConfig};
use ets_train::{train, Experiment, OptimizerChoice};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.bench_function("table1_all_rows", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for v in [Variant::B2, Variant::B5] {
                for cores in [128usize, 256, 512, 1024] {
                    total += step_time(&StepConfig::new(v, cores, cores * 32)).total();
                }
            }
            total
        });
    });
    group.finish();
}

fn bench_real_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("real_train");
    group.sample_size(10);
    for &replicas in &[1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("one_epoch", replicas),
            &replicas,
            |b, &replicas| {
                b.iter(|| {
                    let mut exp = Experiment::proxy_default();
                    exp.replicas = replicas;
                    exp.per_replica_batch = 32 / replicas;
                    exp.epochs = 1;
                    exp.train_samples = 128;
                    exp.eval_samples = 32;
                    exp.optimizer = OptimizerChoice::Lars { trust_coeff: 0.1 };
                    train(&exp).steps
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_simulator, bench_real_training
}
criterion_main!(benches);
