//! Micro-benchmarks of the compute kernels that dominate training:
//! GEMM (f32 and bf16-mixed), im2col convolution (dense and depthwise),
//! and the batch-norm reductions.
//!
//! `Criterion::default()` is the canonical constructor; the offline stub
//! models `Criterion` as a unit struct, which would otherwise trip
//! clippy's `default_constructed_unit_structs` under `-D warnings`.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ets_tensor::bf16::gemm_bf16_slice;
use ets_tensor::ops::conv::{
    conv2d_backward, conv2d_forward, depthwise_forward, im2col, Conv2dGeom,
};
use ets_tensor::ops::gemm_blocked::{
    gemm_blocked, gemm_blocked_a_bt, gemm_blocked_at_b, gemm_prepacked, pack_a_into, packed_a_len,
    PanelA, PanelB,
};
use ets_tensor::ops::matmul::{gemm_a_bt_slice, gemm_at_b_slice, gemm_slice};
use ets_tensor::ops::reduce::{channel_mean, channel_sum_sq};
use ets_tensor::{scratch_f32, Rng, Shape, Tensor};

fn rand_vec(rng: &mut Rng, n: usize) -> Vec<f32> {
    let mut v = vec![0.0; n];
    rng.fill_uniform(&mut v, -1.0, 1.0);
    v
}

fn rand_tensor(rng: &mut Rng, dims: &[usize]) -> Tensor {
    let mut t = Tensor::zeros(dims);
    rng.fill_uniform(t.data_mut(), -1.0, 1.0);
    t
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mut rng = Rng::new(1);
    for &n in &[64usize, 128, 256] {
        let a = rand_vec(&mut rng, n * n);
        let b = rand_vec(&mut rng, n * n);
        let mut out = vec![0.0; n * n];
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("f32", n), &n, |bench, &n| {
            bench.iter(|| gemm_slice(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("bf16_mixed", n), &n, |bench, &n| {
            bench.iter(|| gemm_bf16_slice(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, &n| {
            bench.iter(|| gemm_blocked(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("at_b_naive", n), &n, |bench, &n| {
            bench.iter(|| gemm_at_b_slice(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("at_b_blocked", n), &n, |bench, &n| {
            bench.iter(|| gemm_blocked_at_b(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("a_bt_naive", n), &n, |bench, &n| {
            bench.iter(|| gemm_a_bt_slice(n, n, n, &a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("a_bt_blocked", n), &n, |bench, &n| {
            bench.iter(|| gemm_blocked_a_bt(n, n, n, &a, &b, &mut out));
        });
    }
    group.finish();
}

/// The three conv-GEMM strategies head-to-head on one image of a
/// stage-5-sized 3×3 conv (the `BENCH_kernels.json` calibration shape).
fn bench_conv_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_gemm_strategy");
    group.sample_size(10);
    let mut rng = Rng::new(9);
    let xs = Shape::new(&[1, 128, 56, 56]);
    let wsh = Shape::new(&[256, 128, 3, 3]);
    let g = Conv2dGeom::infer(&xs, &wsh, 1, 1);
    let (m, k, n) = (g.c_out, g.k(), g.p());
    let mut img = vec![0.0f32; 128 * 56 * 56];
    rng.fill_uniform(&mut img, -1.0, 1.0);
    let mut w = vec![0.0f32; m * k];
    rng.fill_uniform(&mut w, -0.5, 0.5);
    let mut y = vec![0.0f32; m * n];
    let mut patches = vec![0.0f32; k * n];
    group.bench_function("im2col_naive", |bench| {
        bench.iter(|| {
            im2col(&g, &img, &mut patches);
            gemm_slice(m, k, n, &w, &patches, &mut y);
        });
    });
    group.bench_function("im2col_blocked", |bench| {
        bench.iter(|| {
            im2col(&g, &img, &mut patches);
            gemm_blocked(m, k, n, &w, &patches, &mut y);
        });
    });
    let mut ap = scratch_f32(packed_a_len(m, k));
    pack_a_into(PanelA::RowMajor(&w), m, k, &mut ap);
    group.bench_function("fused_patches", |bench| {
        bench.iter(|| {
            gemm_prepacked(
                m,
                k,
                n,
                &ap,
                PanelB::Patches {
                    geom: &g,
                    img: &img,
                },
                &mut y,
                false,
            );
        });
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = Rng::new(2);
    // A stem-like conv and an MBConv-projection-like 1×1.
    let x = rand_tensor(&mut rng, &[4, 16, 32, 32]);
    let w3 = rand_tensor(&mut rng, &[32, 16, 3, 3]);
    let w1 = rand_tensor(&mut rng, &[64, 16, 1, 1]);
    group.bench_function("3x3_s1_16to32_b4_32px", |b| {
        b.iter(|| conv2d_forward(&x, &w3, 1, 1));
    });
    group.bench_function("1x1_16to64_b4_32px", |b| {
        b.iter(|| conv2d_forward(&x, &w1, 1, 0));
    });
    let y = conv2d_forward(&x, &w3, 1, 1);
    group.bench_function("backward_3x3", |b| {
        b.iter(|| conv2d_backward(&x, &w3, &y, 1, 1));
    });
    let dw = rand_tensor(&mut rng, &[16, 1, 5, 5]);
    group.bench_function("depthwise_5x5", |b| {
        b.iter(|| depthwise_forward(&x, &dw, 1, 2));
    });
    group.finish();
}

fn bench_bn_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("bn_reduce");
    let mut rng = Rng::new(3);
    let x = rand_tensor(&mut rng, &[32, 64, 16, 16]);
    group.throughput(Throughput::Elements(x.numel() as u64));
    group.bench_function("channel_mean", |b| b.iter(|| channel_mean(&x)));
    group.bench_function("channel_sum_sq", |b| b.iter(|| channel_sum_sq(&x)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_conv_strategies, bench_conv, bench_bn_reductions
}
criterion_main!(benches);
