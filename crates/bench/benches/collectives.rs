//! Benchmarks of the real shared-memory collectives: deterministic tree
//! all-reduce vs ring all-reduce across replica counts and payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ets_collective::{create_ring, CommHandle};
use std::thread;

fn run_tree(replicas: usize, elems: usize, rounds: usize) {
    let handles = CommHandle::create(replicas);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|h| {
            thread::spawn(move || {
                let mut buf = vec![h.rank() as f32; elems];
                for _ in 0..rounds {
                    h.all_reduce_sum(&mut buf);
                }
                buf[0]
            })
        })
        .collect();
    for j in joins {
        let _ = j.join().unwrap();
    }
}

fn run_ring(replicas: usize, elems: usize, rounds: usize) {
    let members = create_ring(replicas);
    let joins: Vec<_> = members
        .into_iter()
        .map(|m| {
            thread::spawn(move || {
                let mut buf = vec![m.rank() as f32; elems];
                for _ in 0..rounds {
                    m.all_reduce_sum(&mut buf);
                }
                buf[0]
            })
        })
        .collect();
    for j in joins {
        let _ = j.join().unwrap();
    }
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce");
    group.sample_size(10);
    for &replicas in &[2usize, 4, 8] {
        for &elems in &[1_024usize, 65_536] {
            group.throughput(Throughput::Bytes((elems * 4 * replicas) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("tree_r{replicas}"), elems),
                &elems,
                |b, &elems| b.iter(|| run_tree(replicas, elems, 4)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("ring_r{replicas}"), elems),
                &elems,
                |b, &elems| b.iter(|| run_ring(replicas, elems, 4)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_all_reduce);
criterion_main!(benches);
