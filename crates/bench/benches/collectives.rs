//! Benchmarks of the real shared-memory collectives through the
//! [`Collective`] trait: tree vs ring vs auto across replica counts and
//! payload sizes, up to gradient-scale payloads (4 Mi floats = 16 MiB,
//! about the flattened gradient of an EfficientNet-B2).
//!
//! The small sizes are latency-bound (the tree should win), the large
//! sizes bandwidth-bound (the ring should win); `auto` should track the
//! better of the two on both ends — the same crossover the α–β cost
//! model predicts for the pod interconnect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ets_collective::{create_collective, Backend};
use std::thread;

/// One full world: every replica runs `rounds` all-reduces of `elems`.
fn run_backend(backend: Backend, replicas: usize, elems: usize, rounds: usize) {
    let world = create_collective(backend, replicas);
    let joins: Vec<_> = world
        .into_iter()
        .map(|c| {
            thread::spawn(move || {
                let mut buf = vec![c.rank() as f32; elems];
                for _ in 0..rounds {
                    c.all_reduce_sum(&mut buf);
                }
                buf[0]
            })
        })
        .collect();
    for j in joins {
        let _ = j.join().unwrap();
    }
}

fn bench_all_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce");
    group.sample_size(10);
    // 64 Ki floats exercises the latency/bandwidth boundary; 4 Mi floats
    // (16 MiB) is a full gradient payload — the acceptance size.
    for &replicas in &[2usize, 4, 8] {
        for &elems in &[1_024usize, 65_536, 4_194_304] {
            // Skip the cross-product's most expensive corner at high
            // replica counts to keep wall time sane; 4 replicas at 4 Mi
            // still covers every backend at full payload.
            if elems == 4_194_304 && replicas == 8 {
                continue;
            }
            group.throughput(Throughput::Bytes((elems * 4 * replicas) as u64));
            for backend in Backend::ALL {
                group.bench_with_input(
                    BenchmarkId::new(format!("{backend}_r{replicas}"), elems),
                    &elems,
                    |b, &elems| b.iter(|| run_backend(backend, replicas, elems, 2)),
                );
            }
        }
    }
    group.finish();
}

/// Steady-state round cost with a persistent world — what the trainer
/// sees step after step (no per-round world construction, zero-alloc
/// scratch reuse).
fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce_steady");
    group.sample_size(10);
    let replicas = 4usize;
    let elems = 4_194_304usize;
    for backend in [Backend::Tree, Backend::Ring] {
        group.throughput(Throughput::Bytes((elems * 4 * replicas) as u64));
        group.bench_function(BenchmarkId::new(format!("{backend}"), elems), |b| {
            b.iter(|| run_backend(backend, replicas, elems, 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_reduce, bench_steady_state);
criterion_main!(benches);
