//! Pod-run planner: given a model and a wall-clock budget, search the
//! calibrated simulator for the cheapest configuration that meets it —
//! the question a user of this system actually has ("what do I need to
//! train B5 to 83% in under 90 minutes?").
//!
//! ```sh
//! cargo run -p ets-bench --bin planner -- B5 90      # variant, minutes
//! ```

use ets_efficientnet::Variant;
use ets_efficientnet::{max_per_core_batch, model_stats, ModelConfig};
use ets_tpu_sim::{
    infeed_analysis, time_to_accuracy, OptimizerKind, RunConfig, StepConfig, TPU_V3_CORE,
};

fn parse_variant(s: &str) -> Variant {
    match s.to_ascii_uppercase().as_str() {
        "B0" => Variant::B0,
        "B1" => Variant::B1,
        "B2" => Variant::B2,
        "B3" => Variant::B3,
        "B4" => Variant::B4,
        "B5" => Variant::B5,
        "B6" => Variant::B6,
        "B7" => Variant::B7,
        other => {
            eprintln!("unknown variant '{other}' (use B0..B7)");
            std::process::exit(2);
        }
    }
}

struct Candidate {
    cores: usize,
    global_batch: usize,
    optimizer: OptimizerKind,
    minutes: f64,
    top1: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let variant = parse_variant(args.get(1).map(String::as_str).unwrap_or("B5"));
    let budget_min: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(90.0);

    let cfg = ModelConfig::variant(variant);
    let stats = model_stats(&cfg);
    let hbm = TPU_V3_CORE.hbm_capacity;
    let max_batch = max_per_core_batch(&cfg, stats.params, hbm, 2.0);
    println!(
        "Planning {}: {:.1}M params, {:.2} GMACs/img, HBM cap → ≤{} img/core\n",
        variant.name(),
        stats.params as f64 / 1e6,
        stats.macs as f64 / 1e9,
        max_batch
    );

    let mut candidates: Vec<Candidate> = Vec::new();
    for &cores in &[128usize, 256, 512, 1024, 2048] {
        for &per_core in &[8usize, 16, 32, 64] {
            if per_core > max_batch {
                continue;
            }
            let gbs = cores * per_core;
            // Recipe selection per the paper: RMSProp holds to 16384.
            let opt = if gbs > 16384 {
                OptimizerKind::Lars
            } else {
                OptimizerKind::RmsProp
            };
            let out = time_to_accuracy(&RunConfig::paper(variant, cores, gbs, opt));
            candidates.push(Candidate {
                cores,
                global_batch: gbs,
                optimizer: opt,
                minutes: out.minutes_to_peak(),
                top1: out.peak_top1,
            });
        }
    }

    // Feasible = meets the budget; rank by fewest cores, then accuracy.
    let mut feasible: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| c.minutes <= budget_min)
        .collect();
    feasible.sort_by(|a, b| {
        a.cores
            .cmp(&b.cores)
            .then(b.top1.partial_cmp(&a.top1).unwrap())
    });

    println!("Configurations meeting {budget_min:.0} min (cheapest first):");
    println!("  cores  batch   optimizer  minutes  top-1   infeed need (img/s/host)");
    for c in feasible.iter().take(8) {
        let inf = infeed_analysis(
            &StepConfig::new(variant, c.cores, c.global_batch),
            f64::INFINITY,
        );
        println!(
            "  {:>5}  {:>6}  {:<9}  {:>6.1}  {:>5.1}%  {:>10.0}",
            c.cores,
            c.global_batch,
            format!("{:?}", c.optimizer),
            c.minutes,
            100.0 * c.top1,
            inf.required_per_host,
        );
    }
    if feasible.is_empty() {
        println!("  none — the budget is below this model's floor at 2048 cores:");
        let best = candidates
            .iter()
            .min_by(|a, b| a.minutes.partial_cmp(&b.minutes).unwrap())
            .unwrap();
        println!(
            "  fastest possible: {} cores, batch {} → {:.1} min at {:.1}%",
            best.cores,
            best.global_batch,
            best.minutes,
            100.0 * best.top1
        );
    }
}
