//! The bench smoke path: runs a small traced, faulted 2×2-world training
//! run plus the calibrated Table-1 operating points, and writes the
//! observability artifacts CI uploads:
//!
//! - `BENCH_step_time.json` — per-variant step time / all-reduce share /
//!   throughput (`{"schema": "bench_step_time_v2", "runs": [...]}` of
//!   Table-1-style summaries), the per-backend 1024/2048/4096-core
//!   scaling rows, and the measured proxy row,
//! - `BENCH_trace.json` — Chrome trace-event JSON of the faulted run (one
//!   pid per rank; loads in `chrome://tracing` / Perfetto),
//! - `BENCH_metrics.prom` — Prometheus text dump of every rank's counters,
//!   gauges, and histograms.
//!
//! The trace is validated against the trace-event schema (well-formed
//! events, monotone timestamps per `(pid, tid)` track) *before* writing;
//! an invalid trace is a panic, not an artifact.
//!
//! ```sh
//! cargo run -p ets-bench --bin bench_smoke [-- --out <dir>]
//! ```

use ets_bench::run_smoke;
use std::path::PathBuf;

fn main() {
    let mut out_dir = PathBuf::from(".");
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_dir = PathBuf::from(args.get(i + 1).expect("--out requires a directory"));
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let art = run_smoke();

    let step_time = out_dir.join("BENCH_step_time.json");
    std::fs::write(&step_time, &art.step_time_json).expect("write BENCH_step_time.json");
    let trace = out_dir.join("BENCH_trace.json");
    std::fs::write(&trace, &art.trace_json).expect("write BENCH_trace.json");
    let prom = out_dir.join("BENCH_metrics.prom");
    std::fs::write(&prom, &art.prom_text).expect("write BENCH_metrics.prom");

    println!(
        "bench smoke: {} steps, {} preemption(s), {} transient failure(s)",
        art.report.steps,
        art.report.fault_recovery.preemptions,
        art.report.fault_recovery.transient_failures,
    );
    println!(
        "wrote {} ({} B), {} ({} B), {} ({} B)",
        step_time.display(),
        art.step_time_json.len(),
        trace.display(),
        art.trace_json.len(),
        prom.display(),
        art.prom_text.len(),
    );
}
