//! Regenerates **Table 1**: throughput (images/ms) and percent of step
//! time spent in all-reduce, for EfficientNet-B2 and B5 at 128→1024 cores.
//!
//! ```sh
//! cargo run -p ets-bench --bin table1 [-- --json]
//! ```

use ets_efficientnet::Variant;
use ets_tpu_sim::{step_time, StepConfig};
use ets_train::{train, Experiment};
use serde::Serialize;

/// Paper-reported values for side-by-side comparison.
const PAPER: [(Variant, usize, usize, f64, f64); 8] = [
    (Variant::B2, 128, 4096, 57.57, 2.1),
    (Variant::B2, 256, 8192, 113.73, 2.6),
    (Variant::B2, 512, 16384, 227.13, 2.5),
    (Variant::B2, 1024, 32768, 451.35, 2.81),
    (Variant::B5, 128, 4096, 9.76, 0.89),
    (Variant::B5, 256, 8192, 19.48, 1.24),
    (Variant::B5, 512, 16384, 38.55, 1.24),
    (Variant::B5, 1024, 32768, 77.44, 1.03),
];

#[derive(Serialize)]
struct Row {
    model: String,
    cores: usize,
    global_batch: usize,
    throughput_img_per_ms: f64,
    allreduce_pct: f64,
    paper_throughput: f64,
    paper_allreduce_pct: f64,
}

/// The real-engine counterpart: measure throughput and all-reduce share on
/// the threaded trainer as replica count scales (per-replica batch fixed),
/// mirroring Table 1's protocol at laptop scale.
fn real_engine_table() {
    println!("Table 1 (real engine counterpart): threaded replicas, per-replica batch 8\n");
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>8}",
        "replicas", "batch", "img/s", "step ms", "AR %"
    );
    for &replicas in &[1usize, 2, 4, 8] {
        let mut exp = Experiment::proxy_default();
        exp.replicas = replicas;
        exp.per_replica_batch = 8;
        exp.epochs = 2;
        exp.train_samples = 512;
        exp.eval_samples = 32;
        exp.eval_every = 2;
        let report = train(&exp);
        let p = report.phases;
        let imgs = (report.steps as usize * exp.global_batch()) as f64;
        println!(
            "{:>8} {:>7} {:>12.0} {:>12.2} {:>8.2}",
            replicas,
            exp.global_batch(),
            imgs / p.total(),
            1e3 * p.step_seconds(),
            100.0 * p.all_reduce_share(),
        );
    }
    println!("\nCaveats vs the paper's hardware: replicas share one CPU's cores,");
    println!("so per-replica compute slows as replicas grow — look at the");
    println!("all-reduce share staying small, not at absolute scaling.");
}

fn main() {
    if std::env::args().any(|a| a == "--real") {
        real_engine_table();
        return;
    }
    let json = std::env::args().any(|a| a == "--json");
    let rows: Vec<Row> = PAPER
        .iter()
        .map(|&(v, cores, gbs, p_thr, p_ar)| {
            let st = step_time(&StepConfig::new(v, cores, gbs));
            Row {
                model: v.name().to_string(),
                cores,
                global_batch: gbs,
                throughput_img_per_ms: st.throughput_img_per_ms(gbs),
                allreduce_pct: 100.0 * st.all_reduce_share(),
                paper_throughput: p_thr,
                paper_allreduce_pct: p_ar,
            }
        })
        .collect();

    if json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        return;
    }

    println!("Table 1: communication costs and throughput as global batch scales");
    println!("(simulated | paper)\n");
    println!(
        "{:<16} {:>6} {:>7}   {:>9} | {:>9}   {:>6} | {:>6}",
        "Model", "cores", "batch", "img/ms", "paper", "AR %", "paper"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>7}   {:>9.2} | {:>9.2}   {:>6.2} | {:>6.2}",
            r.model,
            r.cores,
            r.global_batch,
            r.throughput_img_per_ms,
            r.paper_throughput,
            r.allreduce_pct,
            r.paper_allreduce_pct,
        );
    }
    println!("\nShape checks: throughput doubles with cores; all-reduce stays a");
    println!("small, roughly-constant share; B5's share sits well below B2's.");
}
