//! Regenerates **Table 1**: throughput (images/ms) and percent of step
//! time spent in all-reduce, for EfficientNet-B2 and B5 at 128→1024 cores.
//!
//! ```sh
//! cargo run -p ets-bench --bin table1 [-- --json]
//! ```
//!
//! `--json` emits through the flight recorder's own JSON writer, so the
//! output parses even in hermetic builds with a stubbed `serde_json`.
//! `--real` runs the measured counterpart on the threaded trainer,
//! collapsing each run into a Table-1-style [`ets_obs::RunSummary`].

use ets_bench::{table1_json, table1_rows};
use ets_obs::summaries_to_json;
use ets_train::{train, Experiment};

/// The real-engine counterpart: measure throughput and all-reduce share on
/// the threaded trainer as replica count scales (per-replica batch fixed),
/// mirroring Table 1's protocol at laptop scale. Each run collapses into a
/// `RunSummary`; `--json` prints them as `{"runs": [...]}`.
fn real_engine_table(json: bool) {
    let mut runs = Vec::new();
    for &replicas in &[1usize, 2, 4, 8] {
        let mut exp = Experiment::proxy_default();
        exp.replicas = replicas;
        exp.per_replica_batch = 8;
        exp.epochs = 2;
        exp.train_samples = 512;
        exp.eval_samples = 32;
        exp.eval_every = 2;
        let report = train(&exp);
        runs.push(report.run_summary(
            &format!("proxy @ {replicas} replicas"),
            replicas as u64,
            exp.global_batch() as u64,
        ));
    }
    if json {
        println!("{}", summaries_to_json(&runs));
        return;
    }
    println!("Table 1 (real engine counterpart): threaded replicas, per-replica batch 8\n");
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>8}",
        "replicas", "batch", "img/s", "step ms", "AR %"
    );
    for s in &runs {
        println!(
            "{:>8} {:>7} {:>12.0} {:>12.2} {:>8.2}",
            s.cores, s.global_batch, s.images_per_sec, s.step_ms, s.all_reduce_pct,
        );
    }
    println!("\nCaveats vs the paper's hardware: replicas share one CPU's cores,");
    println!("so per-replica compute slows as replicas grow — look at the");
    println!("all-reduce share staying small, not at absolute scaling.");
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if std::env::args().any(|a| a == "--real") {
        real_engine_table(json);
        return;
    }
    let rows = table1_rows();

    if json {
        println!("{}", table1_json(&rows));
        return;
    }

    println!("Table 1: communication costs and throughput as global batch scales");
    println!("(simulated | paper)\n");
    println!(
        "{:<16} {:>6} {:>7}   {:>9} | {:>9}   {:>6} | {:>6}",
        "Model", "cores", "batch", "img/ms", "paper", "AR %", "paper"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>7}   {:>9.2} | {:>9.2}   {:>6.2} | {:>6.2}",
            r.model,
            r.cores,
            r.global_batch,
            r.throughput_img_per_ms,
            r.paper_throughput,
            r.allreduce_pct,
            r.paper_allreduce_pct,
        );
    }
    println!("\nShape checks: throughput doubles with cores; all-reduce stays a");
    println!("small, roughly-constant share; B5's share sits well below B2's.");
}
