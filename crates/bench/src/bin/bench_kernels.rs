//! Kernel GFLOP/s harness: writes `BENCH_kernels.json` — naive vs
//! blocked vs dispatched vs bf16-packed vs fused-im2col throughput
//! across EfficientNet-B0 layer shapes, plus the panel-pack throughput
//! probe (f32 vs bf16) and the steady-state step probe (wall time per
//! step, scratch arena allocator hits, per-precision gemm_auto dispatch
//! split).
//!
//! The document is schema-validated in-process before writing, and
//! `--check-regression` turns the CI gates (blocked ≥ naive at the
//! calibration shape; dispatched ≥ naive at every shape; bf16 pack ≥
//! f32 pack; steady-state `scratch_reallocs_delta == 0`; parallel GEMM
//! bitwise-equal + zero per-worker reallocs, and ≥ 1.6× sequential on
//! multi-core hosts) into a non-zero exit.
//!
//! `ETS_GEMM_WORKERS=<n>` pins the worker-pool width the *row*
//! measurements run under (CI sweeps {1, 4}); the parallel probe always
//! compares 1 worker against its own fixed width regardless.
//! `ETS_SIMD={auto,avx2,sse2,scalar}` pins the micro-kernel lane path
//! the rows dispatch through (CI sweeps {scalar, auto}); the SIMD probe
//! always measures every lane the host supports, forced in turn, and
//! the gate fails if any lane breaks bitwise parity with scalar or the
//! active lane falls below scalar throughput.
//!
//! ```sh
//! cargo run --release -p ets-bench --bin bench_kernels [-- --out <dir>] [--smoke] [--check-regression]
//! ```

use ets_bench::kernels::{
    abft_probe, check_committed_artifact, check_kernel_regression, kernel_rows, kernels_json,
    pack_probe, parallel_probe, simd_probe, steady_state_probe, validate_kernels_json,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_dir = PathBuf::from(".");
    if let Some(i) = args.iter().position(|a| a == "--out") {
        out_dir = PathBuf::from(args.get(i + 1).expect("--out requires a directory"));
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check-regression");

    // `--check-committed <path>`: gate the *committed* artifact's recorded
    // numbers (strict — no noise allowance) without re-measuring anything.
    if let Some(i) = args.iter().position(|a| a == "--check-committed") {
        let path = args.get(i + 1).expect("--check-committed requires a path");
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read committed artifact {path}: {e}"));
        match check_committed_artifact(&doc) {
            Ok(()) => {
                println!("committed artifact gate: ok ({path})");
                return;
            }
            Err(e) => {
                eprintln!("committed artifact gate failed ({path}): {e}");
                std::process::exit(1);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    if let Ok(w) = std::env::var("ETS_GEMM_WORKERS") {
        let w: usize = w.parse().expect("ETS_GEMM_WORKERS must be an integer");
        ets_tensor::set_gemm_workers(w);
        println!("gemm worker pool pinned to {w} (ETS_GEMM_WORKERS)");
    }

    let rows = kernel_rows(smoke);
    let ss = steady_state_probe(smoke);
    let pack = pack_probe(smoke);
    let par = parallel_probe(smoke);
    let abft = abft_probe(smoke);
    let sp = simd_probe(smoke);
    let doc = kernels_json(&rows, &ss, &pack, &par, &abft, &sp, smoke);
    validate_kernels_json(&doc).expect("BENCH_kernels.json failed schema validation");

    let path = out_dir.join("BENCH_kernels.json");
    std::fs::write(&path, &doc).expect("write BENCH_kernels.json");

    for r in &rows {
        let fused = r
            .fused_gflops
            .map(|f| format!("{f:8.2}"))
            .unwrap_or_else(|| "       -".into());
        let bf16_fused = r
            .bf16_fused_gflops
            .map(|f| format!("{f:8.2}"))
            .unwrap_or_else(|| "       -".into());
        println!(
            "{:<32} {:>4}x{:>5}x{:>5}  naive {:8.2}  blocked {:8.2}  auto {:8.2}  bf16 {:8.2}  fused {}  bf16-fused {}  ({:4.2}x)",
            r.label,
            r.m,
            r.k,
            r.n,
            r.naive_gflops,
            r.blocked_gflops,
            r.auto_gflops,
            r.bf16_blocked_gflops,
            fused,
            bf16_fused,
            r.speedup_auto()
        );
    }
    println!(
        "pack @ {}x{}: f32 {:.1} Melem/s, bf16 {:.1} Melem/s ({:.2}x)",
        pack.m,
        pack.k,
        pack.f32_melems_per_s,
        pack.bf16_melems_per_s,
        pack.bf16_melems_per_s / pack.f32_melems_per_s.max(1e-9)
    );
    println!(
        "steady state: {:.3} ms/step over {} steps ({} warmup), scratch reallocs {}, dispatch blocked/naive f32 {}/{} bf16 {}/{}",
        ss.step_ms, ss.steps, ss.warmup_steps, ss.scratch_reallocs_delta,
        ss.dispatch_blocked, ss.dispatch_naive, ss.dispatch_blocked_bf16, ss.dispatch_naive_bf16
    );
    println!(
        "parallel @ calibration: seq {:.2} GFLOP/s, {} workers {:.2} GFLOP/s ({:.2}x), \
         bitwise_equal {}, host cores {}, speedup gate {}",
        par.seq_gflops,
        par.workers,
        par.par_gflops,
        par.speedup(),
        par.bitwise_equal,
        par.host_cores,
        par.gate()
    );
    println!(
        "abft verify @ calibration: plain {:.2} GFLOP/s, verified {:.2} GFLOP/s ({:.1}% of plain), \
         {} tiles checked, bitwise_equal {}, false positives {}",
        abft.plain_gflops,
        abft.verify_gflops,
        abft.relative_throughput() * 100.0,
        abft.tiles_verified,
        abft.bitwise_equal,
        abft.false_positives
    );
    for lane in &sp.lanes {
        println!(
            "simd lane {:<6} @ calibration: f32 {:.2} GFLOP/s, bf16 {:.2} GFLOP/s, \
             bitwise_equal_scalar {}{}",
            lane.path,
            lane.f32_gflops,
            lane.bf16_gflops,
            lane.bitwise_equal_scalar,
            if lane.path == sp.active {
                "  (active)"
            } else {
                ""
            }
        );
    }
    println!("wrote {} ({} B)", path.display(), doc.len());

    if check {
        if let Err(e) = check_kernel_regression(&rows, &ss, &pack, &par, &abft, &sp, smoke) {
            eprintln!("kernel regression gate failed: {e}");
            std::process::exit(1);
        }
        println!("regression gate: ok");
        // The fresh-measurement gates above tolerate timing noise; the
        // committed artifact's *recorded* numbers get no such allowance.
        // This is the check whose absence let a bf16-pack regression ship.
        let committed = PathBuf::from("BENCH_kernels.json");
        if committed.exists() {
            let doc = std::fs::read_to_string(&committed).expect("read committed artifact");
            if let Err(e) = check_committed_artifact(&doc) {
                eprintln!("committed artifact gate failed: {e}");
                std::process::exit(1);
            }
            println!("committed artifact gate: ok");
        }
    }
}
