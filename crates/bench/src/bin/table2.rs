//! Regenerates **Table 2**: peak top-1 accuracy per (model, cores, batch,
//! optimizer, schedule) configuration.
//!
//! Two modes:
//! - default: the calibrated convergence model prints every Table 2 row —
//!   simulated vs paper.
//! - `--proxy`: *real training* on the proxy task through the distributed
//!   engine, sweeping batch size for RMSProp vs LARS to demonstrate the
//!   table's qualitative claim (RMSProp degrades past a batch threshold;
//!   LARS holds). Slower (~minutes).
//!
//! ```sh
//! cargo run --release -p ets-bench --bin table2 [-- --proxy] [-- --json]
//! ```

use ets_tpu_sim::{predict_peak_accuracy, TABLE2};
use ets_train::{proxy_of, train, DecayChoice, Experiment, OptimizerChoice};
use serde::Serialize;

#[derive(Serialize)]
struct SimRow {
    model: String,
    cores: usize,
    global_batch: usize,
    optimizer: String,
    lr_per_256: f32,
    warmup_epochs: u64,
    simulated_top1: f64,
    paper_top1: f64,
}

fn simulated() -> Vec<SimRow> {
    TABLE2
        .iter()
        .map(|r| SimRow {
            model: r.variant.name().to_string(),
            cores: r.cores,
            global_batch: r.global_batch,
            optimizer: format!("{:?}", r.optimizer),
            lr_per_256: r.lr_per_256,
            warmup_epochs: r.warmup_epochs,
            simulated_top1: predict_peak_accuracy(r.variant, r.optimizer, r.global_batch),
            paper_top1: r.peak_top1,
        })
        .collect()
}

#[derive(Serialize)]
struct ProxyRow {
    global_batch: usize,
    optimizer: String,
    peak_top1: f64,
}

fn proxy_run(optimizer: OptimizerChoice, decay: DecayChoice, lr_per_256: f32, batch: usize) -> f64 {
    let mut exp = Experiment::proxy_default();
    exp.replicas = 4;
    exp.per_replica_batch = batch / exp.replicas;
    exp.optimizer = optimizer;
    exp.decay = decay;
    exp.lr_per_256 = lr_per_256;
    exp.epochs = 16;
    exp.warmup_epochs = 4;
    exp.train_samples = 1024;
    exp.eval_samples = 256;
    // Hard enough that the ~90-100% band leaves headroom to lose: this is
    // where the fixed-epoch-budget generalization gap shows at proxy scale.
    exp.data_noise = 1.0;
    train(&exp).peak_top1
}

fn proxy() -> Vec<ProxyRow> {
    let mut rows = Vec::new();
    for &batch in &[32usize, 64, 128, 256] {
        rows.push(ProxyRow {
            global_batch: batch,
            optimizer: "RmsProp".into(),
            peak_top1: proxy_run(
                OptimizerChoice::RmsProp,
                DecayChoice::Exponential {
                    rate: 0.97,
                    epochs: 2.4,
                },
                0.05,
                batch,
            ),
        });
        rows.push(ProxyRow {
            global_batch: batch,
            optimizer: "Lars".into(),
            peak_top1: proxy_run(
                OptimizerChoice::Lars { trust_coeff: 0.05 },
                DecayChoice::Polynomial { power: 2.0 },
                1.0,
                batch,
            ),
        });
    }
    rows
}

/// Row-by-row structural mapping of Table 2 onto the proxy task: each of
/// the paper's 11 configurations becomes a proxy experiment preserving its
/// batch-to-dataset ratio, warmup fraction, and optimizer/decay family.
fn recipe_rows() {
    let mut base = Experiment::proxy_default();
    base.replicas = 4;
    base.epochs = 16;
    base.train_samples = 2048;
    base.eval_samples = 256;
    base.data_noise = 1.0;
    println!("Table 2 rows mapped structurally onto the proxy task\n");
    println!(
        "{:<16} {:>7}  {:<8} {:>11} {:>12} {:>11}",
        "paper row", "batch", "opt", "proxy batch", "proxy top-1", "paper top-1"
    );
    for row in &TABLE2 {
        let e = proxy_of(row, &base);
        let r = train(&e);
        println!(
            "{:<16} {:>7}  {:<8} {:>11} {:>11.1}% {:>11.3}",
            row.variant.name().trim_start_matches("EfficientNet-"),
            row.global_batch,
            format!("{:?}", row.optimizer),
            e.global_batch(),
            100.0 * r.peak_top1,
            row.peak_top1,
        );
    }
    println!("\nRead columns qualitatively: the proxy reproduces the *ordering*");
    println!("(all paper rows are configurations that work — and all their");
    println!("proxy images also train to high accuracy).");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--recipe") {
        recipe_rows();
        return;
    }
    if args.iter().any(|a| a == "--proxy") {
        let rows = proxy();
        if json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
            return;
        }
        println!("Table 2 (proxy counterpart): real distributed training on the");
        println!("proxy task, fixed epoch budget, LR linearly scaled\n");
        println!(
            "{:>12}  {:<8}  {:>10}",
            "global batch", "optimizer", "peak top-1"
        );
        for r in &rows {
            println!(
                "{:>12}  {:<8}  {:>9.1}%",
                r.global_batch,
                r.optimizer,
                100.0 * r.peak_top1
            );
        }
        println!("\nExpected shape: RMSProp degrades as batch grows; LARS holds.");
        return;
    }

    let rows = simulated();
    if json {
        println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        return;
    }
    println!("Table 2: peak top-1 accuracies (convergence model vs paper)\n");
    println!(
        "{:<16} {:>6} {:>7}  {:<8} {:>8} {:>7}   {:>9} | {:>6}",
        "Model", "cores", "batch", "opt", "lr/256", "warmup", "simulated", "paper"
    );
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>7}  {:<8} {:>8.3} {:>6}e   {:>9.3} | {:>6.3}",
            r.model,
            r.cores,
            r.global_batch,
            r.optimizer,
            r.lr_per_256,
            r.warmup_epochs,
            r.simulated_top1,
            r.paper_top1,
        );
    }
    println!("\nRun with --proxy for the real-training counterpart at proxy scale.");
}
