//! Scaling-efficiency analysis (§4's "throughput scales up linearly"):
//! parallel efficiency, step-time decomposition, end-to-end speedups, and
//! an Amdahl serial-fraction fit for B2 and B5.
//!
//! ```sh
//! cargo run -p ets-bench --bin scaling [-- --json]
//! ```

use ets_efficientnet::Variant;
use ets_tpu_sim::{amdahl_serial_fraction, scaling_sweep};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let slices = [128usize, 256, 512, 1024];
    if json {
        let mut all = serde_json::Map::new();
        for v in [Variant::B2, Variant::B5] {
            let pts = scaling_sweep(v, &slices);
            all.insert(v.name().to_string(), serde_json::to_value(&pts).unwrap());
        }
        println!("{}", serde_json::to_string_pretty(&all).unwrap());
        return;
    }
    println!("Scaling analysis (per-core batch 32)\n");
    for v in [Variant::B2, Variant::B5] {
        let pts = scaling_sweep(v, &slices);
        println!("{}", v.name());
        println!("  cores  batch   par.eff  compute%  AR%    e2e speedup");
        for p in &pts {
            println!(
                "  {:>5}  {:>6}  {:>6.3}   {:>6.1}   {:>5.2}  {:>10.2}×",
                p.cores,
                p.global_batch,
                p.parallel_efficiency,
                100.0 * p.compute_share,
                100.0 * p.all_reduce_share,
                p.end_to_end_speedup,
            );
        }
        println!(
            "  Amdahl serial fraction (fit): {:.4}\n",
            amdahl_serial_fraction(&pts)
        );
    }
}
