//! Scaling-efficiency analysis (§4's "throughput scales up linearly"):
//! parallel efficiency, step-time decomposition, end-to-end speedups, and
//! an Amdahl serial-fraction fit for B2 and B5.
//!
//! ```sh
//! cargo run -p ets-bench --bin scaling [-- --json]
//! ```
//!
//! `--json` emits through the flight recorder's own JSON writer, so the
//! output parses even in hermetic builds with a stubbed `serde_json`.

use ets_bench::{scaling_json, scaling_tables};

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let slices = [128usize, 256, 512, 1024];
    let tables = scaling_tables(&slices);
    if json {
        println!("{}", scaling_json(&tables));
        return;
    }
    println!("Scaling analysis (per-core batch 32)\n");
    for (v, pts, serial) in &tables {
        println!("{}", v.name());
        println!("  cores  batch   par.eff  compute%  AR%    e2e speedup");
        for p in pts {
            println!(
                "  {:>5}  {:>6}  {:>6.3}   {:>6.1}   {:>5.2}  {:>10.2}×",
                p.cores,
                p.global_batch,
                p.parallel_efficiency,
                100.0 * p.compute_share,
                100.0 * p.all_reduce_share,
                p.end_to_end_speedup,
            );
        }
        println!("  Amdahl serial fraction (fit): {serial:.4}\n");
    }
}
