//! Scaling-efficiency analysis (§4's "throughput scales up linearly"):
//! parallel efficiency, step-time decomposition, end-to-end speedups, and
//! an Amdahl serial-fraction fit for B2 and B5 — now swept past the
//! paper's 1024-core pod to 2048 and 4096 cores, with per-backend
//! (flat ring vs 2-D torus) rows and the hierarchical growth gate.
//!
//! ```sh
//! cargo run -p ets-bench --bin scaling [-- --json] [-- --check-growth]
//! ```
//!
//! `--json` emits through the flight recorder's own JSON writer, so the
//! output parses even in hermetic builds with a stubbed `serde_json`.
//! `--check-growth` runs CI's gate: the torus backend's all-reduce share
//! must grow strictly slower than the flat ring's from 1024 to 4096
//! cores; exits nonzero on violation.

use ets_bench::{
    check_scaling_regression, scaling_backend_rows, scaling_json, scaling_tables,
    SCALING_BACKEND_CORES,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let check_growth = args.iter().any(|a| a == "--check-growth");
    let slices = [128usize, 256, 512, 1024, 2048, 4096];
    let tables = scaling_tables(&slices);
    let backend_rows = scaling_backend_rows();

    if check_growth {
        match check_scaling_regression(&backend_rows) {
            Ok((torus, ring)) => {
                let lo = SCALING_BACKEND_CORES.first().unwrap();
                let hi = SCALING_BACKEND_CORES.last().unwrap();
                println!(
                    "growth gate OK: {lo}->{hi} cores all-reduce share grew \
                     x{torus:.3} (torus2d) vs x{ring:.3} (ring)"
                );
            }
            Err(e) => {
                eprintln!("growth gate FAILED: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if json {
        println!("{}", scaling_json(&tables));
        return;
    }
    println!("Scaling analysis (per-core batch 32)\n");
    for (v, pts, serial) in &tables {
        println!("{}", v.name());
        println!("  cores  batch   par.eff  compute%  AR%    e2e speedup");
        for p in pts {
            println!(
                "  {:>5}  {:>6}  {:>6.3}   {:>6.1}   {:>5.2}  {:>10.2}×",
                p.cores,
                p.global_batch,
                p.parallel_efficiency,
                100.0 * p.compute_share,
                100.0 * p.all_reduce_share,
                p.end_to_end_speedup,
            );
        }
        println!("  Amdahl serial fraction (fit): {serial:.4}\n");
    }
    println!("Per-backend all-reduce share, B2 (per-core batch 32)");
    println!("  cores  backend  step ms   AR%    overlap%");
    for r in &backend_rows {
        println!(
            "  {:>5}  {:<7}  {:>7.3}  {:>5.2}  {:>7.1}",
            r.cores, r.backend, r.step_ms, r.all_reduce_pct, r.overlap_pct,
        );
    }
}
