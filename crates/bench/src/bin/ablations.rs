//! Ablation harness for the recipe's individual ingredients:
//!
//! - `eval-loop`   — §3.3: separate evaluator vs distributed eval (model).
//! - `bn-group`    — §3.4: BN group size sweep (real training) + 1-D vs 2-D
//!   tiling locality.
//! - `precision`   — §3.5: f32 vs bf16 convolutions (real training).
//! - `lr-schedule` — §3.2: exponential vs polynomial decay under LARS
//!   (real training).
//! - `sm3`         — §5: the SM3 extension vs LARS at large proxy batch.
//! - `all`         — everything.
//!
//! ```sh
//! cargo run --release -p ets-bench --bin ablations -- <which>
//! ```

use ets_collective::{GroupSpec, SliceShape};
use ets_efficientnet::Variant;
use ets_nn::Precision;
use ets_tpu_sim::{simulate_eval_loop, step_time, EvalMode, StepConfig};
use ets_train::{train, DecayChoice, Experiment, OptimizerChoice};

fn base_exp() -> Experiment {
    let mut exp = Experiment::proxy_default();
    exp.replicas = 4;
    exp.per_replica_batch = 8;
    exp.epochs = 12;
    exp.train_samples = 768;
    exp.eval_samples = 192;
    exp
}

fn ablate_eval_loop() {
    println!("== Ablation A (§3.3): evaluation loop architecture ==\n");
    let st = step_time(&StepConfig::new(Variant::B2, 1024, 32768));
    let epoch_secs = st.total() * (1_281_167f64 / 32768.0).ceil();
    println!("B2 @ 1024 cores: epoch = {epoch_secs:.1}s of training\n");
    println!(
        "{:<34} {:>12} {:>12}",
        "eval architecture", "to peak", "vs train"
    );
    for (name, mode) in [
        (
            "separate v3-8 evaluator (TPUEstimator)",
            EvalMode::SeparateEvaluator { eval_cores: 8 },
        ),
        (
            "separate v3-32 evaluator",
            EvalMode::SeparateEvaluator { eval_cores: 32 },
        ),
        ("distributed train+eval loop (paper)", EvalMode::Distributed),
    ] {
        let out = simulate_eval_loop(Variant::B2, 1024, epoch_secs, 350, 340, mode);
        println!(
            "{:<34} {:>9.1} min {:>11.2}×",
            name,
            out.time_to_peak_observed / 60.0,
            out.time_to_peak_observed / out.train_time_to_peak,
        );
    }
    println!();
}

fn ablate_bn_group() {
    println!("== Ablation B (§3.4): batch-norm group size (real training) ==\n");
    println!("{:>8} {:>9} {:>11}", "group", "bn batch", "peak top-1");
    for &group in &[1usize, 2, 4] {
        let mut exp = base_exp();
        exp.per_replica_batch = 4;
        exp.bn_group = if group == 1 {
            GroupSpec::Local
        } else {
            GroupSpec::Contiguous(group)
        };
        let r = train(&exp);
        println!(
            "{:>8} {:>9} {:>10.1}%",
            group,
            group * exp.per_replica_batch,
            100.0 * r.peak_top1
        );
    }
    let slice = SliceShape::for_cores(1024);
    println!("\n1-D vs 2-D grouping locality at 1024 cores (32 replicas/group):");
    println!(
        "  contiguous 32 → diameter {} hops;  4×4 tile → {} hops",
        GroupSpec::Contiguous(32).max_group_diameter(slice),
        GroupSpec::Tiled2d { rows: 4, cols: 4 }.max_group_diameter(slice),
    );
    println!();
}

fn ablate_precision() {
    println!("== Ablation C (§3.5): conv precision (real training) ==\n");
    println!(
        "{:<10} {:>11} {:>11}",
        "precision", "peak top-1", "final loss"
    );
    for (name, p) in [("f32", Precision::F32), ("bf16", Precision::MixedBf16)] {
        let mut exp = base_exp();
        exp.precision = p;
        let r = train(&exp);
        println!(
            "{:<10} {:>10.1}% {:>11.3}",
            name,
            100.0 * r.peak_top1,
            r.final_loss()
        );
    }
    println!();
}

fn ablate_lr_schedule() {
    println!("== Ablation D (§3.2): decay schedule under LARS (real training) ==\n");
    println!("{:<14} {:>11}", "decay", "peak top-1");
    for (name, decay) in [
        (
            "exponential",
            DecayChoice::Exponential {
                rate: 0.97,
                epochs: 2.4,
            },
        ),
        ("polynomial", DecayChoice::Polynomial { power: 2.0 }),
        ("cosine", DecayChoice::Cosine),
    ] {
        let mut exp = base_exp();
        exp.optimizer = OptimizerChoice::Lars { trust_coeff: 0.1 };
        exp.lr_per_256 = 2.0;
        exp.warmup_epochs = 3;
        exp.decay = decay;
        let r = train(&exp);
        println!("{:<14} {:>10.1}%", name, 100.0 * r.peak_top1);
    }
    println!("\nThe paper found polynomial decay best for LARS (§3.2).\n");
}

fn ablate_sm3() {
    println!("== Extension (§5): SM3 at large proxy batch ==\n");
    println!("{:<10} {:>11}", "optimizer", "peak top-1");
    for (name, opt, lr, decay) in [
        (
            "LARS",
            OptimizerChoice::Lars { trust_coeff: 0.05 },
            1.0f32,
            DecayChoice::Polynomial { power: 2.0 },
        ),
        (
            "SM3",
            OptimizerChoice::Sm3 { momentum: 0.9 },
            0.5,
            DecayChoice::Polynomial { power: 2.0 },
        ),
        (
            "LAMB",
            OptimizerChoice::Lamb,
            0.02,
            DecayChoice::Polynomial { power: 2.0 },
        ),
    ] {
        let mut exp = base_exp();
        exp.per_replica_batch = 32; // global 128: the large-batch regime
        exp.train_samples = 1024;
        exp.optimizer = opt;
        exp.lr_per_256 = lr;
        exp.warmup_epochs = 3;
        exp.decay = decay;
        exp.epochs = 16;
        let r = train(&exp);
        println!("{:<10} {:>10.1}%", name, 100.0 * r.peak_top1);
    }
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "eval-loop" => ablate_eval_loop(),
        "bn-group" => ablate_bn_group(),
        "precision" => ablate_precision(),
        "lr-schedule" => ablate_lr_schedule(),
        "sm3" => ablate_sm3(),
        "all" => {
            ablate_eval_loop();
            ablate_bn_group();
            ablate_precision();
            ablate_lr_schedule();
            ablate_sm3();
        }
        other => {
            eprintln!("unknown ablation '{other}'; use eval-loop | bn-group | precision | lr-schedule | sm3 | all");
            std::process::exit(2);
        }
    }
}
