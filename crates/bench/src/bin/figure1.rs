//! Regenerates **Figure 1**: training time to peak accuracy for
//! EfficientNet-B2 and B5 across TPU-v3 slice sizes (128→1024 cores),
//! including the batch-65536 headline run.
//!
//! ```sh
//! cargo run -p ets-bench --bin figure1 [-- --json]
//! ```
//!
//! `--json` emits through the flight recorder's own JSON writer, so the
//! output parses even in hermetic builds with a stubbed `serde_json`.

use ets_bench::{figure1_json, figure1_points};

fn bar(minutes: f64, scale: f64) -> String {
    "█".repeat(((minutes / scale).ceil() as usize).max(1))
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let all = figure1_points();

    if json {
        println!("{}", figure1_json(&all));
        return;
    }

    println!("Figure 1: training time to peak accuracy vs TPU slice size\n");
    for p in &all {
        println!(
            "{:<16} {:>5} cores, batch {:>6} [{:<7}/{:<7}]  {:>7.1} min  {:.1}%  {}",
            p.model,
            p.cores,
            p.global_batch,
            p.optimizer,
            p.backend,
            p.minutes_to_peak,
            100.0 * p.peak_top1,
            bar(p.minutes_to_peak, 4.0),
        );
    }
    println!("\nPaper anchors: B2 @ 1024 cores ≈ 18 min to 79.7%;");
    println!("B5 @ 1024 cores / batch 65536 ≈ 64 min to 83.0%.");
}
