//! Regenerates **Figure 1**: training time to peak accuracy for
//! EfficientNet-B2 and B5 across TPU-v3 slice sizes (128→1024 cores),
//! including the batch-65536 headline run.
//!
//! ```sh
//! cargo run -p ets-bench --bin figure1 [-- --json]
//! ```

use ets_efficientnet::Variant;
use ets_tpu_sim::{time_to_accuracy, OptimizerKind, RunConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    model: String,
    cores: usize,
    global_batch: usize,
    optimizer: String,
    minutes_to_peak: f64,
    peak_top1: f64,
}

fn series(v: Variant) -> Vec<Point> {
    let mut pts = Vec::new();
    for &cores in &[128usize, 256, 512, 1024] {
        let gbs = cores * 32;
        // The paper's Figure 1 runs use the best recipe per scale: RMSProp
        // where it still holds (≤16384), LARS beyond.
        let opt = if gbs > 16384 {
            OptimizerKind::Lars
        } else {
            OptimizerKind::RmsProp
        };
        let out = time_to_accuracy(&RunConfig::paper(v, cores, gbs, opt));
        pts.push(Point {
            model: v.name().to_string(),
            cores,
            global_batch: gbs,
            optimizer: format!("{opt:?}"),
            minutes_to_peak: out.minutes_to_peak(),
            peak_top1: out.peak_top1,
        });
    }
    if v == Variant::B5 {
        let out = time_to_accuracy(&RunConfig::paper(v, 1024, 65536, OptimizerKind::Lars));
        pts.push(Point {
            model: v.name().to_string(),
            cores: 1024,
            global_batch: 65536,
            optimizer: "Lars".into(),
            minutes_to_peak: out.minutes_to_peak(),
            peak_top1: out.peak_top1,
        });
    }
    pts
}

fn bar(minutes: f64, scale: f64) -> String {
    "█".repeat(((minutes / scale).ceil() as usize).max(1))
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let all: Vec<Point> = [Variant::B2, Variant::B5]
        .iter()
        .flat_map(|&v| series(v))
        .collect();

    if json {
        println!("{}", serde_json::to_string_pretty(&all).unwrap());
        return;
    }

    println!("Figure 1: training time to peak accuracy vs TPU slice size\n");
    for p in &all {
        println!(
            "{:<16} {:>5} cores, batch {:>6} [{:<7}]  {:>7.1} min  {:.1}%  {}",
            p.model,
            p.cores,
            p.global_batch,
            p.optimizer,
            p.minutes_to_peak,
            100.0 * p.peak_top1,
            bar(p.minutes_to_peak, 4.0),
        );
    }
    println!("\nPaper anchors: B2 @ 1024 cores ≈ 18 min to 79.7%;");
    println!("B5 @ 1024 cores / batch 65536 ≈ 64 min to 83.0%.");
}
