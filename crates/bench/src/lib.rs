//! Shared scaffolding for the table/figure harness binaries.
//!
//! Each binary regenerates one artifact of the paper (see DESIGN.md's
//! experiment index). The row builders and JSON emitters live here so the
//! bins, the bench smoke tests, and CI's artifact job all exercise the
//! *same* code path: a bin that prints unparseable JSON is now a test
//! failure, not a silent gap in the perf trajectory.
//!
//! All machine-readable output goes through [`ets_obs::JsonWriter`] — a
//! dependency-free writer that stays valid JSON even in hermetic builds
//! where `serde_json` is replaced by a non-functional stub.

pub mod kernels;

use ets_efficientnet::Variant;
use ets_obs::{
    summaries_to_json, validate_chrome_trace, JsonWriter, OverheadDecomposition, Recorder,
    RunSummary,
};
use ets_tpu_sim::{
    amdahl_serial_fraction, scaling_sweep, step_time, time_to_accuracy, OptimizerKind, RunConfig,
    ScalingPoint, StepConfig,
};
use ets_train::{train_traced, Experiment, TrainReport};
use std::sync::Arc;

// ---------------------------------------------------------------- Table 1

/// Paper-reported Table 1 values for side-by-side comparison.
pub const TABLE1_PAPER: [(Variant, usize, usize, f64, f64); 8] = [
    (Variant::B2, 128, 4096, 57.57, 2.1),
    (Variant::B2, 256, 8192, 113.73, 2.6),
    (Variant::B2, 512, 16384, 227.13, 2.5),
    (Variant::B2, 1024, 32768, 451.35, 2.81),
    (Variant::B5, 128, 4096, 9.76, 0.89),
    (Variant::B5, 256, 8192, 19.48, 1.24),
    (Variant::B5, 512, 16384, 38.55, 1.24),
    (Variant::B5, 1024, 32768, 77.44, 1.03),
];

/// One Table 1 row: the calibrated simulator's numbers next to the paper's.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub model: String,
    pub cores: usize,
    pub global_batch: usize,
    pub throughput_img_per_ms: f64,
    pub allreduce_pct: f64,
    pub step_ms: f64,
    pub paper_throughput: f64,
    pub paper_allreduce_pct: f64,
}

/// Rebuild Table 1 from the calibrated step-time model.
pub fn table1_rows() -> Vec<Table1Row> {
    TABLE1_PAPER
        .iter()
        .map(|&(v, cores, gbs, p_thr, p_ar)| {
            let st = step_time(&StepConfig::new(v, cores, gbs));
            Table1Row {
                model: v.name().to_string(),
                cores,
                global_batch: gbs,
                throughput_img_per_ms: st.throughput_img_per_ms(gbs),
                allreduce_pct: 100.0 * st.all_reduce_share(),
                step_ms: 1e3 * st.total(),
                paper_throughput: p_thr,
                paper_allreduce_pct: p_ar,
            }
        })
        .collect()
}

/// Table 1 rows as a JSON array (always parseable; no serde_json).
pub fn table1_json(rows: &[Table1Row]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_array();
    for r in rows {
        w.begin_object()
            .field_str("model", &r.model)
            .field_u64("cores", r.cores as u64)
            .field_u64("global_batch", r.global_batch as u64)
            .field_f64("throughput_img_per_ms", r.throughput_img_per_ms)
            .field_f64("allreduce_pct", r.allreduce_pct)
            .field_f64("step_ms", r.step_ms)
            .field_f64("paper_throughput", r.paper_throughput)
            .field_f64("paper_allreduce_pct", r.paper_allreduce_pct)
            .end_object();
    }
    w.end_array();
    w.finish()
}

// --------------------------------------------------------------- Figure 1

/// One Figure 1 point: time to peak accuracy at an operating point.
#[derive(Clone, Debug)]
pub struct Figure1Point {
    pub model: String,
    pub cores: usize,
    pub global_batch: usize,
    pub optimizer: String,
    pub minutes_to_peak: f64,
    pub peak_top1: f64,
}

/// Rebuild Figure 1's series for one variant (incl. the batch-65536
/// headline run for B5).
pub fn figure1_series(v: Variant) -> Vec<Figure1Point> {
    let mut pts = Vec::new();
    for &cores in &[128usize, 256, 512, 1024] {
        let gbs = cores * 32;
        // The paper's Figure 1 runs use the best recipe per scale: RMSProp
        // where it still holds (≤16384), LARS beyond.
        let opt = if gbs > 16384 {
            OptimizerKind::Lars
        } else {
            OptimizerKind::RmsProp
        };
        let out = time_to_accuracy(&RunConfig::paper(v, cores, gbs, opt));
        pts.push(Figure1Point {
            model: v.name().to_string(),
            cores,
            global_batch: gbs,
            optimizer: format!("{opt:?}"),
            minutes_to_peak: out.minutes_to_peak(),
            peak_top1: out.peak_top1,
        });
    }
    if v == Variant::B5 {
        let out = time_to_accuracy(&RunConfig::paper(v, 1024, 65536, OptimizerKind::Lars));
        pts.push(Figure1Point {
            model: v.name().to_string(),
            cores: 1024,
            global_batch: 65536,
            optimizer: "Lars".into(),
            minutes_to_peak: out.minutes_to_peak(),
            peak_top1: out.peak_top1,
        });
    }
    pts
}

/// All Figure 1 points (B2 then B5).
pub fn figure1_points() -> Vec<Figure1Point> {
    [Variant::B2, Variant::B5]
        .iter()
        .flat_map(|&v| figure1_series(v))
        .collect()
}

/// Figure 1 points as a JSON array.
pub fn figure1_json(points: &[Figure1Point]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_array();
    for p in points {
        w.begin_object()
            .field_str("model", &p.model)
            .field_u64("cores", p.cores as u64)
            .field_u64("global_batch", p.global_batch as u64)
            .field_str("optimizer", &p.optimizer)
            .field_f64("minutes_to_peak", p.minutes_to_peak)
            .field_f64("peak_top1", p.peak_top1)
            .end_object();
    }
    w.end_array();
    w.finish()
}

// ---------------------------------------------------------------- Scaling

/// The scaling sweep for both variants, with the Amdahl fit per variant.
pub fn scaling_tables(slices: &[usize]) -> Vec<(Variant, Vec<ScalingPoint>, f64)> {
    [Variant::B2, Variant::B5]
        .iter()
        .map(|&v| {
            let pts = scaling_sweep(v, slices);
            let serial = amdahl_serial_fraction(&pts);
            (v, pts, serial)
        })
        .collect()
}

/// Scaling sweep as `{"B2": {"points": [...], "amdahl_serial_fraction": f},
/// "B5": ...}`.
pub fn scaling_json(tables: &[(Variant, Vec<ScalingPoint>, f64)]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    for (v, pts, serial) in tables {
        w.key(v.name()).begin_object().key("points").begin_array();
        for p in pts {
            w.begin_object()
                .field_u64("cores", p.cores as u64)
                .field_u64("global_batch", p.global_batch as u64)
                .field_f64("parallel_efficiency", p.parallel_efficiency)
                .field_f64("compute_share", p.compute_share)
                .field_f64("all_reduce_share", p.all_reduce_share)
                .field_f64("end_to_end_speedup", p.end_to_end_speedup)
                .end_object();
        }
        w.end_array()
            .field_f64("amdahl_serial_fraction", *serial)
            .end_object();
    }
    w.end_object();
    w.finish()
}

// ------------------------------------------------- BENCH_step_time smoke

/// One [`RunSummary`] per Table 1 operating point, from the calibrated
/// step-time model. `steps` is 0 (the model prices one steady-state step,
/// not a run); `total_virtual_s` is one step.
pub fn step_time_summaries() -> Vec<RunSummary> {
    table1_rows()
        .iter()
        .map(|r| RunSummary {
            label: format!("{} @ {} cores", r.model, r.cores),
            cores: r.cores as u64,
            global_batch: r.global_batch as u64,
            steps: 0,
            step_ms: r.step_ms,
            all_reduce_pct: r.allreduce_pct,
            overlap_pct: 0.0, // the analytic model prices a serialized exchange
            bn_sync_pct: 0.0,
            images_per_sec: r.throughput_img_per_ms * 1e3,
            total_virtual_s: r.step_ms * 1e-3,
            corruptions_detected: 0,
            corruptions_corrected: 0,
            rank_quarantines: 0,
            overhead: OverheadDecomposition::default(),
        })
        .collect()
}

/// The smoke experiment behind `BENCH_step_time.json`'s measured row and
/// the CI Chrome-trace artifact: a 2×2 world (4 replicas) with a straggler
/// window, a transient collective failure, and a mid-run preemption — every
/// recorder lane lights up, and the run stays deterministic.
pub fn smoke_experiment() -> Experiment {
    use ets_collective::{FaultEvent, FaultKind};
    let mut e = Experiment::proxy_default();
    e.replicas = 4;
    e.per_replica_batch = 8;
    e.epochs = 2;
    e.train_samples = 128;
    e.eval_samples = 32;
    e.eval_every = 2;
    e.faults.checkpoint_every_steps = 2;
    e.faults.restart_delay_s = 3.0;
    // Exercise the overlapped exchange under faults: small buckets give
    // the tiny proxy model several buckets to overlap (one default-size
    // bucket would leave nothing to hide).
    e.overlap_all_reduce = true;
    e.grad_bucket_elems = Some(2048);
    e.faults.events = vec![
        FaultEvent {
            at_s: 1.0,
            duration_s: 2.0,
            kind: FaultKind::Straggler {
                replica: 3,
                slowdown: 2.5,
            },
        },
        FaultEvent {
            at_s: 3.5,
            duration_s: 0.0,
            kind: FaultKind::TransientCollective { failures: 1 },
        },
        FaultEvent {
            at_s: 5.0,
            duration_s: 0.0,
            kind: FaultKind::Preempt { replica: 1 },
        },
    ];
    e
}

/// Output of [`run_smoke`]: everything CI uploads as artifacts.
pub struct SmokeArtifacts {
    /// `BENCH_step_time.json` contents: per-variant simulated operating
    /// points plus the measured proxy run, `{"runs": [...]}`.
    pub step_time_json: String,
    /// Chrome trace-event JSON of the faulted 2×2-world run (one pid per
    /// rank), already validated against the trace-event schema.
    pub trace_json: String,
    /// Prometheus text dump of all ranks' metric registries.
    pub prom_text: String,
    /// The traced run's report (for asserts in tests).
    pub report: TrainReport,
    /// Per-rank recorders of the traced run.
    pub recorders: Vec<Arc<Recorder>>,
}

/// The bench smoke path: build the per-variant step-time summaries, run
/// the traced faulted proxy experiment, and render all artifacts.
/// Panics if the produced trace fails schema validation — CI runs this
/// path, so an invalid trace can never become an uploaded artifact.
pub fn run_smoke() -> SmokeArtifacts {
    let exp = smoke_experiment();
    let (report, recorders) = train_traced(&exp);

    let mut runs = step_time_summaries();
    runs.push(report.run_summary(
        "proxy (measured) @ 2x2 world",
        exp.replicas as u64,
        exp.global_batch() as u64,
    ));
    let step_time_json = summaries_to_json(&runs);

    let recs: Vec<&Recorder> = recorders.iter().map(Arc::as_ref).collect();
    let trace_json = ets_obs::chrome_trace_multi(&recs);
    let stats = validate_chrome_trace(&trace_json)
        .unwrap_or_else(|e| panic!("smoke trace failed schema validation: {e}"));
    assert_eq!(stats.pids, exp.replicas, "one pid per rank");
    let prom_text = ets_obs::prometheus_text_multi(&recs);

    SmokeArtifacts {
        step_time_json,
        trace_json,
        prom_text,
        report,
        recorders,
    }
}
