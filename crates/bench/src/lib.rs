//! Shared scaffolding for the table/figure harness binaries.
//!
//! Each binary regenerates one artifact of the paper (see DESIGN.md's
//! experiment index); they share only trivial formatting, which lives
//! inline, so this crate root exists for the `[[bin]]`/`[[bench]]`
//! targets.
