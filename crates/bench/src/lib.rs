//! Shared scaffolding for the table/figure harness binaries.
//!
//! Each binary regenerates one artifact of the paper (see DESIGN.md's
//! experiment index). The row builders and JSON emitters live here so the
//! bins, the bench smoke tests, and CI's artifact job all exercise the
//! *same* code path: a bin that prints unparseable JSON is now a test
//! failure, not a silent gap in the perf trajectory.
//!
//! All machine-readable output goes through [`ets_obs::JsonWriter`] — a
//! dependency-free writer that stays valid JSON even in hermetic builds
//! where `serde_json` is replaced by a non-functional stub.

pub mod kernels;

use ets_collective::Backend;
use ets_efficientnet::Variant;
use ets_obs::{
    summaries_to_json, validate_chrome_trace, JsonWriter, OverheadDecomposition, Recorder,
    RunSummary,
};
use ets_tpu_sim::{
    amdahl_serial_fraction, auto_backend_for, scaling_sweep, step_time, step_time_for_backend,
    time_to_accuracy_for_backend, OptimizerKind, RunConfig, ScalingPoint, StepConfig,
};
use ets_train::{train_traced, Experiment, TrainReport};
use std::sync::Arc;

// ---------------------------------------------------------------- Table 1

/// Paper-reported Table 1 values for side-by-side comparison.
pub const TABLE1_PAPER: [(Variant, usize, usize, f64, f64); 8] = [
    (Variant::B2, 128, 4096, 57.57, 2.1),
    (Variant::B2, 256, 8192, 113.73, 2.6),
    (Variant::B2, 512, 16384, 227.13, 2.5),
    (Variant::B2, 1024, 32768, 451.35, 2.81),
    (Variant::B5, 128, 4096, 9.76, 0.89),
    (Variant::B5, 256, 8192, 19.48, 1.24),
    (Variant::B5, 512, 16384, 38.55, 1.24),
    (Variant::B5, 1024, 32768, 77.44, 1.03),
];

/// One Table 1 row: the calibrated simulator's numbers next to the paper's.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub model: String,
    pub cores: usize,
    pub global_batch: usize,
    pub throughput_img_per_ms: f64,
    pub allreduce_pct: f64,
    pub step_ms: f64,
    pub paper_throughput: f64,
    pub paper_allreduce_pct: f64,
}

/// Rebuild Table 1 from the calibrated step-time model.
pub fn table1_rows() -> Vec<Table1Row> {
    TABLE1_PAPER
        .iter()
        .map(|&(v, cores, gbs, p_thr, p_ar)| {
            let st = step_time(&StepConfig::new(v, cores, gbs));
            Table1Row {
                model: v.name().to_string(),
                cores,
                global_batch: gbs,
                throughput_img_per_ms: st.throughput_img_per_ms(gbs),
                allreduce_pct: 100.0 * st.all_reduce_share(),
                step_ms: 1e3 * st.total(),
                paper_throughput: p_thr,
                paper_allreduce_pct: p_ar,
            }
        })
        .collect()
}

/// Table 1 rows as a JSON array (always parseable; no serde_json).
pub fn table1_json(rows: &[Table1Row]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_array();
    for r in rows {
        w.begin_object()
            .field_str("model", &r.model)
            .field_u64("cores", r.cores as u64)
            .field_u64("global_batch", r.global_batch as u64)
            .field_f64("throughput_img_per_ms", r.throughput_img_per_ms)
            .field_f64("allreduce_pct", r.allreduce_pct)
            .field_f64("step_ms", r.step_ms)
            .field_f64("paper_throughput", r.paper_throughput)
            .field_f64("paper_allreduce_pct", r.paper_allreduce_pct)
            .end_object();
    }
    w.end_array();
    w.finish()
}

// --------------------------------------------------------------- Figure 1

/// One Figure 1 point: time to peak accuracy at an operating point. The
/// gradient exchange is priced under `Backend::Auto`, and `backend`
/// records the concrete transport the α–β cost models resolve to at this
/// world size (the one the executed dispatch would route over) — so the
/// committed figure names the grid all-reduce it actually charges.
#[derive(Clone, Debug)]
pub struct Figure1Point {
    pub model: String,
    pub cores: usize,
    pub global_batch: usize,
    pub optimizer: String,
    pub backend: String,
    pub minutes_to_peak: f64,
    pub peak_top1: f64,
}

fn figure1_point(v: Variant, cores: usize, gbs: usize, opt: OptimizerKind) -> Figure1Point {
    let out = time_to_accuracy_for_backend(&RunConfig::paper(v, cores, gbs, opt), Backend::Auto);
    let picked = auto_backend_for(&StepConfig::new(v, cores, gbs));
    Figure1Point {
        model: v.name().to_string(),
        cores,
        global_batch: gbs,
        optimizer: format!("{opt:?}"),
        backend: picked.name().to_string(),
        minutes_to_peak: out.minutes_to_peak(),
        peak_top1: out.peak_top1,
    }
}

/// Rebuild Figure 1's series for one variant (incl. the batch-65536
/// headline run for B5).
pub fn figure1_series(v: Variant) -> Vec<Figure1Point> {
    let mut pts = Vec::new();
    for &cores in &[128usize, 256, 512, 1024] {
        let gbs = cores * 32;
        // The paper's Figure 1 runs use the best recipe per scale: RMSProp
        // where it still holds (≤16384), LARS beyond.
        let opt = if gbs > 16384 {
            OptimizerKind::Lars
        } else {
            OptimizerKind::RmsProp
        };
        pts.push(figure1_point(v, cores, gbs, opt));
    }
    if v == Variant::B5 {
        pts.push(figure1_point(v, 1024, 65536, OptimizerKind::Lars));
    }
    pts
}

/// All Figure 1 points (B2 then B5).
pub fn figure1_points() -> Vec<Figure1Point> {
    [Variant::B2, Variant::B5]
        .iter()
        .flat_map(|&v| figure1_series(v))
        .collect()
}

/// Figure 1 points as a JSON array.
pub fn figure1_json(points: &[Figure1Point]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_array();
    for p in points {
        w.begin_object()
            .field_str("model", &p.model)
            .field_u64("cores", p.cores as u64)
            .field_u64("global_batch", p.global_batch as u64)
            .field_str("optimizer", &p.optimizer)
            .field_str("backend", &p.backend)
            .field_f64("minutes_to_peak", p.minutes_to_peak)
            .field_f64("peak_top1", p.peak_top1)
            .end_object();
    }
    w.end_array();
    w.finish()
}

// ---------------------------------------------------------------- Scaling

/// The scaling sweep for both variants, with the Amdahl fit per variant.
pub fn scaling_tables(slices: &[usize]) -> Vec<(Variant, Vec<ScalingPoint>, f64)> {
    [Variant::B2, Variant::B5]
        .iter()
        .map(|&v| {
            let pts = scaling_sweep(v, slices);
            let serial = amdahl_serial_fraction(&pts);
            (v, pts, serial)
        })
        .collect()
}

/// Scaling sweep as `{"B2": {"points": [...], "amdahl_serial_fraction": f},
/// "B5": ...}`.
pub fn scaling_json(tables: &[(Variant, Vec<ScalingPoint>, f64)]) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    for (v, pts, serial) in tables {
        w.key(v.name()).begin_object().key("points").begin_array();
        for p in pts {
            w.begin_object()
                .field_u64("cores", p.cores as u64)
                .field_u64("global_batch", p.global_batch as u64)
                .field_f64("parallel_efficiency", p.parallel_efficiency)
                .field_f64("compute_share", p.compute_share)
                .field_f64("all_reduce_share", p.all_reduce_share)
                .field_f64("end_to_end_speedup", p.end_to_end_speedup)
                .end_object();
        }
        w.end_array()
            .field_f64("amdahl_serial_fraction", *serial)
            .end_object();
    }
    w.end_object();
    w.finish()
}

// ------------------------------------------------- BENCH_step_time smoke

/// ImageNet training-set size — fixes the step count of a paper run.
pub const IMAGENET_TRAIN_IMAGES: u64 = 1_281_167;
/// Epoch budget of the paper's recipe (350 epochs to peak).
pub const PAPER_EPOCHS: u64 = 350;

/// Steps in a full 350-epoch ImageNet run at a given global batch.
pub fn paper_run_steps(global_batch: u64) -> u64 {
    PAPER_EPOCHS * IMAGENET_TRAIN_IMAGES.div_ceil(global_batch)
}

fn analytic_summary(
    label: String,
    backend: &str,
    st: &ets_tpu_sim::StepTime,
    cores: usize,
    gbs: usize,
) -> RunSummary {
    RunSummary {
        label,
        backend: backend.to_string(),
        cores: cores as u64,
        global_batch: gbs as u64,
        steps: paper_run_steps(gbs as u64),
        step_ms: 1e3 * st.total(),
        all_reduce_pct: 100.0 * st.all_reduce_share(),
        overlap_pct: st.overlap_pct(),
        bn_sync_pct: 100.0 * st.bn_sync / st.total(),
        images_per_sec: st.throughput_img_per_ms(gbs) * 1e3,
        total_virtual_s: st.total(),
        corruptions_detected: 0,
        corruptions_corrected: 0,
        rank_quarantines: 0,
        overhead: OverheadDecomposition::default(),
    }
}

/// One [`RunSummary`] per Table 1 operating point, from the calibrated
/// step-time model. `steps` is the full 350-epoch run's step count;
/// `total_virtual_s` is one steady-state step. The analytic rows carry the
/// backend the model prices (the 2-D torus exchange) and its overlapped
/// share of all-reduce time.
pub fn step_time_summaries() -> Vec<RunSummary> {
    TABLE1_PAPER
        .iter()
        .map(|&(v, cores, gbs, _, _)| {
            let st = step_time(&StepConfig::new(v, cores, gbs));
            analytic_summary(
                format!("{} @ {} cores", v.name(), cores),
                "torus2d",
                &st,
                cores,
                gbs,
            )
        })
        .collect()
}

// --------------------------------------------- per-backend scaling rows

/// Core counts of the per-backend scaling study (ISSUE 9): the paper's
/// 1024-core pod plus the 2048- and 4096-core extrapolations.
pub const SCALING_BACKEND_CORES: [usize; 3] = [1024, 2048, 4096];

/// Per-backend B2 scaling rows: flat ring vs 2-D torus at each core count
/// in [`SCALING_BACKEND_CORES`], per-core batch 32. Six rows, labelled
/// `"EfficientNet-B2 @ <cores> cores (<backend>)"`.
pub fn scaling_backend_rows() -> Vec<RunSummary> {
    let mut rows = Vec::new();
    for &cores in &SCALING_BACKEND_CORES {
        for backend in [Backend::Ring, Backend::Torus2d] {
            let gbs = cores * 32;
            let st = step_time_for_backend(&StepConfig::new(Variant::B2, cores, gbs), backend);
            rows.push(analytic_summary(
                format!("EfficientNet-B2 @ {cores} cores ({})", backend.name()),
                backend.name(),
                &st,
                cores,
                gbs,
            ));
        }
    }
    rows
}

/// CI gate over [`scaling_backend_rows`]: the hierarchical (torus) backend's
/// all-reduce share must grow strictly slower than the flat ring's from the
/// smallest to the largest core count. Returns the two growth ratios
/// `(torus, ring)` on success.
pub fn check_scaling_regression(rows: &[RunSummary]) -> Result<(f64, f64), String> {
    let lo = *SCALING_BACKEND_CORES.first().unwrap() as u64;
    let hi = *SCALING_BACKEND_CORES.last().unwrap() as u64;
    let pct = |backend: &str, cores: u64| -> Result<f64, String> {
        rows.iter()
            .find(|r| r.backend == backend && r.cores == cores)
            .map(|r| r.all_reduce_pct)
            .ok_or_else(|| format!("missing scaling row: backend={backend} cores={cores}"))
    };
    let torus = pct("torus2d", hi)? / pct("torus2d", lo)?;
    let ring = pct("ring", hi)? / pct("ring", lo)?;
    if torus < ring {
        Ok((torus, ring))
    } else {
        Err(format!(
            "hierarchical all-reduce share must scale sublinearly vs flat ring: \
             torus2d {lo}->{hi} cores grew x{torus:.3}, ring x{ring:.3}"
        ))
    }
}

/// The smoke experiment behind `BENCH_step_time.json`'s measured row and
/// the CI Chrome-trace artifact: a 2×2 world (4 replicas) with a straggler
/// window, a transient collective failure, and a mid-run preemption — every
/// recorder lane lights up, and the run stays deterministic.
pub fn smoke_experiment() -> Experiment {
    use ets_collective::{FaultEvent, FaultKind};
    let mut e = Experiment::proxy_default();
    e.replicas = 4;
    e.per_replica_batch = 8;
    e.epochs = 2;
    e.train_samples = 128;
    e.eval_samples = 32;
    e.eval_every = 2;
    e.faults.checkpoint_every_steps = 2;
    e.faults.restart_delay_s = 3.0;
    // Exercise the overlapped exchange under faults: small buckets give
    // the tiny proxy model several buckets to overlap (one default-size
    // bucket would leave nothing to hide).
    e.overlap_all_reduce = true;
    e.grad_bucket_elems = Some(2048);
    e.faults.events = vec![
        FaultEvent {
            at_s: 1.0,
            duration_s: 2.0,
            kind: FaultKind::Straggler {
                replica: 3,
                slowdown: 2.5,
            },
        },
        FaultEvent {
            at_s: 3.5,
            duration_s: 0.0,
            kind: FaultKind::TransientCollective { failures: 1 },
        },
        FaultEvent {
            at_s: 5.0,
            duration_s: 0.0,
            kind: FaultKind::Preempt { replica: 1 },
        },
    ];
    e
}

/// Output of [`run_smoke`]: everything CI uploads as artifacts.
pub struct SmokeArtifacts {
    /// `BENCH_step_time.json` contents: per-variant simulated operating
    /// points, the per-backend scaling rows (flat ring vs 2-D torus at
    /// 1024/2048/4096 cores), and the measured proxy run —
    /// `{"schema": "bench_step_time_v2", "runs": [...]}`, already schema-
    /// validated and growth-gated.
    pub step_time_json: String,
    /// Chrome trace-event JSON of the faulted 2×2-world run (one pid per
    /// rank), already validated against the trace-event schema.
    pub trace_json: String,
    /// Prometheus text dump of all ranks' metric registries.
    pub prom_text: String,
    /// The traced run's report (for asserts in tests).
    pub report: TrainReport,
    /// Per-rank recorders of the traced run.
    pub recorders: Vec<Arc<Recorder>>,
}

/// The bench smoke path: build the per-variant step-time summaries, run
/// the traced faulted proxy experiment, and render all artifacts.
/// Panics if the produced trace fails schema validation — CI runs this
/// path, so an invalid trace can never become an uploaded artifact.
pub fn run_smoke() -> SmokeArtifacts {
    let exp = smoke_experiment();
    let (report, recorders) = train_traced(&exp);

    let mut runs = step_time_summaries();
    runs.extend(scaling_backend_rows());
    check_scaling_regression(&runs)
        .unwrap_or_else(|e| panic!("smoke scaling rows failed the growth gate: {e}"));
    let mut measured = report.run_summary(
        "proxy (measured) @ 2x2 world",
        exp.replicas as u64,
        exp.global_batch() as u64,
    );
    measured.backend = exp.collective_backend.name().to_string();
    runs.push(measured);
    let step_time_json = summaries_to_json(&runs);
    ets_obs::validate_step_time_json(&step_time_json)
        .unwrap_or_else(|e| panic!("smoke step-time doc failed schema validation: {e}"));

    let recs: Vec<&Recorder> = recorders.iter().map(Arc::as_ref).collect();
    let trace_json = ets_obs::chrome_trace_multi(&recs);
    let stats = validate_chrome_trace(&trace_json)
        .unwrap_or_else(|e| panic!("smoke trace failed schema validation: {e}"));
    assert_eq!(stats.pids, exp.replicas, "one pid per rank");
    let prom_text = ets_obs::prometheus_text_multi(&recs);

    SmokeArtifacts {
        step_time_json,
        trace_json,
        prom_text,
        report,
        recorders,
    }
}
