//! The compute-kernel baseline behind `BENCH_kernels.json`.
//!
//! Measures GFLOP/s of the three conv-GEMM strategies across
//! EfficientNet-B0 layer shapes:
//!
//! - **naive** — materialized im2col patches + the streaming
//!   [`gemm_slice`] kernel (the pre-packed-kernel hot path),
//! - **blocked** — materialized im2col patches + the cache-blocked,
//!   panel-packed [`gemm_blocked`] kernel,
//! - **fused** — [`gemm_prepacked`] over a [`PanelB::Patches`] operand:
//!   patches are gathered straight into tile-major B panels, the `K×P`
//!   patch matrix never exists in memory (conv rows only). The weight
//!   panel is packed once outside the timing loop, mirroring
//!   `conv2d_forward`'s per-call amortization across a batch.
//!
//! Every row is also measured through the shape-pure dispatcher
//! (`gemm_auto`) and through the bf16 packed kernels (§3.5: operands
//! narrowed once at pack time, f32 accumulate), plus a panel-packing
//! throughput probe (f32 copy vs bf16 narrowing pack) at the calibration
//! shape, a per-lane-path SIMD probe (the blocked kernel forced down
//! every micro-kernel lane the host supports — scalar/SSE2/AVX2 — in
//! both precisions, bitwise-checked against the scalar lane), and a
//! steady-state training-step probe that pins the scratch
//! arena's allocator traffic to **zero** after warmup — in both
//! precisions — and reports wall time per step and the per-precision
//! gemm_auto dispatch split.
//!
//! The calibration row (`m=256, k=1152, n=3136` — a B0 stage-5-sized
//! 3×3 conv at 56×56) is identical in smoke and full mode: CI gates on
//! blocked ≥ naive at that shape, dispatched ≥ naive at *every* shape,
//! and bf16 pack ≥ f32 pack, so neither the fast path nor the
//! mixed-precision path can silently regress below what they replaced.

use ets_obs::{parse_json, JsonWriter, Value};
use ets_tensor::bf16::Bf16;
use ets_tensor::ops::conv::{
    conv2d_backward, conv2d_backward_p, conv2d_forward, conv2d_forward_p, im2col, Conv2dGeom,
};
use ets_tensor::ops::dispatch::{
    dispatch_blocked_calls, dispatch_calls, dispatch_naive_calls, gemm_auto, GemmPrecision,
};
use ets_tensor::ops::gemm_blocked::{
    gemm_blocked, gemm_blocked_bf16, gemm_prepacked, gemm_prepacked_as, pack_a_into,
    pack_a_into_as, pack_b_panel, packed_a_len, PanelA, PanelB, KC, NC,
};
use ets_tensor::ops::matmul::gemm_slice;
use ets_tensor::ops::simd::{self, LanePath};
use ets_tensor::{
    gemm_workers, scratch_bf16, scratch_f32, scratch_reallocs, set_gemm_workers,
    set_sequential_override, worker_stats, Rng, Shape, Tensor,
};
use std::time::Instant;

/// Label of the ISSUE calibration shape (CI regression gate).
pub const CALIBRATION_LABEL: &str = "b0_stage5_3x3_56px_calibration";
/// The calibration GEMM dims: `C_out × (C_in·KH·KW) × (H_out·W_out)`.
pub const CALIBRATION_MKN: (usize, usize, usize) = (256, 1152, 3136);

/// One measured kernel shape.
#[derive(Clone, Debug)]
pub struct KernelBenchRow {
    pub label: String,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub reps: usize,
    pub naive_gflops: f64,
    pub blocked_gflops: f64,
    /// `gemm_auto` through the shape-pure dispatcher — what training
    /// actually runs at this shape. The per-row gate compares this (not
    /// the raw blocked kernel) against naive: the dispatcher must never
    /// pick a path slower than the kernel it replaced.
    pub auto_gflops: f64,
    /// bf16 packed-panel blocked kernel (narrow at pack, f32 accumulate).
    pub bf16_blocked_gflops: f64,
    /// Fused im2col+packing path; `None` for pure-GEMM rows.
    pub fused_gflops: Option<f64>,
    /// bf16 fused patch path; `None` for pure-GEMM rows.
    pub bf16_fused_gflops: Option<f64>,
    /// True for the CI-gated calibration shape.
    pub calibration: bool,
}

impl KernelBenchRow {
    /// blocked / naive throughput ratio.
    pub fn speedup_blocked(&self) -> f64 {
        if self.naive_gflops > 0.0 {
            self.blocked_gflops / self.naive_gflops
        } else {
            0.0
        }
    }

    /// dispatched / naive throughput ratio (the effective speedup).
    pub fn speedup_auto(&self) -> f64 {
        if self.naive_gflops > 0.0 {
            self.auto_gflops / self.naive_gflops
        } else {
            0.0
        }
    }
}

/// Panel-packing throughput at the calibration shape, f32 vs bf16. The
/// bf16 pack narrows each element (RNE) but writes half the bytes, so it
/// must not lose to the f32 copy — the regression gate enforces it.
#[derive(Clone, Debug)]
pub struct PackProbe {
    pub m: usize,
    pub k: usize,
    /// Elements packed per invocation.
    pub elems: usize,
    pub reps: usize,
    pub f32_melems_per_s: f64,
    pub bf16_melems_per_s: f64,
}

/// Deterministic-parallelism probe at the calibration shape: the same
/// blocked GEMM run sequentially (1 worker) and on a multi-worker tile
/// grid. The tile grid is a pure function of shape with single-owner
/// tiles, so the parallel output must be **bitwise equal** to the
/// sequential one; the probe also pins each worker's scratch arena to
/// zero allocator hits after warmup.
#[derive(Clone, Debug)]
pub struct ParallelProbe {
    /// Worker-pool width of the parallel measurement.
    pub workers: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cores: usize,
    pub reps: usize,
    pub seq_gflops: f64,
    pub par_gflops: f64,
    /// Parallel output bitwise equal to sequential (must always hold).
    pub bitwise_equal: bool,
    /// Per-worker allocator hits during the measured (post-warmup) reps;
    /// the steady-state contract requires every entry to be 0.
    pub worker_realloc_deltas: Vec<u64>,
    /// The ≥[`PARALLEL_SPEEDUP_FLOOR`] speedup gate is only meaningful
    /// when the host can actually run workers concurrently.
    pub gate_enforced: bool,
    /// Best matched-window seq/par timing ratio: each rep times the two
    /// paths back-to-back, and this is the max over reps of
    /// `t_seq / t_par`. On quota-throttled 1-core containers the
    /// *independent* best-of ratio ([`Self::speedup`]) can read 0.7–0.9×
    /// for literally identical code; the paired ratio only asks that the
    /// parallel path kept up with sequential in at least one shared
    /// scheduling window, which is noise-robust.
    pub best_paired_ratio: f64,
    /// Tiles executed by *helper* workers (pool slots ≥ 1) during the
    /// measured parallel-half reps. On a 1-core host the worker clamp
    /// must route dispatch to the sequential path, so this must be 0 —
    /// the deterministic half of the parity gate. On multi-core hosts it
    /// must be > 0 or the speedup figure never exercised the tile grid.
    pub par_helper_tiles: u64,
}

impl ParallelProbe {
    /// parallel / sequential throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.seq_gflops > 0.0 {
            self.par_gflops / self.seq_gflops
        } else {
            0.0
        }
    }

    /// Which gate this probe is held to: `"enforced"` (≥ 2 cores — the
    /// [`PARALLEL_SPEEDUP_FLOOR`] applies) or `"parity-only"` (1-core
    /// host — the dispatcher must refuse the tile grid, so the probe
    /// must stay within noise of sequential, ≥
    /// [`PARALLEL_PARITY_FLOOR`]). Never a silent skip.
    pub fn gate(&self) -> &'static str {
        if self.gate_enforced {
            "enforced"
        } else {
            "parity-only"
        }
    }
}

/// Minimum parallel-over-sequential speedup at the calibration shape,
/// enforced on hosts with ≥ 2 cores.
pub const PARALLEL_SPEEDUP_FLOOR: f64 = 1.6;

/// On a 1-core host a real speedup is impossible, but the dispatch layer
/// must then keep the probe *at* sequential throughput (it routes the
/// "parallel" call back to the sequential path). The floor applies to
/// [`ParallelProbe::best_paired_ratio`] — the matched-window ratio —
/// not the independent best-of ratio, which on a quota-throttled
/// container drifts well below this for identical code.
pub const PARALLEL_PARITY_FLOOR: f64 = 0.95;

/// Worker count of the parallel half of [`parallel_probe`].
pub const PARALLEL_PROBE_WORKERS: usize = 4;

/// Runs the deterministic-parallelism probe at the calibration shape.
/// Restores the process-wide worker-pool width it found on entry.
pub fn parallel_probe(smoke: bool) -> ParallelProbe {
    let (m, k, n) = CALIBRATION_MKN;
    let flops = 2 * (m * k * n) as u64;
    // Each rep is one matched seq/par timing window; the parity gate
    // takes the best window, so even smoke mode needs enough of them
    // that at least one lands outside a quota-throttle burst.
    let reps = if smoke { 6 } else { 10 };
    let mut rng = Rng::new(101);
    let mut a = vec![0.0f32; m * k];
    rng.fill_uniform(&mut a, -1.0, 1.0);
    let mut b = vec![0.0f32; k * n];
    rng.fill_uniform(&mut b, -1.0, 1.0);
    let mut c_seq = vec![0.0f32; m * n];
    let mut c_par = vec![0.0f32; m * n];

    let prev_workers = gemm_workers();
    // One pool size for the whole probe: the sequential half routes
    // through `set_sequential_override` instead of a pool resize, so no
    // helper is ever respawned mid-probe (a respawned helper's fresh
    // thread-local arena would trip the zero-realloc gate below).
    set_gemm_workers(PARALLEL_PROBE_WORKERS);
    // Warmup both paths (primes every worker's scratch arena; reallocs
    // after this point break the steady-state contract) …
    set_sequential_override(true);
    gemm_blocked(m, k, n, &a, &b, &mut c_seq);
    set_sequential_override(false);
    gemm_blocked(m, k, n, &a, &b, &mut c_par);
    let reallocs_before: Vec<u64> = worker_stats().iter().map(|s| s.scratch_reallocs).collect();
    let helper_tiles_before: u64 = worker_stats().iter().skip(1).map(|s| s.tiles).sum();
    // … then *interleave* the timed reps: each rep times the two paths
    // back-to-back so they see the same background load, and the pair
    // order flips every rep — on quota-throttled 1-core containers the
    // second measurement of a pair systematically runs on depleted CPU
    // budget, which reads as a reproducible "slowdown" of whichever half
    // always goes second. The parity gate keys off the best *matched*
    // ratio (max over reps of t_seq/t_par), not the independent best-of
    // ratio, because the latter is a race between two noise floors.
    let mut best_seq = f64::INFINITY;
    let mut best_par = f64::INFINITY;
    let mut best_paired_ratio = 0.0f64;
    let run_half = |seq: bool, c: &mut [f32]| -> f64 {
        set_sequential_override(seq);
        let t0 = Instant::now();
        gemm_blocked(m, k, n, &a, &b, c);
        t0.elapsed().as_secs_f64().max(1e-9)
    };
    for rep in 0..reps {
        let (t_seq, t_par) = if rep % 2 == 0 {
            let ts = run_half(true, &mut c_seq);
            (ts, run_half(false, &mut c_par))
        } else {
            let tp = run_half(false, &mut c_par);
            (run_half(true, &mut c_seq), tp)
        };
        best_seq = best_seq.min(t_seq);
        best_par = best_par.min(t_par);
        best_paired_ratio = best_paired_ratio.max(t_seq / t_par);
    }
    let seq_gflops = flops as f64 / best_seq / 1e9;
    let par_gflops = flops as f64 / best_par / 1e9;
    let worker_realloc_deltas: Vec<u64> = worker_stats()
        .iter()
        .zip(&reallocs_before)
        .map(|(s, &b0)| s.scratch_reallocs - b0)
        .collect();
    let par_helper_tiles: u64 =
        worker_stats().iter().skip(1).map(|s| s.tiles).sum::<u64>() - helper_tiles_before;
    set_gemm_workers(prev_workers.max(1));

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let bitwise_equal = c_seq
        .iter()
        .zip(&c_par)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    ParallelProbe {
        workers: PARALLEL_PROBE_WORKERS,
        host_cores,
        reps,
        seq_gflops,
        par_gflops,
        bitwise_equal,
        worker_realloc_deltas,
        gate_enforced: host_cores >= 2,
        best_paired_ratio,
        par_helper_tiles,
    }
}

/// One lane path's blocked-kernel throughput at the calibration shape,
/// in both pack-time precisions, plus bitwise parity against the scalar
/// lane (the SIMD layer's core contract — see `ets_tensor::ops::simd`).
#[derive(Clone, Debug)]
pub struct SimdLaneRow {
    pub path: String,
    pub f32_gflops: f64,
    pub bf16_gflops: f64,
    /// Outputs bitwise equal to the scalar lane's (must always hold).
    pub bitwise_equal_scalar: bool,
}

/// Per-lane-path micro-kernel probe: the same blocked GEMM forced down
/// every lane path the host supports, timed round-robin so inter-lane
/// ratios share a scheduling window. `active` is the path the process
/// dispatches by default (honors `ETS_SIMD`); `detected` is the best
/// path runtime feature detection found.
#[derive(Clone, Debug)]
pub struct SimdProbe {
    pub active: String,
    pub detected: String,
    pub reps: usize,
    pub lanes: Vec<SimdLaneRow>,
}

impl SimdProbe {
    /// The row for one lane path, if the host supports it.
    pub fn lane(&self, path: &str) -> Option<&SimdLaneRow> {
        self.lanes.iter().find(|l| l.path == path)
    }
}

/// Floor on the **committed** artifact's vectorization win: when the
/// recorded active lane is AVX2, the calibration row's blocked GFLOP/s
/// must be at least this multiple of the scalar lane's f32 row from the
/// same document. (Fresh measurements get the usual noise allowance;
/// the committed numbers were best-of runs someone chose to ship.)
pub const SIMD_SPEEDUP_FLOOR: f64 = 1.5;

/// Runs the per-lane-path probe at the calibration shape. Forces each
/// lane via the process-global override (safe — all lanes are bitwise
/// identical by construction) and restores the default on exit.
pub fn simd_probe(smoke: bool) -> SimdProbe {
    let (m, k, n) = CALIBRATION_MKN;
    let flops = 2 * (m * k * n) as u64;
    let reps = if smoke { 4 } else { 10 };
    let mut rng = Rng::new(109);
    let mut a = vec![0.0f32; m * k];
    rng.fill_uniform(&mut a, -1.0, 1.0);
    let mut b = vec![0.0f32; k * n];
    rng.fill_uniform(&mut b, -1.0, 1.0);

    let active = simd::lane_path().name().to_string();
    let detected = simd::detected_lane_path().name().to_string();
    let paths: Vec<LanePath> = LanePath::ALL
        .iter()
        .copied()
        .filter(|p| p.available())
        .collect();
    let mut c32: Vec<Vec<f32>> = vec![vec![0.0f32; m * n]; paths.len()];
    let mut c16: Vec<Vec<f32>> = vec![vec![0.0f32; m * n]; paths.len()];
    // Variant 2i   = lane i, f32 blocked kernel;
    // variant 2i+1 = lane i, bf16 packed blocked kernel.
    let mut run = |v: usize| {
        let _lane = simd::ForcedLaneGuard::new(paths[v / 2]);
        if v.is_multiple_of(2) {
            gemm_blocked(m, k, n, &a, &b, &mut c32[v / 2]);
        } else {
            gemm_blocked_bf16(m, k, n, &a, &b, &mut c16[v / 2]);
        }
    };
    let best = time_variants_interleaved(2 * paths.len(), reps, &mut run);

    let scalar_idx = paths
        .iter()
        .position(|p| *p == LanePath::Scalar)
        .expect("scalar lane is always available");
    let bits_eq = |x: &[f32], y: &[f32]| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits());
    let lanes = paths
        .iter()
        .enumerate()
        .map(|(i, p)| SimdLaneRow {
            path: p.name().to_string(),
            f32_gflops: flops as f64 / best[2 * i] / 1e9,
            bf16_gflops: flops as f64 / best[2 * i + 1] / 1e9,
            bitwise_equal_scalar: bits_eq(&c32[i], &c32[scalar_idx])
                && bits_eq(&c16[i], &c16[scalar_idx]),
        })
        .collect();
    SimdProbe {
        active,
        detected,
        reps,
        lanes,
    }
}

/// ABFT verify-cost probe at the calibration shape: the same blocked
/// GEMM with tile-checksum verification off and on. Verification is an
/// eᵀ(AB) = (eᵀA)B identity check over each macro-tile, so on clean
/// operands it must be **bitwise neutral** (the product path is
/// untouched; only checksums are computed alongside) and must never
/// report a corruption — the probe pins both, and prices the overhead
/// as a GFLOP/s ratio CI can track release over release.
#[derive(Clone, Debug)]
pub struct AbftProbe {
    pub reps: usize,
    /// Throughput with verification off (the default production path).
    pub plain_gflops: f64,
    /// Throughput with per-tile checksum verification on.
    pub verify_gflops: f64,
    /// Verified output bitwise equal to the unverified one (must hold).
    pub bitwise_equal: bool,
    /// Tiles checksummed during the measured reps (> 0 or the probe
    /// never exercised the verify path and the cost figure is vacuous).
    pub tiles_verified: u64,
    /// Corruptions reported on clean operands (must be 0).
    pub false_positives: u64,
}

impl AbftProbe {
    /// verify / plain throughput ratio (1.0 = free, lower = costlier).
    pub fn relative_throughput(&self) -> f64 {
        if self.plain_gflops > 0.0 {
            self.verify_gflops / self.plain_gflops
        } else {
            0.0
        }
    }
}

/// Runs the ABFT verify-cost probe at the calibration shape. Restores
/// the process-global verify flag it found on entry.
pub fn abft_probe(smoke: bool) -> AbftProbe {
    use ets_tensor::ops::abft;

    let (m, k, n) = CALIBRATION_MKN;
    let flops = 2 * (m * k * n) as u64;
    let reps = if smoke { 3 } else { 10 };
    let mut rng = Rng::new(103);
    let mut a = vec![0.0f32; m * k];
    rng.fill_uniform(&mut a, -1.0, 1.0);
    let mut b = vec![0.0f32; k * n];
    rng.fill_uniform(&mut b, -1.0, 1.0);
    let mut c_plain = vec![0.0f32; m * n];
    let mut c_verify = vec![0.0f32; m * n];

    let prev = abft::verify_enabled();
    abft::set_verify(false);
    let plain_gflops = time_gflops(flops, reps, || gemm_blocked(m, k, n, &a, &b, &mut c_plain));

    abft::set_verify(true);
    let verified0 = abft::tiles_verified();
    let detected0 = abft::corruptions_detected();
    let verify_gflops = time_gflops(flops, reps, || gemm_blocked(m, k, n, &a, &b, &mut c_verify));
    let tiles_verified = abft::tiles_verified() - verified0;
    let false_positives = abft::corruptions_detected() - detected0;
    abft::set_verify(prev);

    let bitwise_equal = c_plain
        .iter()
        .zip(&c_verify)
        .all(|(x, y)| x.to_bits() == y.to_bits());
    AbftProbe {
        reps,
        plain_gflops,
        verify_gflops,
        bitwise_equal,
        tiles_verified,
        false_positives,
    }
}

/// Steady-state training-step probe results.
#[derive(Clone, Debug)]
pub struct SteadyState {
    pub warmup_steps: usize,
    pub steps: usize,
    pub step_ms: f64,
    /// Arena allocator hits across the measured (post-warmup) steps.
    /// The allocation-free-step contract requires this to be 0.
    pub scratch_reallocs_delta: u64,
    pub dispatch_blocked: u64,
    pub dispatch_naive: u64,
    /// bf16 dispatch split across the measured steps — the probe runs a
    /// mixed-precision step alongside the f32 one, so the bf16 scratch
    /// pools (half-width panels) are held to the same zero-realloc
    /// contract.
    pub dispatch_blocked_bf16: u64,
    pub dispatch_naive_bf16: u64,
}

/// Times `reps` invocations of `f` (after one untimed warmup call) and
/// returns GFLOP/s of the **fastest** invocation for `flops`
/// floating-point ops per call. Best-of, not mean: on a shared machine a
/// single descheduled rep can triple the average and flip the regression
/// gate, while the minimum estimates the kernel's actual capability.
fn time_gflops(flops: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup: faults in scratch buffers, pages, rayon pool
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64().max(1e-9));
    }
    flops as f64 / best / 1e9
}

/// A conv-shaped row: times naive / blocked / fused on one image.
#[allow(clippy::too_many_arguments)]
fn conv_row(
    label: &str,
    rng: &mut Rng,
    c_in: usize,
    hw: usize,
    c_out: usize,
    ksz: usize,
    stride: usize,
    pad: usize,
    reps: usize,
    calibration: bool,
) -> KernelBenchRow {
    let xs = Shape::new(&[1, c_in, hw, hw]);
    let ws = Shape::new(&[c_out, c_in, ksz, ksz]);
    let g = Conv2dGeom::infer(&xs, &ws, stride, pad);
    let (m, k, n) = (g.c_out, g.k(), g.p());
    let flops = 2 * (m * k * n) as u64;

    let mut img = vec![0.0f32; c_in * hw * hw];
    rng.fill_uniform(&mut img, -1.0, 1.0);
    let mut w = vec![0.0f32; m * k];
    rng.fill_uniform(&mut w, -0.5, 0.5);
    let mut y = vec![0.0f32; m * n];
    let mut patches = vec![0.0f32; k * n];

    // Fused: weight panel packed once (amortized across a batch in
    // `conv2d_forward`), patches gathered straight into B panels.
    let mut ap = scratch_f32(packed_a_len(m, k));
    pack_a_into(PanelA::RowMajor(&w), m, k, &mut ap);
    let mut ap16 = scratch_bf16(packed_a_len(m, k));
    pack_a_into_as::<Bf16>(PanelA::RowMajor(&w), m, k, &mut ap16);

    // All six variants are timed round-robin inside a shared rep loop
    // (rep 0 is the untimed warmup): the gate compares variants against
    // each other, and interleaving keeps every pair of samples in the
    // same scheduling window — two best-of blocks taken seconds apart
    // drift by >10% on a throttled host, which is exactly the noise the
    // auto-vs-naive gate must not fire on.
    let mut run = |v: usize| match v {
        0 => {
            im2col(&g, &img, &mut patches);
            gemm_slice(m, k, n, &w, &patches, &mut y);
        }
        1 => {
            im2col(&g, &img, &mut patches);
            gemm_blocked(m, k, n, &w, &patches, &mut y);
        }
        2 => {
            im2col(&g, &img, &mut patches);
            gemm_auto(m, k, n, &w, &patches, &mut y);
        }
        3 => {
            im2col(&g, &img, &mut patches);
            gemm_blocked_bf16(m, k, n, &w, &patches, &mut y);
        }
        4 => gemm_prepacked(
            m,
            k,
            n,
            &ap,
            PanelB::Patches {
                geom: &g,
                img: &img,
            },
            &mut y,
            false,
        ),
        _ => gemm_prepacked_as::<Bf16>(
            m,
            k,
            n,
            &ap16,
            PanelB::Patches {
                geom: &g,
                img: &img,
            },
            &mut y,
            false,
        ),
    };
    let best = time_variants_interleaved(6, reps, &mut run);
    let gf = |b: f64| flops as f64 / b / 1e9;
    let (naive_gflops, blocked_gflops, auto_gflops, bf16_blocked_gflops) =
        (gf(best[0]), gf(best[1]), gf(best[2]), gf(best[3]));
    let (fused_gflops, bf16_fused_gflops) = (gf(best[4]), gf(best[5]));

    KernelBenchRow {
        label: label.to_string(),
        m,
        k,
        n,
        reps,
        naive_gflops,
        blocked_gflops,
        auto_gflops,
        bf16_blocked_gflops,
        fused_gflops: Some(fused_gflops),
        bf16_fused_gflops: Some(bf16_fused_gflops),
        calibration,
    }
}

/// Times `n_variants` alternatives round-robin inside one rep loop and
/// returns the best (minimum) wall time per variant. Rep 0 is the
/// untimed warmup round. Interleaving — rather than timing each variant
/// in its own best-of block — keeps inter-variant comparisons inside a
/// shared scheduling window, which is what makes ratio gates between
/// them noise-robust on loaded hosts.
fn time_variants_interleaved(
    n_variants: usize,
    reps: usize,
    run: &mut dyn FnMut(usize),
) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; n_variants];
    for rep in 0..reps + 1 {
        for (v, b) in best.iter_mut().enumerate() {
            let t0 = Instant::now();
            run(v);
            let dt = t0.elapsed().as_secs_f64().max(1e-9);
            if rep > 0 {
                *b = b.min(dt);
            }
        }
    }
    best
}

/// A pure-GEMM row (e.g. the classifier): naive vs blocked only.
fn gemm_row(
    label: &str,
    rng: &mut Rng,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
) -> KernelBenchRow {
    let flops = 2 * (m * k * n) as u64;
    let mut a = vec![0.0f32; m * k];
    rng.fill_uniform(&mut a, -1.0, 1.0);
    let mut b = vec![0.0f32; k * n];
    rng.fill_uniform(&mut b, -1.0, 1.0);
    let mut c = vec![0.0f32; m * n];
    let mut run = |v: usize| match v {
        0 => gemm_slice(m, k, n, &a, &b, &mut c),
        1 => gemm_blocked(m, k, n, &a, &b, &mut c),
        2 => gemm_auto(m, k, n, &a, &b, &mut c),
        _ => gemm_blocked_bf16(m, k, n, &a, &b, &mut c),
    };
    let best = time_variants_interleaved(4, reps, &mut run);
    let gf = |b: f64| flops as f64 / b / 1e9;
    let (naive_gflops, blocked_gflops, auto_gflops, bf16_blocked_gflops) =
        (gf(best[0]), gf(best[1]), gf(best[2]), gf(best[3]));
    KernelBenchRow {
        label: label.to_string(),
        m,
        k,
        n,
        reps,
        naive_gflops,
        blocked_gflops,
        auto_gflops,
        bf16_blocked_gflops,
        fused_gflops: None,
        bf16_fused_gflops: None,
        calibration: false,
    }
}

/// The complete pack work of the calibration GEMM in one precision: the
/// tile-major A pack (`m×k`) plus every `KC×NC` B panel (`k×n`), packed
/// into reused panel buffers exactly as `gemm_prepacked_as` does.
fn pack_pass<E: ets_tensor::ops::gemm_blocked::PackElem>(
    m: usize,
    k: usize,
    n: usize,
    w: &[f32],
    b: &[f32],
    ap: &mut [E],
    bp: &mut [E],
) {
    pack_a_into_as::<E>(PanelA::RowMajor(w), m, k, ap);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            pack_b_panel(PanelB::RowMajor(b), k, n, pc, kc, jc, nc, bp);
        }
    }
}

/// Measures the calibration GEMM's full panel-pack throughput (A pack +
/// all B panels, `m·k + k·n` elements) in f32 vs bf16. The bf16 pass
/// narrows every element (RNE) but writes half the bytes, and B panels —
/// the bulk of the volume — go through the contiguous `pack_from_f32`
/// fast path. Best-of-`reps` timing, so scheduler noise cannot flip the
/// regression gate.
pub fn pack_probe(smoke: bool) -> PackProbe {
    let (m, k, n) = CALIBRATION_MKN;
    let elems = m * k + k * n;
    let reps = if smoke { 6 } else { 24 };
    let mut rng = Rng::new(97);
    let mut w = vec![0.0f32; m * k];
    rng.fill_uniform(&mut w, -0.5, 0.5);
    let mut b = vec![0.0f32; k * n];
    rng.fill_uniform(&mut b, -1.0, 1.0);
    let panel = KC * NC;
    let mut ap32 = vec![0.0f32; packed_a_len(m, k)];
    let mut bp32 = vec![0.0f32; panel];
    let mut ap16 = vec![Bf16::from_f32(0.0); packed_a_len(m, k)];
    let mut bp16 = vec![Bf16::from_f32(0.0); panel];

    let mut run = |v: usize| match v {
        0 => pack_pass::<f32>(m, k, n, &w, &b, &mut ap32, &mut bp32),
        _ => pack_pass::<Bf16>(m, k, n, &w, &b, &mut ap16, &mut bp16),
    };
    let best = time_variants_interleaved(2, reps, &mut run);
    let f32_melems_per_s = elems as f64 / best[0] / 1e6;
    let bf16_melems_per_s = elems as f64 / best[1] / 1e6;
    PackProbe {
        m,
        k,
        elems,
        reps,
        f32_melems_per_s,
        bf16_melems_per_s,
    }
}

/// Measures every row. `smoke` shrinks the non-calibration spatial sizes
/// and rep counts so CI finishes in seconds; the calibration shape is
/// identical in both modes (the regression gate must compare like with
/// like across runs).
pub fn kernel_rows(smoke: bool) -> Vec<KernelBenchRow> {
    let mut rng = Rng::new(42);
    let reps = if smoke { 2 } else { 8 };
    let px = |full: usize, small: usize| if smoke { small } else { full };
    vec![
        // Stem: 3×3 stride-2 on RGB.
        conv_row(
            "b0_stem_3x3_s2",
            &mut rng,
            3,
            px(224, 56),
            32,
            3,
            2,
            1,
            reps,
            false,
        ),
        // MBConv1 expand-style 1×1 at 56 px.
        conv_row(
            "b0_mb_expand_1x1_56px",
            &mut rng,
            16,
            px(56, 28),
            96,
            1,
            1,
            0,
            reps,
            false,
        ),
        // Calibration: B0 stage-5-sized 3×3 (m=256, k=1152, n=3136).
        conv_row(
            CALIBRATION_LABEL,
            &mut rng,
            128,
            56,
            256,
            3,
            1,
            1,
            reps,
            true,
        ),
        // Head 1×1: 320 → 1280 at 7 px.
        conv_row(
            "b0_head_1x1_7px",
            &mut rng,
            320,
            7,
            1280,
            1,
            1,
            0,
            reps,
            false,
        ),
        // Classifier GEMM: batch × 1280 → 1000.
        gemm_row("b0_fc_batch64", &mut rng, px(64, 16), 1280, 1000, reps),
    ]
}

/// One steady-state training step of a blocked-dispatch conv layer:
/// forward + full backward on a batch of 8, in f32 and again under the
/// bf16 precision so both scratch families (f32 panels, half-width bf16
/// panels, quantize buffers) reach steady state.
fn steady_step(x: &Tensor, w: &Tensor) -> f32 {
    let y = conv2d_forward(x, w, 1, 1);
    let (dx, dw) = conv2d_backward(x, w, &y, 1, 1);
    let yq = conv2d_forward_p(x, w, 1, 1, GemmPrecision::Bf16);
    let (dxq, dwq) = conv2d_backward_p(x, w, &yq, 1, 1, GemmPrecision::Bf16);
    // Touch outputs so nothing is optimized away.
    dx.data()[0] + dw.data()[0] + y.data()[0] + dxq.data()[0] + dwq.data()[0] + yq.data()[0]
}

/// Runs the steady-state probe: after `warmup` steps every thread's
/// scratch pool holds a buffer for every size class the layer needs, so
/// the measured steps must not hit the allocator at all.
pub fn steady_state_probe(smoke: bool) -> SteadyState {
    let mut rng = Rng::new(7);
    let mut x = Tensor::zeros([8, 16, 24, 24]);
    rng.fill_uniform(x.data_mut(), -1.0, 1.0);
    let mut w = Tensor::zeros([32, 16, 3, 3]);
    rng.fill_uniform(w.data_mut(), -0.5, 0.5);

    let warmup_steps = 5;
    let steps = if smoke { 4 } else { 20 };
    let mut sink = 0.0f32;
    for _ in 0..warmup_steps {
        sink += steady_step(&x, &w);
    }
    let reallocs_before = scratch_reallocs();
    let blocked_before = dispatch_blocked_calls();
    let naive_before = dispatch_naive_calls();
    let (bf16_blocked_before, bf16_naive_before) = dispatch_calls(GemmPrecision::Bf16);
    let t0 = Instant::now();
    for _ in 0..steps {
        sink += steady_step(&x, &w);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(
        sink.is_finite(),
        "steady-state probe produced non-finite values"
    );
    let (bf16_blocked, bf16_naive) = dispatch_calls(GemmPrecision::Bf16);
    SteadyState {
        warmup_steps,
        steps,
        step_ms: 1e3 * elapsed / steps as f64,
        scratch_reallocs_delta: scratch_reallocs() - reallocs_before,
        dispatch_blocked: dispatch_blocked_calls() - blocked_before,
        dispatch_naive: dispatch_naive_calls() - naive_before,
        dispatch_blocked_bf16: bf16_blocked - bf16_blocked_before,
        dispatch_naive_bf16: bf16_naive - bf16_naive_before,
    }
}

/// Renders `BENCH_kernels.json` (always parseable; no serde_json).
pub fn kernels_json(
    rows: &[KernelBenchRow],
    ss: &SteadyState,
    pack: &PackProbe,
    par: &ParallelProbe,
    abft: &AbftProbe,
    sp: &SimdProbe,
    smoke: bool,
) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object()
        .field_str("schema", "bench_kernels_v5")
        .field_str("mode", if smoke { "smoke" } else { "full" })
        .key("rows")
        .begin_array();
    for r in rows {
        w.begin_object()
            .field_str("label", &r.label)
            .field_u64("m", r.m as u64)
            .field_u64("k", r.k as u64)
            .field_u64("n", r.n as u64)
            .field_u64("reps", r.reps as u64)
            .field_f64("naive_gflops", r.naive_gflops)
            .field_f64("blocked_gflops", r.blocked_gflops)
            .field_f64("auto_gflops", r.auto_gflops)
            .field_f64("bf16_blocked_gflops", r.bf16_blocked_gflops);
        match r.fused_gflops {
            Some(f) => w.field_f64("fused_gflops", f),
            None => w.key("fused_gflops").null_value(),
        };
        match r.bf16_fused_gflops {
            Some(f) => w.field_f64("bf16_fused_gflops", f),
            None => w.key("bf16_fused_gflops").null_value(),
        };
        w.field_f64("speedup_blocked", r.speedup_blocked())
            .field_f64("speedup_auto", r.speedup_auto())
            .field_bool("calibration", r.calibration)
            .end_object();
    }
    w.end_array()
        .key("pack")
        .begin_object()
        .field_u64("m", pack.m as u64)
        .field_u64("k", pack.k as u64)
        .field_u64("elems", pack.elems as u64)
        .field_u64("reps", pack.reps as u64)
        .field_f64("f32_melems_per_s", pack.f32_melems_per_s)
        .field_f64("bf16_melems_per_s", pack.bf16_melems_per_s)
        .end_object()
        .key("parallel")
        .begin_object()
        .field_u64("workers", par.workers as u64)
        .field_u64("host_cores", par.host_cores as u64)
        .field_u64("reps", par.reps as u64)
        .field_f64("seq_gflops", par.seq_gflops)
        .field_f64("par_gflops", par.par_gflops)
        .field_f64("speedup", par.speedup())
        .field_f64("best_paired_ratio", par.best_paired_ratio)
        .field_u64("helper_tiles", par.par_helper_tiles)
        .field_bool("bitwise_equal", par.bitwise_equal)
        .field_bool("gate_enforced", par.gate_enforced)
        .field_str("gate", par.gate());
    w.key("worker_realloc_deltas").begin_array();
    for &d in &par.worker_realloc_deltas {
        w.u64_value(d);
    }
    w.end_array()
        .end_object()
        .key("abft")
        .begin_object()
        .field_u64("reps", abft.reps as u64)
        .field_f64("plain_gflops", abft.plain_gflops)
        .field_f64("verify_gflops", abft.verify_gflops)
        .field_f64("relative_throughput", abft.relative_throughput())
        .field_bool("bitwise_equal", abft.bitwise_equal)
        .field_u64("tiles_verified", abft.tiles_verified)
        .field_u64("false_positives", abft.false_positives)
        .end_object()
        .key("simd")
        .begin_object()
        .field_str("active", &sp.active)
        .field_str("detected", &sp.detected)
        .field_u64("reps", sp.reps as u64)
        .key("lanes")
        .begin_array();
    for lane in &sp.lanes {
        w.begin_object()
            .field_str("path", &lane.path)
            .field_f64("f32_gflops", lane.f32_gflops)
            .field_f64("bf16_gflops", lane.bf16_gflops)
            .field_bool("bitwise_equal_scalar", lane.bitwise_equal_scalar)
            .end_object();
    }
    w.end_array()
        .end_object()
        .key("steady_state")
        .begin_object()
        .field_u64("warmup_steps", ss.warmup_steps as u64)
        .field_u64("steps", ss.steps as u64)
        .field_f64("step_ms", ss.step_ms)
        .field_u64("scratch_reallocs_delta", ss.scratch_reallocs_delta)
        .field_u64("dispatch_blocked", ss.dispatch_blocked)
        .field_u64("dispatch_naive", ss.dispatch_naive)
        .field_u64("dispatch_blocked_bf16", ss.dispatch_blocked_bf16)
        .field_u64("dispatch_naive_bf16", ss.dispatch_naive_bf16)
        .end_object()
        .end_object();
    w.finish()
}

/// In-process schema validation of a `BENCH_kernels.json` document.
/// CI runs this before uploading, so a malformed artifact is a failure,
/// not a silent gap in the perf trajectory.
pub fn validate_kernels_json(doc: &str) -> Result<(), String> {
    let v = parse_json(doc)?;
    if v.get("schema").and_then(Value::as_str) != Some("bench_kernels_v5") {
        return Err("schema must be bench_kernels_v5".into());
    }
    match v.get("mode").and_then(Value::as_str) {
        Some("smoke") | Some("full") => {}
        other => return Err(format!("mode must be smoke|full, got {other:?}")),
    }
    let rows = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("rows must be an array")?;
    if rows.is_empty() {
        return Err("rows must be non-empty".into());
    }
    let mut calibration_rows = 0;
    for (i, r) in rows.iter().enumerate() {
        for key in [
            "m",
            "k",
            "n",
            "reps",
            "naive_gflops",
            "blocked_gflops",
            "auto_gflops",
            "bf16_blocked_gflops",
            "speedup_blocked",
            "speedup_auto",
        ] {
            let num = r.get(key).and_then(Value::as_f64);
            match num {
                Some(x) if x.is_finite() && x >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "row {i}: {key} must be a finite non-negative number"
                    ))
                }
            }
        }
        if r.get("label").and_then(Value::as_str).is_none() {
            return Err(format!("row {i}: label must be a string"));
        }
        if matches!(r.get("calibration"), Some(Value::Bool(true))) {
            calibration_rows += 1;
            let (m, k, n) = CALIBRATION_MKN;
            for (key, want) in [("m", m), ("k", k), ("n", n)] {
                if r.get(key).and_then(Value::as_f64) != Some(want as f64) {
                    return Err(format!("calibration row: {key} must be {want}"));
                }
            }
        }
    }
    if calibration_rows != 1 {
        return Err(format!(
            "expected exactly 1 calibration row, found {calibration_rows}"
        ));
    }
    let pack = v.get("pack").ok_or("pack probe missing")?;
    for key in ["elems", "reps", "f32_melems_per_s", "bf16_melems_per_s"] {
        match pack.get(key).and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x >= 0.0 => {}
            _ => return Err(format!("pack.{key} must be a finite non-negative number")),
        }
    }
    let par = v.get("parallel").ok_or("parallel probe missing")?;
    for key in [
        "workers",
        "host_cores",
        "seq_gflops",
        "par_gflops",
        "speedup",
        "best_paired_ratio",
        "helper_tiles",
    ] {
        match par.get(key).and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x >= 0.0 => {}
            _ => {
                return Err(format!(
                    "parallel.{key} must be a finite non-negative number"
                ))
            }
        }
    }
    for key in ["bitwise_equal", "gate_enforced"] {
        if !matches!(par.get(key), Some(Value::Bool(_))) {
            return Err(format!("parallel.{key} must be a boolean"));
        }
    }
    match par.get("gate").and_then(Value::as_str) {
        Some("enforced") | Some("parity-only") => {}
        other => {
            return Err(format!(
                "parallel.gate must be \"enforced\" or \"parity-only\", got {other:?}"
            ))
        }
    }
    if par
        .get("worker_realloc_deltas")
        .and_then(Value::as_arr)
        .is_none()
    {
        return Err("parallel.worker_realloc_deltas must be an array".into());
    }
    let abft = v.get("abft").ok_or("abft probe missing")?;
    for key in [
        "reps",
        "plain_gflops",
        "verify_gflops",
        "relative_throughput",
        "tiles_verified",
        "false_positives",
    ] {
        match abft.get(key).and_then(Value::as_f64) {
            Some(x) if x.is_finite() && x >= 0.0 => {}
            _ => return Err(format!("abft.{key} must be a finite non-negative number")),
        }
    }
    if !matches!(abft.get("bitwise_equal"), Some(Value::Bool(_))) {
        return Err("abft.bitwise_equal must be a boolean".into());
    }
    let sp = v.get("simd").ok_or("simd probe missing")?;
    let active = sp
        .get("active")
        .and_then(Value::as_str)
        .ok_or("simd.active must be a string")?;
    if sp.get("detected").and_then(Value::as_str).is_none() {
        return Err("simd.detected must be a string".into());
    }
    let lanes = sp
        .get("lanes")
        .and_then(Value::as_arr)
        .ok_or("simd.lanes must be an array")?;
    if lanes.is_empty() {
        return Err("simd.lanes must be non-empty".into());
    }
    let mut lane_names = Vec::new();
    for (i, lane) in lanes.iter().enumerate() {
        match lane.get("path").and_then(Value::as_str) {
            Some(p @ ("scalar" | "sse2" | "avx2")) => lane_names.push(p.to_string()),
            other => return Err(format!("simd.lanes[{i}].path unrecognized: {other:?}")),
        }
        for key in ["f32_gflops", "bf16_gflops"] {
            match lane.get(key).and_then(Value::as_f64) {
                Some(x) if x.is_finite() && x >= 0.0 => {}
                _ => {
                    return Err(format!(
                        "simd.lanes[{i}].{key} must be a finite non-negative number"
                    ))
                }
            }
        }
        if !matches!(lane.get("bitwise_equal_scalar"), Some(Value::Bool(_))) {
            return Err(format!(
                "simd.lanes[{i}].bitwise_equal_scalar must be a boolean"
            ));
        }
    }
    if !lane_names.iter().any(|p| p == "scalar") {
        return Err("simd.lanes must include the scalar lane".into());
    }
    if !lane_names.iter().any(|p| p == active) {
        return Err(format!(
            "simd.active {active:?} has no matching row in simd.lanes"
        ));
    }
    let ss = v.get("steady_state").ok_or("steady_state missing")?;
    for key in [
        "warmup_steps",
        "steps",
        "step_ms",
        "scratch_reallocs_delta",
        "dispatch_blocked_bf16",
        "dispatch_naive_bf16",
    ] {
        if ss.get(key).and_then(Value::as_f64).is_none() {
            return Err(format!("steady_state.{key} must be a number"));
        }
    }
    Ok(())
}

/// Per-row dispatch-vs-naive noise allowance: the two timings are
/// separate wall-clock samples of the *same* kernel whenever dispatch
/// picks naive, so a few percent of scheduler jitter must not fire the
/// gate.
const AUTO_NOISE_FLOOR: f64 = 0.90;

/// The CI regression gate:
/// 1. the blocked kernel must not fall below naive at the calibration
///    shape;
/// 2. the *dispatched* path must not fall below naive at any committed
///    shape (modulo timing noise) — this is what the small-k guard
///    protects: a shape the blocked kernel loses must route to naive.
///    In `smoke` mode this applies to the calibration row only: the
///    other rows run at shrunken, sub-tuning-target shapes there;
/// 3. the bf16 pack must not be slower than the f32 pack (it writes half
///    the bytes; losing means the narrowing went quadratic somewhere);
/// 4. the steady state must be allocation-free — in both precisions;
/// 5. the parallel macro-kernel must be **bitwise equal** to sequential
///    and keep every worker's scratch arena allocation-free — always —
///    and reach ≥ [`PARALLEL_SPEEDUP_FLOOR`]× sequential at the
///    calibration shape when the host has ≥ 2 cores (a 1-core container
///    can time-slice but not speed up, so only the correctness half of
///    the claim is checkable there).
pub fn check_kernel_regression(
    rows: &[KernelBenchRow],
    ss: &SteadyState,
    pack: &PackProbe,
    par: &ParallelProbe,
    abft: &AbftProbe,
    sp: &SimdProbe,
    smoke: bool,
) -> Result<(), String> {
    for lane in &sp.lanes {
        if !lane.bitwise_equal_scalar {
            return Err(format!(
                "SIMD lane path {:?} diverged bitwise from the scalar micro-kernel at the \
                 calibration shape — lane width must be a pure throughput knob",
                lane.path
            ));
        }
    }
    let scalar_lane = sp.lane("scalar").ok_or("simd probe missing scalar lane")?;
    let active_lane = sp
        .lane(&sp.active)
        .ok_or_else(|| format!("simd probe missing active lane {:?}", sp.active))?;
    if active_lane.f32_gflops < scalar_lane.f32_gflops * AUTO_NOISE_FLOOR {
        return Err(format!(
            "active SIMD lane {:?} slower than scalar at the calibration shape (f32): \
             {:.2} < {:.2} GFLOP/s — the vectorized kernel must never lose to the \
             kernel it replaced",
            sp.active, active_lane.f32_gflops, scalar_lane.f32_gflops
        ));
    }
    if active_lane.bf16_gflops < scalar_lane.bf16_gflops * AUTO_NOISE_FLOOR {
        return Err(format!(
            "active SIMD lane {:?} slower than scalar at the calibration shape (bf16): \
             {:.2} < {:.2} GFLOP/s",
            sp.active, active_lane.bf16_gflops, scalar_lane.bf16_gflops
        ));
    }
    if !abft.bitwise_equal {
        return Err(
            "ABFT verify mode perturbed the product at the calibration shape; \
             verification must be bitwise neutral"
                .into(),
        );
    }
    if abft.false_positives != 0 {
        return Err(format!(
            "ABFT verify reported {} corruption(s) on clean operands",
            abft.false_positives
        ));
    }
    if abft.tiles_verified == 0 {
        return Err(
            "ABFT probe never reached the tile verify path — cost figure is vacuous".into(),
        );
    }
    if !par.bitwise_equal {
        return Err(format!(
            "parallel GEMM ({} workers) diverged bitwise from sequential at the calibration shape",
            par.workers
        ));
    }
    if par.worker_realloc_deltas.iter().any(|&d| d != 0) {
        return Err(format!(
            "parallel GEMM workers hit the allocator after warmup: {:?}; the per-worker \
             arena contract requires all zeros",
            par.worker_realloc_deltas
        ));
    }
    if par.gate_enforced {
        if par.speedup() < PARALLEL_SPEEDUP_FLOOR {
            return Err(format!(
                "parallel GEMM speedup {:.2}x below the {PARALLEL_SPEEDUP_FLOOR}x floor at the \
                 calibration shape ({} workers on {} cores): {:.2} vs {:.2} GFLOP/s",
                par.speedup(),
                par.workers,
                par.host_cores,
                par.par_gflops,
                par.seq_gflops
            ));
        }
        if par.par_helper_tiles == 0 {
            return Err(format!(
                "parallel probe on a {}-core host never dispatched a tile to a helper \
                 worker — the speedup figure is vacuous",
                par.host_cores
            ));
        }
    } else {
        // 1-core host: a real speedup is impossible, so the gate checks
        // that the worker clamp *refused* the tile grid. The helper-tile
        // count is the deterministic half (any fan-out is a clamp bug);
        // the paired timing ratio corroborates that the refused path
        // actually runs at sequential speed.
        if par.par_helper_tiles != 0 {
            return Err(format!(
                "parity-only gate: on a {}-core host the worker clamp must route dispatch \
                 to the sequential path, but helper workers executed {} tile(s)",
                par.host_cores, par.par_helper_tiles
            ));
        }
        if par.best_paired_ratio < PARALLEL_PARITY_FLOOR {
            return Err(format!(
                "parity-only gate: on a {}-core host the parallel dispatch must stay at \
                 sequential throughput, but the best matched-window ratio was {:.2}x \
                 (< {PARALLEL_PARITY_FLOOR})",
                par.host_cores, par.best_paired_ratio
            ));
        }
    }
    let cal = rows
        .iter()
        .find(|r| r.calibration)
        .ok_or("no calibration row")?;
    if cal.blocked_gflops < cal.naive_gflops {
        return Err(format!(
            "blocked GEMM regressed below naive at calibration shape: {:.2} < {:.2} GFLOP/s",
            cal.blocked_gflops, cal.naive_gflops
        ));
    }
    for r in rows {
        // The dispatch predicate's thresholds are tuned against the
        // full-mode shapes; smoke mode shrinks the non-calibration rows
        // to a few MFLOP, where (a) the predicate makes no claim and
        // (b) a single sample flaps by more than the noise floor. The
        // calibration row is identical in both modes and stays gated.
        if smoke && !r.calibration {
            continue;
        }
        if r.auto_gflops < r.naive_gflops * AUTO_NOISE_FLOOR {
            return Err(format!(
                "dispatched GEMM slower than naive at {} ({}x{}x{}): {:.2} < {:.2} GFLOP/s — \
                 the shape predicate routed a losing kernel",
                r.label, r.m, r.k, r.n, r.auto_gflops, r.naive_gflops
            ));
        }
    }
    if pack.bf16_melems_per_s < pack.f32_melems_per_s * AUTO_NOISE_FLOOR {
        return Err(format!(
            "bf16 panel pack slower than f32 at calibration shape: {:.1} < {:.1} Melem/s",
            pack.bf16_melems_per_s, pack.f32_melems_per_s
        ));
    }
    if ss.scratch_reallocs_delta != 0 {
        return Err(format!(
            "steady-state step hit the allocator {} time(s); the arena contract requires 0",
            ss.scratch_reallocs_delta
        ));
    }
    Ok(())
}

/// Strict gate over a **committed** `BENCH_kernels.json` document — the
/// numbers the repository claims, not a fresh (noisy) measurement.
/// Because these values were the best-of measurements someone chose to
/// commit, no noise allowance applies: bf16 pack must be ≥ f32 pack
/// outright, and the parallel probe must pass whichever gate
/// (`"enforced"` / `"parity-only"`) it recorded. PR 6..8 shipped an
/// artifact with `pack.bf16 < pack.f32` and a 0.93× parallel "speedup"
/// precisely because nothing re-read the committed file; this is that
/// missing check.
pub fn check_committed_artifact(doc: &str) -> Result<(), String> {
    validate_kernels_json(doc)?;
    let v = parse_json(doc)?;
    let pack = v.get("pack").ok_or("pack probe missing")?;
    let pack_f32 = pack
        .get("f32_melems_per_s")
        .and_then(Value::as_f64)
        .ok_or("pack.f32_melems_per_s missing")?;
    let pack_bf16 = pack
        .get("bf16_melems_per_s")
        .and_then(Value::as_f64)
        .ok_or("pack.bf16_melems_per_s missing")?;
    if pack_bf16 < pack_f32 {
        return Err(format!(
            "committed artifact records bf16 pack {pack_bf16:.1} < f32 pack {pack_f32:.1} \
             Melem/s — the bf16 pack writes half the bytes and must not lose; \
             regenerate the artifact from a fixed kernel"
        ));
    }
    let par = v.get("parallel").ok_or("parallel probe missing")?;
    let speedup = par
        .get("speedup")
        .and_then(Value::as_f64)
        .ok_or("parallel.speedup missing")?;
    let paired = par
        .get("best_paired_ratio")
        .and_then(Value::as_f64)
        .ok_or("parallel.best_paired_ratio missing")?;
    let helper_tiles = par
        .get("helper_tiles")
        .and_then(Value::as_f64)
        .ok_or("parallel.helper_tiles missing")?;
    let gate = par.get("gate").and_then(Value::as_str).unwrap_or("");
    match gate {
        "enforced" => {
            if speedup < PARALLEL_SPEEDUP_FLOOR {
                return Err(format!(
                    "committed artifact records parallel speedup {speedup:.2}x under the \
                     \"enforced\" gate (floor {PARALLEL_SPEEDUP_FLOOR}x)"
                ));
            }
            if helper_tiles == 0.0 {
                return Err(
                    "committed artifact records an enforced parallel gate with zero helper \
                     tiles — the speedup never exercised the tile grid"
                        .into(),
                );
            }
        }
        "parity-only" => {
            if helper_tiles != 0.0 {
                return Err(format!(
                    "committed artifact records {helper_tiles} helper tile(s) under the \
                     \"parity-only\" gate — the 1-core clamp did not route sequentially"
                ));
            }
            if paired < PARALLEL_PARITY_FLOOR {
                return Err(format!(
                    "committed artifact records best matched-window ratio {paired:.2}x under \
                     the \"parity-only\" gate (floor {PARALLEL_PARITY_FLOOR}x)"
                ));
            }
        }
        other => return Err(format!("parallel.gate unrecognized: {other:?}")),
    }
    if par.get("bitwise_equal") != Some(&Value::Bool(true)) {
        return Err("committed artifact records parallel bitwise_equal != true".into());
    }
    if let Some(deltas) = par.get("worker_realloc_deltas").and_then(Value::as_arr) {
        if deltas.iter().any(|d| d.as_f64() != Some(0.0)) {
            return Err("committed artifact records nonzero worker realloc deltas".into());
        }
    }
    let ss = v.get("steady_state").ok_or("steady_state missing")?;
    if ss.get("scratch_reallocs_delta").and_then(Value::as_f64) != Some(0.0) {
        return Err("committed artifact records steady-state allocator hits".into());
    }
    let sp = v.get("simd").ok_or("simd probe missing")?;
    let active = sp.get("active").and_then(Value::as_str).unwrap_or("");
    let lanes = sp
        .get("lanes")
        .and_then(Value::as_arr)
        .ok_or("simd.lanes must be an array")?;
    let mut scalar_f32 = None;
    for lane in lanes {
        if lane.get("bitwise_equal_scalar") != Some(&Value::Bool(true)) {
            return Err(format!(
                "committed artifact records SIMD lane {:?} with bitwise_equal_scalar != true",
                lane.get("path").and_then(Value::as_str).unwrap_or("?")
            ));
        }
        if lane.get("path").and_then(Value::as_str) == Some("scalar") {
            scalar_f32 = lane.get("f32_gflops").and_then(Value::as_f64);
        }
    }
    let scalar_f32 = scalar_f32.ok_or("committed artifact has no scalar SIMD lane row")?;
    let rows = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("rows must be an array")?;
    for r in rows {
        if matches!(r.get("calibration"), Some(Value::Bool(true))) {
            let naive = r.get("naive_gflops").and_then(Value::as_f64).unwrap_or(0.0);
            let blocked = r
                .get("blocked_gflops")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if blocked < naive {
                return Err(format!(
                    "committed artifact records blocked {blocked:.2} < naive {naive:.2} \
                     GFLOP/s at the calibration shape"
                ));
            }
            // The raised calibration floor of the SIMD layer: an AVX2
            // host's committed blocked figure must beat the scalar lane
            // it replaced by ≥ SIMD_SPEEDUP_FLOOR — otherwise the
            // vectorized micro-kernel shipped without its win.
            if active == "avx2" && blocked < SIMD_SPEEDUP_FLOOR * scalar_f32 {
                return Err(format!(
                    "committed artifact records calibration blocked {blocked:.2} GFLOP/s \
                     under an active avx2 lane, below {SIMD_SPEEDUP_FLOOR}x the scalar \
                     lane's {scalar_f32:.2} GFLOP/s"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, naive: f64, blocked: f64, calibration: bool) -> KernelBenchRow {
        let (m, k, n) = if calibration {
            CALIBRATION_MKN
        } else {
            (8, 8, 8)
        };
        KernelBenchRow {
            label: label.into(),
            m,
            k,
            n,
            reps: 1,
            naive_gflops: naive,
            blocked_gflops: blocked,
            auto_gflops: naive.max(blocked),
            bf16_blocked_gflops: blocked,
            fused_gflops: None,
            bf16_fused_gflops: None,
            calibration,
        }
    }

    fn probe() -> PackProbe {
        PackProbe {
            m: CALIBRATION_MKN.0,
            k: CALIBRATION_MKN.1,
            elems: CALIBRATION_MKN.0 * CALIBRATION_MKN.1,
            reps: 2,
            f32_melems_per_s: 500.0,
            bf16_melems_per_s: 600.0,
        }
    }

    fn abft_ok() -> AbftProbe {
        AbftProbe {
            reps: 2,
            plain_gflops: 10.0,
            verify_gflops: 9.0,
            bitwise_equal: true,
            tiles_verified: 64,
            false_positives: 0,
        }
    }

    fn simd_ok() -> SimdProbe {
        SimdProbe {
            active: "avx2".into(),
            detected: "avx2".into(),
            reps: 2,
            lanes: vec![
                SimdLaneRow {
                    path: "scalar".into(),
                    f32_gflops: 10.0,
                    bf16_gflops: 9.0,
                    bitwise_equal_scalar: true,
                },
                SimdLaneRow {
                    path: "sse2".into(),
                    f32_gflops: 15.0,
                    bf16_gflops: 13.0,
                    bitwise_equal_scalar: true,
                },
                SimdLaneRow {
                    path: "avx2".into(),
                    f32_gflops: 20.0,
                    bf16_gflops: 17.0,
                    bitwise_equal_scalar: true,
                },
            ],
        }
    }

    fn par_probe() -> ParallelProbe {
        ParallelProbe {
            workers: PARALLEL_PROBE_WORKERS,
            host_cores: 8,
            reps: 2,
            seq_gflops: 10.0,
            par_gflops: 25.0,
            bitwise_equal: true,
            worker_realloc_deltas: vec![0; PARALLEL_PROBE_WORKERS],
            gate_enforced: true,
            best_paired_ratio: 2.5,
            par_helper_tiles: 96,
        }
    }

    #[test]
    fn json_round_trips_and_validates() {
        let rows = vec![
            row("toy", 1.0, 2.0, false),
            KernelBenchRow {
                fused_gflops: Some(3.0),
                bf16_fused_gflops: Some(3.2),
                ..row(CALIBRATION_LABEL, 1.0, 2.5, true)
            },
        ];
        let ss = SteadyState {
            warmup_steps: 5,
            steps: 3,
            step_ms: 1.25,
            scratch_reallocs_delta: 0,
            dispatch_blocked: 12,
            dispatch_naive: 4,
            dispatch_blocked_bf16: 6,
            dispatch_naive_bf16: 2,
        };
        let doc = kernels_json(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            true,
        );
        validate_kernels_json(&doc).expect("valid document");
        check_kernel_regression(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false,
        )
        .expect("no regression");
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_kernels_json("{}").is_err());
        assert!(validate_kernels_json("not json").is_err());
        // Missing calibration row.
        let rows = vec![row("toy", 1.0, 2.0, false)];
        let ss = SteadyState {
            warmup_steps: 1,
            steps: 1,
            step_ms: 1.0,
            scratch_reallocs_delta: 0,
            dispatch_blocked: 0,
            dispatch_naive: 1,
            dispatch_blocked_bf16: 0,
            dispatch_naive_bf16: 0,
        };
        let doc = kernels_json(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            true,
        );
        assert!(validate_kernels_json(&doc).is_err());
        // Older schema versions no longer validate.
        let rows2 = vec![row(CALIBRATION_LABEL, 1.0, 2.0, true)];
        let doc2 = kernels_json(
            &rows2,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            true,
        )
        .replace("bench_kernels_v5", "bench_kernels_v4");
        assert!(validate_kernels_json(&doc2).is_err());
    }

    #[test]
    fn regression_gate_fires() {
        // Blocked slower than naive at the calibration shape.
        let rows = vec![row(CALIBRATION_LABEL, 2.0, 1.0, true)];
        let ss = SteadyState {
            warmup_steps: 1,
            steps: 1,
            step_ms: 1.0,
            scratch_reallocs_delta: 0,
            dispatch_blocked: 1,
            dispatch_naive: 0,
            dispatch_blocked_bf16: 0,
            dispatch_naive_bf16: 0,
        };
        assert!(check_kernel_regression(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false
        )
        .is_err());
        let rows_ok = vec![KernelBenchRow {
            blocked_gflops: 4.0,
            auto_gflops: 4.0,
            ..rows[0].clone()
        }];
        assert!(check_kernel_regression(
            &rows_ok,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false
        )
        .is_ok());
        let ss_bad = SteadyState {
            scratch_reallocs_delta: 3,
            ..ss.clone()
        };
        assert!(check_kernel_regression(
            &rows_ok,
            &ss_bad,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false
        )
        .is_err());
    }

    #[test]
    fn simd_gates_fire() {
        let rows = vec![row(CALIBRATION_LABEL, 1.0, 2.0, true)];
        let ss = SteadyState {
            warmup_steps: 1,
            steps: 1,
            step_ms: 1.0,
            scratch_reallocs_delta: 0,
            dispatch_blocked: 1,
            dispatch_naive: 0,
            dispatch_blocked_bf16: 1,
            dispatch_naive_bf16: 0,
        };
        // Any lane diverging bitwise from scalar is a hard failure.
        let mut broken = simd_ok();
        broken.lanes[2].bitwise_equal_scalar = false;
        let err = check_kernel_regression(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &broken,
            false,
        )
        .unwrap_err();
        assert!(err.contains("diverged bitwise"), "{err}");
        // The active lane losing to scalar means dispatch picked a
        // regressing kernel.
        let mut slow = simd_ok();
        slow.lanes[2].f32_gflops = 5.0;
        let err =
            check_kernel_regression(&rows, &ss, &probe(), &par_probe(), &abft_ok(), &slow, false)
                .unwrap_err();
        assert!(err.contains("slower than scalar"), "{err}");
        // The validator rejects unknown lane names outright.
        let doc = kernels_json(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            true,
        )
        .replace("avx2", "neon");
        assert!(validate_kernels_json(&doc).is_err());
        // Committed-artifact floor: an active avx2 lane must record a
        // calibration blocked figure ≥ SIMD_SPEEDUP_FLOOR × the scalar
        // lane's f32 row (here 2.0 < 1.5 × 10.0).
        let weak = kernels_json(
            &rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false,
        );
        let err = check_committed_artifact(&weak).unwrap_err();
        assert!(err.contains("below 1.5x the scalar lane"), "{err}");
        let strong_rows = vec![KernelBenchRow {
            blocked_gflops: 20.0,
            auto_gflops: 20.0,
            ..rows[0].clone()
        }];
        let strong = kernels_json(
            &strong_rows,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false,
        );
        check_committed_artifact(&strong).expect("avx2 floor satisfied");
    }

    #[test]
    fn gate_catches_dispatch_and_pack_regressions() {
        let ss = SteadyState {
            warmup_steps: 1,
            steps: 1,
            step_ms: 1.0,
            scratch_reallocs_delta: 0,
            dispatch_blocked: 1,
            dispatch_naive: 1,
            dispatch_blocked_bf16: 1,
            dispatch_naive_bf16: 1,
        };
        // Dispatched path losing to naive at a non-calibration shape —
        // exactly the b0_mb_expand_1x1_56px failure mode the small-k
        // guard exists to prevent.
        let mut bad_auto = vec![
            row(CALIBRATION_LABEL, 1.0, 2.0, true),
            row("b0_mb_expand_1x1_56px", 10.0, 8.0, false),
        ];
        bad_auto[1].auto_gflops = 8.0; // routed blocked, which loses
        let err = check_kernel_regression(
            &bad_auto,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false,
        )
        .unwrap_err();
        assert!(err.contains("b0_mb_expand_1x1_56px"), "{err}");
        bad_auto[1].auto_gflops = 9.9; // routed naive: within noise floor
        assert!(check_kernel_regression(
            &bad_auto,
            &ss,
            &probe(),
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false
        )
        .is_ok());

        // bf16 pack slower than f32 pack.
        let slow_pack = PackProbe {
            f32_melems_per_s: 600.0,
            bf16_melems_per_s: 300.0,
            ..probe()
        };
        let rows = vec![row(CALIBRATION_LABEL, 1.0, 2.0, true)];
        let err = check_kernel_regression(
            &rows,
            &ss,
            &slow_pack,
            &par_probe(),
            &abft_ok(),
            &simd_ok(),
            false,
        )
        .unwrap_err();
        assert!(err.contains("bf16 panel pack"), "{err}");
    }
}
