//! Smoke tests for the bench harness: the table/figure row builders must
//! run, their JSON must parse, and the smoke path's `BENCH_step_time.json`
//! must agree with the Table 1 operating points.
//!
//! These are exactly the code paths the `table1`/`figure1`/`scaling` bins
//! and CI's artifact job execute — before this suite existed, nothing
//! exercised them and the `BENCH_*` perf trajectory stayed empty.

use ets_bench::kernels::{
    abft_probe, check_kernel_regression, kernel_rows, kernels_json, pack_probe, parallel_probe,
    simd_probe, steady_state_probe, validate_kernels_json, CALIBRATION_LABEL, CALIBRATION_MKN,
};
use ets_bench::{
    check_scaling_regression, figure1_json, figure1_points, paper_run_steps, run_smoke,
    scaling_backend_rows, scaling_json, scaling_tables, step_time_summaries, table1_json,
    table1_rows, SCALING_BACKEND_CORES, TABLE1_PAPER,
};
use ets_obs::{parse_json, validate_chrome_trace, validate_step_time_json, STEP_TIME_SCHEMA};

#[test]
fn table1_rows_emit_parseable_json_with_all_operating_points() {
    let rows = table1_rows();
    assert_eq!(rows.len(), TABLE1_PAPER.len());
    let v = parse_json(&table1_json(&rows)).expect("table1 JSON must parse");
    let arr = v.as_arr().expect("array of rows");
    assert_eq!(arr.len(), TABLE1_PAPER.len());
    for (row, (variant, cores, gbs, ..)) in arr.iter().zip(TABLE1_PAPER) {
        assert_eq!(row.get("model").unwrap().as_str().unwrap(), variant.name());
        assert_eq!(row.get("cores").unwrap().as_f64().unwrap() as usize, cores);
        assert_eq!(
            row.get("global_batch").unwrap().as_f64().unwrap() as usize,
            gbs
        );
        assert!(row.get("step_ms").unwrap().as_f64().unwrap() > 0.0);
        let ar = row.get("allreduce_pct").unwrap().as_f64().unwrap();
        assert!(
            ar > 0.0 && ar < 100.0,
            "all-reduce share {ar}% out of range"
        );
    }
}

#[test]
fn figure1_points_emit_parseable_json_including_headline_run() {
    let pts = figure1_points();
    // 4 slices per variant + B5's batch-65536 headline.
    assert_eq!(pts.len(), 9);
    let v = parse_json(&figure1_json(&pts)).expect("figure1 JSON must parse");
    let arr = v.as_arr().unwrap();
    assert_eq!(arr.len(), 9);
    let headline = arr
        .iter()
        .find(|p| p.get("global_batch").unwrap().as_f64().unwrap() as usize == 65536)
        .expect("batch-65536 headline run present");
    assert!(headline.get("minutes_to_peak").unwrap().as_f64().unwrap() > 0.0);
    assert!(headline.get("peak_top1").unwrap().as_f64().unwrap() > 0.8);
    // Every point records the concrete transport Auto resolved to — the
    // committed figure must name an executable backend, never "auto".
    for p in arr {
        let backend = p.get("backend").unwrap().as_str().unwrap();
        assert!(
            ["tree", "ring", "torus2d"].contains(&backend),
            "figure1 backend {backend:?} is not a concrete transport"
        );
    }
}

#[test]
fn scaling_tables_emit_parseable_json_for_both_variants() {
    let tables = scaling_tables(&[128, 256, 512, 1024]);
    let v = parse_json(&scaling_json(&tables)).expect("scaling JSON must parse");
    for name in ["EfficientNet-B2", "EfficientNet-B5"] {
        let t = v
            .get(name)
            .unwrap_or_else(|| panic!("variant {name} missing"));
        let pts = t.get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 4);
        let serial = t.get("amdahl_serial_fraction").unwrap().as_f64().unwrap();
        assert!(
            (0.0..1.0).contains(&serial),
            "serial fraction {serial} out of range"
        );
        // Parallel efficiency stays near 1 (the paper's "scales linearly").
        for p in pts {
            let eff = p.get("parallel_efficiency").unwrap().as_f64().unwrap();
            assert!(eff > 0.5 && eff <= 1.0 + 1e-9, "efficiency {eff}");
        }
    }
}

#[test]
fn step_time_summaries_match_table1_within_tolerance() {
    let rows = table1_rows();
    let runs = step_time_summaries();
    assert_eq!(runs.len(), rows.len());
    for (s, r) in runs.iter().zip(&rows) {
        assert_eq!(s.cores as usize, r.cores);
        assert_eq!(s.global_batch as usize, r.global_batch);
        assert_eq!(s.backend, "torus2d", "analytic rows price the 2-D torus");
        assert_eq!(s.steps, paper_run_steps(s.global_batch), "{}", s.label);
        assert!(
            s.overlap_pct > 0.0 && s.overlap_pct <= 100.0,
            "{}: the analytic overlap decomposition must be populated",
            s.label
        );
        assert!(
            (s.step_ms - r.step_ms).abs() < 1e-9,
            "{}: step_ms {} vs {}",
            s.label,
            s.step_ms,
            r.step_ms
        );
        assert!(
            (s.all_reduce_pct - r.allreduce_pct).abs() < 1e-9,
            "{}: AR% {} vs {}",
            s.label,
            s.all_reduce_pct,
            r.allreduce_pct
        );
        assert!(
            (s.images_per_sec - r.throughput_img_per_ms * 1e3).abs()
                < 1e-6 * s.images_per_sec.abs().max(1.0),
            "{}: im/s",
            s.label
        );
    }
}

/// The ISSUE-9 scaling study: per-backend rows at 1024/2048/4096 cores,
/// with the CI gate asserting the hierarchical backend's all-reduce share
/// grows strictly slower than the flat ring's — and that the gate actually
/// rejects the inverted ordering.
#[test]
fn scaling_backend_rows_pass_the_growth_gate_and_it_rejects_inversions() {
    let rows = scaling_backend_rows();
    assert_eq!(rows.len(), 2 * SCALING_BACKEND_CORES.len());
    for &cores in &SCALING_BACKEND_CORES {
        for backend in ["ring", "torus2d"] {
            let row = rows
                .iter()
                .find(|r| r.backend == backend && r.cores == cores as u64)
                .unwrap_or_else(|| panic!("missing row: {backend} @ {cores}"));
            assert_eq!(row.global_batch, cores as u64 * 32);
            assert_eq!(row.steps, paper_run_steps(row.global_batch));
            assert!(row.step_ms > 0.0);
            assert!(row.all_reduce_pct > 0.0 && row.all_reduce_pct < 100.0);
            assert!(
                row.label.contains(&format!("({backend})")),
                "label {:?} must name its backend",
                row.label
            );
        }
        // At equal scale the torus never exposes more all-reduce than the
        // flat ring (same bandwidth term, strictly fewer latency hops).
        let ring = rows
            .iter()
            .find(|r| r.backend == "ring" && r.cores == cores as u64)
            .unwrap();
        let torus = rows
            .iter()
            .find(|r| r.backend == "torus2d" && r.cores == cores as u64)
            .unwrap();
        assert!(
            torus.all_reduce_pct < ring.all_reduce_pct,
            "@{cores}: torus {}% !< ring {}%",
            torus.all_reduce_pct,
            ring.all_reduce_pct
        );
    }

    let (torus_growth, ring_growth) =
        check_scaling_regression(&rows).expect("healthy rows must pass the growth gate");
    assert!(torus_growth < ring_growth);

    // Swap the backend labels and the same numbers must now fail: the gate
    // compares growth ratios, not absolute shares.
    let mut inverted = rows.clone();
    for r in &mut inverted {
        r.backend = match r.backend.as_str() {
            "ring" => "torus2d".to_string(),
            _ => "ring".to_string(),
        };
    }
    assert!(
        check_scaling_regression(&inverted).is_err(),
        "gate must reject ring growing slower than torus"
    );

    // A missing row is a hard error, not a silent pass.
    let truncated: Vec<_> = rows
        .iter()
        .filter(|r| !(r.backend == "torus2d" && r.cores == 4096))
        .cloned()
        .collect();
    assert!(check_scaling_regression(&truncated)
        .unwrap_err()
        .contains("missing scaling row"));
}

#[test]
fn smoke_path_emits_valid_artifacts() {
    let art = run_smoke();

    // BENCH_step_time.json: the 8 operating points, the 6 per-backend
    // scaling rows (ring + torus2d at 1024/2048/4096 cores), and the
    // measured row, under the v2 schema tag.
    let n_runs = validate_step_time_json(&art.step_time_json).expect("BENCH_step_time.json schema");
    let v = parse_json(&art.step_time_json).expect("BENCH_step_time.json must parse");
    assert_eq!(v.get("schema").unwrap().as_str().unwrap(), STEP_TIME_SCHEMA);
    let runs = v.get("runs").unwrap().as_arr().unwrap();
    assert_eq!(runs.len(), n_runs);
    assert_eq!(
        runs.len(),
        TABLE1_PAPER.len() + 2 * SCALING_BACKEND_CORES.len() + 1
    );
    let rows = table1_rows();
    for (run, row) in runs.iter().zip(&rows) {
        let step_ms = run.get("step_ms").unwrap().as_f64().unwrap();
        let ar = run.get("all_reduce_pct").unwrap().as_f64().unwrap();
        assert!(
            (step_ms - row.step_ms).abs() < 1e-9,
            "step_ms {step_ms} vs {}",
            row.step_ms
        );
        assert!((ar - row.allreduce_pct).abs() < 1e-9);
    }
    let measured = runs.last().unwrap();
    assert!(measured.get("step_ms").unwrap().as_f64().unwrap() > 0.0);
    assert!(measured.get("steps").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        measured.get("backend").unwrap().as_str().unwrap(),
        "tree",
        "measured row carries the experiment's backend"
    );
    // The measured run uses the overlapped exchange: some bucket time must
    // be hidden behind backward, and the exposed share must come in
    // strictly below the serialized baseline (which exposes everything).
    assert!(
        measured.get("overlap_pct").unwrap().as_f64().unwrap() > 0.0,
        "measured run must hide some all-reduce time behind backward"
    );
    let buckets = &art.report.all_reduce_buckets;
    assert!(buckets.overlapped_rounds > 0, "overlap path never taken");
    assert!(
        buckets.exposed_seconds < buckets.total_seconds(),
        "exposed {} must be strictly below serialized-baseline {}",
        buckets.exposed_seconds,
        buckets.total_seconds()
    );
    // The faulted run's virtual overhead shows up in the decomposition.
    let overhead = measured.get("overhead").unwrap();
    assert!(overhead.get("restart_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(
        overhead.get("retry_backoff_s").unwrap().as_f64().unwrap() > 0.0,
        "transient failure must charge backoff"
    );

    // The Chrome trace validates and has one pid per rank.
    let stats = validate_chrome_trace(&art.trace_json).expect("trace must validate");
    assert_eq!(stats.pids, 4);
    assert!(stats.spans > 0 && stats.instants > 0);

    // Every rank recorded the identical virtual stream.
    let fp0 = art.recorders[0].virtual_fingerprint();
    for rec in &art.recorders[1..] {
        assert_eq!(rec.virtual_fingerprint(), fp0);
    }

    // Prometheus dump carries trainer counters for every rank.
    assert!(art.prom_text.contains("# TYPE ets_preemptions counter"));
    for rank in 0..4 {
        assert!(
            art.prom_text.contains(&format!("rank=\"{rank}\"")),
            "rank {rank} missing from prom dump"
        );
    }

    // The faulted run exercised the fault machinery it claims to trace.
    assert!(art.report.fault_recovery.preemptions >= 1);
    assert!(art.report.fault_recovery.transient_failures >= 1);
}

/// The exact code path CI's `bench-kernels` job runs: smoke-mode rows +
/// steady-state probe, in-process schema validation, and the regression
/// gate. Also asserts the ISSUE's allocation-free-steady-state criterion
/// (`scratch_reallocs_delta == 0` after warmup).
#[test]
fn kernel_bench_smoke_emits_valid_json_and_allocation_free_steady_state() {
    let rows = kernel_rows(true);
    let ss = steady_state_probe(true);
    let pack = pack_probe(true);
    let par = parallel_probe(true);
    let abft = abft_probe(true);
    let sp = simd_probe(true);
    let doc = kernels_json(&rows, &ss, &pack, &par, &abft, &sp, true);
    validate_kernels_json(&doc).expect("BENCH_kernels.json schema");

    let v = parse_json(&doc).expect("kernels JSON must parse");
    assert_eq!(
        v.get("schema").unwrap().as_str().unwrap(),
        "bench_kernels_v5"
    );
    assert_eq!(v.get("mode").unwrap().as_str().unwrap(), "smoke");

    // The calibration row is present at its exact (m, k, n) — identical in
    // smoke and full modes so the CI gate compares like with like.
    let arr = v.get("rows").unwrap().as_arr().unwrap();
    assert_eq!(arr.len(), rows.len());
    let cal = arr
        .iter()
        .find(|r| r.get("label").unwrap().as_str().unwrap() == CALIBRATION_LABEL)
        .expect("calibration row present");
    let (m, k, n) = CALIBRATION_MKN;
    assert_eq!(cal.get("m").unwrap().as_f64().unwrap() as usize, m);
    assert_eq!(cal.get("k").unwrap().as_f64().unwrap() as usize, k);
    assert_eq!(cal.get("n").unwrap().as_f64().unwrap() as usize, n);
    for row in arr {
        assert!(row.get("naive_gflops").unwrap().as_f64().unwrap() > 0.0);
        assert!(row.get("blocked_gflops").unwrap().as_f64().unwrap() > 0.0);
        assert!(row.get("auto_gflops").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            row.get("bf16_blocked_gflops").unwrap().as_f64().unwrap() > 0.0,
            "every row must carry a bf16 packed-kernel measurement"
        );
    }

    // Pack probe: both precisions measured at the calibration A panel.
    let pv = v.get("pack").unwrap();
    assert_eq!(pv.get("m").unwrap().as_f64().unwrap() as usize, m);
    assert_eq!(pv.get("k").unwrap().as_f64().unwrap() as usize, k);
    assert!(pv.get("f32_melems_per_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(pv.get("bf16_melems_per_s").unwrap().as_f64().unwrap() > 0.0);

    // Allocation-free steady state: after warmup the scratch arena must
    // serve every checkout from the pool.
    let ssv = v.get("steady_state").unwrap();
    assert_eq!(
        ssv.get("scratch_reallocs_delta").unwrap().as_f64().unwrap(),
        0.0,
        "steady-state training steps must not grow the scratch arena"
    );
    assert!(ssv.get("dispatch_blocked").unwrap().as_f64().unwrap() > 0.0);
    assert!(
        ssv.get("dispatch_blocked_bf16").unwrap().as_f64().unwrap() > 0.0,
        "the steady-state probe's bf16 step must route through the bf16 packed kernels"
    );
    assert!(ssv.get("step_ms").unwrap().as_f64().unwrap() > 0.0);

    // Parallel probe: bitwise determinism and zero per-worker reallocs
    // hold on any host, including the single-core CI fallback where the
    // speedup half of the gate is skipped.
    let pp = v.get("parallel").unwrap();
    assert_eq!(
        pp.get("workers").unwrap().as_f64().unwrap() as usize,
        par.workers
    );
    assert!(
        pp.get("bitwise_equal").unwrap().as_bool().unwrap(),
        "parallel GEMM must be bitwise equal to sequential"
    );
    let deltas = pp.get("worker_realloc_deltas").unwrap().as_arr().unwrap();
    assert_eq!(deltas.len(), par.worker_realloc_deltas.len());
    for d in deltas {
        assert_eq!(
            d.as_f64().unwrap(),
            0.0,
            "post-warmup parallel reps must not grow any worker's scratch arena"
        );
    }
    assert!(pp.get("seq_gflops").unwrap().as_f64().unwrap() > 0.0);
    assert!(pp.get("par_gflops").unwrap().as_f64().unwrap() > 0.0);

    // ABFT probe: verification must be bitwise neutral on clean
    // operands, never report a corruption, and actually checksum tiles
    // (otherwise the overhead figure prices nothing).
    let ab = v.get("abft").unwrap();
    assert!(
        ab.get("bitwise_equal").unwrap().as_bool().unwrap(),
        "ABFT verify must not perturb the product"
    );
    assert_eq!(
        ab.get("false_positives").unwrap().as_f64().unwrap(),
        0.0,
        "ABFT verify must not fire on clean operands"
    );
    assert!(ab.get("tiles_verified").unwrap().as_f64().unwrap() > 0.0);
    assert!(ab.get("plain_gflops").unwrap().as_f64().unwrap() > 0.0);
    assert!(ab.get("verify_gflops").unwrap().as_f64().unwrap() > 0.0);

    // SIMD probe: every lane the host supports is measured in both
    // precisions and is bitwise-identical to the scalar lane — the lane
    // layer's core contract, checked on every artifact.
    let sv = v.get("simd").unwrap();
    let active = sv.get("active").unwrap().as_str().unwrap();
    let lanes = sv.get("lanes").unwrap().as_arr().unwrap();
    assert!(!lanes.is_empty());
    let mut lane_names = Vec::new();
    for lane in lanes {
        let path = lane.get("path").unwrap().as_str().unwrap();
        lane_names.push(path.to_string());
        assert!(lane.get("f32_gflops").unwrap().as_f64().unwrap() > 0.0);
        assert!(lane.get("bf16_gflops").unwrap().as_f64().unwrap() > 0.0);
        assert!(
            lane.get("bitwise_equal_scalar").unwrap().as_bool().unwrap(),
            "lane {path} must be bitwise-identical to scalar"
        );
    }
    assert!(lane_names.iter().any(|p| p == "scalar"));
    assert!(
        lane_names.iter().any(|p| p == active),
        "active lane {active} must have a measured row"
    );

    // The CI regression gate passes on a healthy optimized build. The
    // throughput half of the gate is meaningless without optimizations
    // (unoptimized blocked kernels lose to naive on pure call overhead),
    // so only assert it when this test itself runs under `--release` —
    // CI's `bench-kernels` job runs the bin in release mode regardless.
    if !cfg!(debug_assertions) {
        check_kernel_regression(&rows, &ss, &pack, &par, &abft, &sp, true)
            .expect("regression gate must pass");
    }
}

/// The regression checker actually rejects: a blocked-slower-than-naive
/// calibration row, a dispatch choice that loses to naive, a bf16 pack
/// slower than the f32 pack, and a nonzero realloc delta must all fail
/// the gate.
#[test]
fn kernel_regression_gate_rejects_bad_rows() {
    let rows = kernel_rows(true);
    let ss = steady_state_probe(true);
    let pack = pack_probe(true);
    let par = parallel_probe(true);
    let abft = abft_probe(true);
    let sp = simd_probe(true);

    let mut slow = rows.clone();
    let cal = slow
        .iter_mut()
        .find(|r| r.calibration)
        .expect("calibration row");
    cal.blocked_gflops = cal.naive_gflops * 0.5;
    assert!(
        check_kernel_regression(&slow, &ss, &pack, &par, &abft, &sp, false).is_err(),
        "gate must reject blocked < naive at the calibration shape"
    );

    let mut routed_wrong = rows.clone();
    routed_wrong[0].auto_gflops = routed_wrong[0].naive_gflops * 0.5;
    assert!(
        check_kernel_regression(&routed_wrong, &ss, &pack, &par, &abft, &sp, false).is_err(),
        "gate must reject a dispatched path slower than naive"
    );

    let mut slow_pack = pack.clone();
    slow_pack.bf16_melems_per_s = slow_pack.f32_melems_per_s * 0.5;
    assert!(
        check_kernel_regression(&rows, &ss, &slow_pack, &par, &abft, &sp, false).is_err(),
        "gate must reject a bf16 pack slower than the f32 pack"
    );

    let mut leaky = ss.clone();
    leaky.scratch_reallocs_delta = 3;
    assert!(
        check_kernel_regression(&rows, &leaky, &pack, &par, &abft, &sp, false).is_err(),
        "gate must reject a growing scratch arena"
    );

    // Determinism gates hold regardless of host core count: a parallel
    // result that differs by one bit, or a worker whose scratch arena grew
    // mid-measurement, must fail even where the speedup gate is skipped.
    let mut divergent = par.clone();
    divergent.bitwise_equal = false;
    assert!(
        check_kernel_regression(&rows, &ss, &pack, &divergent, &abft, &sp, false).is_err(),
        "gate must reject a non-bitwise parallel GEMM"
    );

    let mut leaky_worker = par.clone();
    if leaky_worker.worker_realloc_deltas.is_empty() {
        leaky_worker.worker_realloc_deltas = vec![0; leaky_worker.workers];
    }
    leaky_worker.worker_realloc_deltas[0] = 2;
    assert!(
        check_kernel_regression(&rows, &ss, &pack, &leaky_worker, &abft, &sp, false).is_err(),
        "gate must reject a worker-scratch realloc during measured reps"
    );

    // The speedup floor bites once the gate is enforced (multi-core host).
    let mut slow_par = par.clone();
    slow_par.gate_enforced = true;
    slow_par.seq_gflops = 10.0;
    slow_par.par_gflops = 11.0; // 1.1x < the 1.6x floor
    assert!(
        check_kernel_regression(&rows, &ss, &pack, &slow_par, &abft, &sp, false).is_err(),
        "gate must reject sub-floor parallel speedup on multi-core hosts"
    );

    // ABFT gates: a perturbed product, a clean-data detection, and a
    // probe that never reached the tile path must all fail.
    let mut perturbed = abft.clone();
    perturbed.bitwise_equal = false;
    assert!(
        check_kernel_regression(&rows, &ss, &pack, &par, &perturbed, &sp, false).is_err(),
        "gate must reject a non-neutral ABFT verify pass"
    );
    let mut trigger_happy = abft.clone();
    trigger_happy.false_positives = 1;
    assert!(
        check_kernel_regression(&rows, &ss, &pack, &par, &trigger_happy, &sp, false).is_err(),
        "gate must reject ABFT false positives on clean operands"
    );
    let mut vacuous = abft.clone();
    vacuous.tiles_verified = 0;
    assert!(
        check_kernel_regression(&rows, &ss, &pack, &par, &vacuous, &sp, false).is_err(),
        "gate must reject an ABFT probe that never checksummed a tile"
    );
}
