//! Offline stub of `rand`. The workspace declares the dependency but all
//! randomness flows through `ets-tensor::rng::Rng` (deterministic,
//! explicitly seeded), so no API surface is required here.
