//! Offline stub of `serde_json`.
//!
//! - [`to_string`] / [`to_string_pretty`] return a fixed placeholder so
//!   call sites that `.expect()` a string keep working.
//! - [`from_str`] always errors, which is how
//!   `ets_train::report::serde_json_is_functional()` detects the stub at
//!   runtime and gates exact round-trip assertions off.
//!
//! Artifacts that *must* be machine-readable in the offline container
//! (bench JSON, Chrome traces, checkpoints) use `ets-obs`'s hand-rolled
//! `JsonWriter`/`parse_json` instead of this crate.

use std::fmt;

/// The stub's only error: "offline stub cannot parse".
pub struct Error {
    msg: &'static str,
}

impl Error {
    fn stub() -> Self {
        Error {
            msg: "serde_json offline stub: parsing unavailable",
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json::Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// Placeholder serialization (a valid JSON string literal, so naive
/// consumers don't choke, but carrying no data).
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("\"<serde_json offline stub>\"".to_string())
}

/// Same placeholder, "pretty".
pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    to_string(_value)
}

/// Always fails: the stub cannot deserialize anything.
pub fn from_str<T>(_s: &str) -> Result<T, Error> {
    Err(Error::stub())
}
