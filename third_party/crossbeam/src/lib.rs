//! Offline stub of `crossbeam`: just the `channel` module — an MPMC
//! queue on `Mutex` + `Condvar` with crossbeam's disconnect semantics
//! (`recv` errors once every `Sender` is dropped; `send` errors once
//! every `Receiver` is dropped) and optional capacity bound.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T>(Arc<Chan<T>>);
    pub struct Receiver<T>(Arc<Chan<T>>);

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Channel with a capacity bound: `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.0.not_full.notify_one();
                    Ok(v)
                }
                None => Err(RecvError),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_blocks_then_drains() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t2 = tx.clone();
            let h = thread::spawn(move || t2.send(3).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            h.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
