//! Offline stub of `serde_derive`: the derives parse (including
//! `#[serde(...)]` helper attributes) and expand to nothing. The
//! workspace never bounds a generic on `Serialize`/`Deserialize`, so no
//! impls are required for the code to compile.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
