//! Offline stub of `parking_lot`: `Mutex`, `RwLock`, and `Condvar` as
//! thin wrappers over `std::sync`, exposing parking_lot's unpoisoned API
//! (`lock()` returns the guard directly). Poisoning is unwrapped — a
//! panicked holder aborts the test run loudly instead of propagating
//! `PoisonError`, which matches parking_lot's practical semantics.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// parking_lot signature: blocks on a `&mut` guard in place.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        guard.inner = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
