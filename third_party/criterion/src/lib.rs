//! Offline stub of `criterion`: just enough surface for the workspace's
//! benches to compile (and, under `cargo bench`, to run each measured
//! closure once as a smoke pass — no statistics, no reports). Real
//! measurements in the offline container come from `ets-bench`'s own
//! bins (`bench_kernels`, `bench_smoke`), which carry their own timing.

/// Opaque measurement-loop handle; `iter` runs the closure once.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }
}

/// Throughput annotation (recorded nowhere under the stub).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    pub id: String,
}

impl BenchmarkId {
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    _private: (),
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<I: Sized, F: FnMut(&mut Bencher)>(
        &mut self,
        _id: I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher { _private: () });
        self
    }

    pub fn bench_with_input<I: Sized, P, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        _id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher { _private: () }, input);
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _t: std::time::Duration) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, _name: S) -> BenchmarkGroup {
        BenchmarkGroup { _private: () }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher { _private: () });
        self
    }
}

/// Identity "optimizer barrier" (no-op under the stub).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Both criterion_group! forms: positional and `name/config/targets`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
