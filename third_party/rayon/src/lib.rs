//! Offline stub of `rayon`: the parallel iterator adapters this
//! workspace uses (`par_iter_mut`, `par_chunks_mut`), implemented as
//! their sequential std equivalents.
//!
//! The workspace's kernels are written so that results are bitwise
//! independent of scheduling (parallelism is only ever over disjoint
//! output blocks), so the sequential fallback changes wall-clock, never
//! numerics.

pub mod prelude {
    /// `par_iter_mut` on anything that views as a mutable slice.
    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `into_par_iter` on owned collections and ranges.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: Iterator, T: IntoIterator<IntoIter = I, Item = I::Item>> IntoParallelIterator for T {
        type Item = I::Item;
        type Iter = I;
        fn into_par_iter(self) -> I {
            self.into_iter()
        }
    }

    /// `par_chunks_mut` on mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}
