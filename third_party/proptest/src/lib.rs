//! Offline stub of `proptest`.
//!
//! The [`proptest!`] macro swallows its entire body, so property suites
//! compile but contribute no cases under the stub. Every property suite
//! in this workspace keeps "stub-safe mirrors" — plain `#[test]`
//! functions over fixed adversarial inputs — alongside the `proptest!`
//! block, so coverage degrades gracefully instead of vanishing. Under
//! the real crates-io dependency set the macro bodies come back to life
//! unchanged.

/// Swallows the whole property block.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

/// Helpers shared between `proptest!` bodies and plain `#[test]` mirrors
/// call these outside the macro, so under the stub they are real
/// assertions (panicking rather than returning `Err`, which is fine in a
/// test context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {
        assert!($($tt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {
        assert_eq!($($tt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => {
        assert_ne!($($tt)*)
    };
}

/// No-op under the stub (callers outside swallowed bodies would need the
/// runner to honor rejection; mirrors pick inputs that always satisfy
/// their assumptions).
#[macro_export]
macro_rules! prop_assume {
    ($($tt:tt)*) => {};
}

/// Error type `prop_assert!` nominally returns through.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// `Result` alias used by helpers shared with `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Constructible so `ProptestConfig` mentions
/// outside swallowed bodies still compile.
#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker strategy trait (no generation machinery under the stub). The
/// combinators exist so helper functions returning `impl Strategy`
/// compile; they carry no behavior.
pub trait Strategy: Sized {
    type Value;

    fn prop_filter<R, F>(self, _reason: R, _filter: F) -> Filtered<Self>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filtered(self)
    }

    fn prop_map<O, F>(self, _map: F) -> Mapped<Self, O>
    where
        F: Fn(Self::Value) -> O,
    {
        Mapped(self, std::marker::PhantomData)
    }
}

impl<T> Strategy for std::ops::Range<T> {
    type Value = T;
}

/// Result of [`Strategy::prop_filter`].
pub struct Filtered<S>(S);

impl<S: Strategy> Strategy for Filtered<S> {
    type Value = S::Value;
}

/// Result of [`Strategy::prop_map`].
pub struct Mapped<S, O>(S, std::marker::PhantomData<fn() -> O>);

impl<S: Strategy, O> Strategy for Mapped<S, O> {
    type Value = O;
}

/// A placeholder strategy value.
#[derive(Clone, Copy, Debug, Default)]
pub struct Just<T>(pub T);

impl<T> Strategy for Just<T> {
    type Value = T;
}

/// `any::<T>()` placeholder.
pub fn any<T: Default>() -> Just<T> {
    Just(T::default())
}

pub mod collection {
    use super::{Just, Strategy};

    /// `collection::vec(strategy, size)` placeholder.
    pub fn vec<S: Strategy, R>(_element: S, _size: R) -> Just<Vec<S::Value>> {
        Just(Vec::new())
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// `prop::` paths used inside (swallowed) bodies.
    pub mod prop {
        pub use crate::collection;
    }
}
