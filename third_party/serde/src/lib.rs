//! Offline stub of `serde`: marker traits and the no-op derive macros.
//! `#[derive(Serialize, Deserialize)]` compiles everywhere the workspace
//! uses it; no generic code in the workspace bounds on these traits, so
//! the derives don't need to emit impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait (never used as a bound in this workspace).
pub trait SerializeTrait {}
/// Marker trait (never used as a bound in this workspace).
pub trait DeserializeTrait {}
